"""Unit tests for the Pig Latin parser."""

import pytest

from repro.common.errors import ParseError
from repro.piglatin import ast, parse_query


def single(text):
    query = parse_query(text)
    assert len(query.statements) == 1
    return query.statements[0]


class TestLoad:
    def test_load_with_typed_fields(self):
        stmt = single("A = load 'page_views' as (user:chararray, ts:int);")
        assert stmt == ast.LoadStmt(
            "A", "page_views",
            [ast.FieldSpec("user", "chararray"), ast.FieldSpec("ts", "int")],
        )

    def test_load_untyped_fields(self):
        stmt = single("A = load 'd' as (x, y);")
        assert stmt.fields == (ast.FieldSpec("x", None), ast.FieldSpec("y", None))

    def test_load_with_using_clause(self):
        stmt = single("A = load 'd' using PigStorage(',') as (x);")
        assert stmt.path == "d"
        assert stmt.fields == (ast.FieldSpec("x", None),)


class TestForeach:
    def test_simple_generate(self):
        stmt = single("B = foreach A generate user, est_revenue;")
        assert stmt.input_alias == "A"
        assert stmt.items == (
            ast.GenItem(ast.FieldRef("user")),
            ast.GenItem(ast.FieldRef("est_revenue")),
        )

    def test_generate_with_as_and_arithmetic(self):
        stmt = single("B = foreach A generate ts / 3600 as hour;")
        item = stmt.items[0]
        assert item.alias == "hour"
        assert item.expr == ast.BinaryOp("/", ast.FieldRef("ts"), ast.Literal(3600))

    def test_generate_aggregate_call(self):
        stmt = single("E = foreach D generate group, SUM(C.est_revenue);")
        assert stmt.items[1].expr == ast.FuncCall(
            "SUM", [ast.Deref("C", "est_revenue")]
        )

    def test_generate_flatten_group(self):
        stmt = single("D = foreach C generate flatten(group), COUNT(B);")
        assert stmt.items[0].flatten is True
        assert stmt.items[0].expr == ast.FieldRef("group")

    def test_positional_reference(self):
        stmt = single("B = foreach A generate $0, $2;")
        assert stmt.items[0].expr == ast.PositionalRef(0)
        assert stmt.items[1].expr == ast.PositionalRef(2)


class TestFilterAndExpressions:
    def test_filter_comparison(self):
        stmt = single("B = filter A by timestamp < 43200;")
        assert stmt.condition == ast.BinaryOp(
            "<", ast.FieldRef("timestamp"), ast.Literal(43200)
        )

    def test_boolean_precedence_or_over_and(self):
        stmt = single("B = filter A by a == 1 and b == 2 or c == 3;")
        assert isinstance(stmt.condition, ast.BinaryOp)
        assert stmt.condition.op == "or"
        assert stmt.condition.left.op == "and"

    def test_not_and_is_null(self):
        stmt = single("B = filter A by not x is null;")
        assert stmt.condition == ast.UnaryOp("not", ast.IsNull(ast.FieldRef("x")))

    def test_is_not_null(self):
        stmt = single("B = filter A by x is not null;")
        assert stmt.condition == ast.IsNull(ast.FieldRef("x"), negated=True)

    def test_arithmetic_precedence(self):
        stmt = single("B = foreach A generate a + b * c;")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_cast(self):
        stmt = single("B = foreach A generate (int) ts;")
        assert stmt.items[0].expr == ast.Cast("int", ast.FieldRef("ts"))

    def test_parenthesized_expression_is_not_cast(self):
        stmt = single("B = filter A by (x) == 1;")
        assert stmt.condition == ast.BinaryOp("==", ast.FieldRef("x"), ast.Literal(1))

    def test_qualified_field_name(self):
        stmt = single("B = foreach A generate users::name;")
        assert stmt.items[0].expr == ast.FieldRef("users::name")


class TestRelationalOperators:
    def test_join(self):
        stmt = single("C = join beta by name, B by user;")
        assert stmt == ast.JoinStmt(
            "C",
            [("beta", [ast.FieldRef("name")]), ("B", [ast.FieldRef("user")])],
        )

    def test_join_three_way_rejected(self):
        with pytest.raises(ParseError):
            parse_query("C = join a by x, b by y, c by z;")

    def test_group_single_key(self):
        stmt = single("D = group C by user;")
        assert stmt.keys == (ast.FieldRef("user"),)

    def test_group_composite_key(self):
        stmt = single("D = group C by (user, query_term) parallel 40;")
        assert stmt.keys == (ast.FieldRef("user"), ast.FieldRef("query_term"))
        assert stmt.parallel == 40

    def test_group_all(self):
        stmt = single("D = group C all;")
        assert stmt.keys is None

    def test_group_by_positional(self):
        stmt = single("D = group C by $0;")
        assert stmt.keys == (ast.PositionalRef(0),)

    def test_cogroup(self):
        stmt = single("C = cogroup beta by name, B by user;")
        assert stmt == ast.CoGroupStmt(
            "C",
            [("beta", [ast.FieldRef("name")]), ("B", [ast.FieldRef("user")])],
        )

    def test_distinct(self):
        assert single("C = distinct B parallel 10;") == ast.DistinctStmt("C", "B", 10)

    def test_union(self):
        assert single("D = union C, gamma;") == ast.UnionStmt("D", ["C", "gamma"])

    def test_order_by(self):
        stmt = single("B = order A by name desc, ts;")
        assert stmt.keys == (
            (ast.FieldRef("name"), "desc"),
            (ast.FieldRef("ts"), "asc"),
        )

    def test_limit(self):
        assert single("B = limit A 10;") == ast.LimitStmt("B", "A", 10)

    def test_store(self):
        assert single("store C into 'out';") == ast.StoreStmt("C", "out")


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_query("A = load 'x' as (a)")

    def test_unknown_operator(self):
        with pytest.raises(ParseError):
            parse_query("A = frobnicate B;")

    def test_empty_query(self):
        with pytest.raises(ParseError):
            parse_query("   ")

    def test_whole_paper_query_q2_parses(self):
        # Query Q2 from the paper (Section 2), verbatim modulo quoting.
        text = """
        A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
        B = foreach A generate user, est_revenue;
        alpha = load 'users' as (name, phone, address, city);
        beta = foreach alpha generate name;
        C = join beta by name, A by user;
        D = group C by $0;
        E = foreach D generate group, SUM(C.est_revenue);
        store E into 'L3_out';
        """
        query = parse_query(text)
        assert len(query.statements) == 8
