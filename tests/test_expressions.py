"""Unit tests for expression compilation and evaluation."""

import pytest

from repro.common.errors import DataError
from repro.data import DataType, Field, Schema
from repro.piglatin import ast
from repro.piglatin.expressions import (
    BOOLEAN,
    compile_expression,
    compile_predicate,
    schema_from_load_fields,
)


def schema():
    return Schema(
        [
            Field("user", DataType.CHARARRAY),
            Field("ts", DataType.INT),
            Field("revenue", DataType.DOUBLE),
        ]
    )


def grouped_schema():
    element = schema()
    return Schema(
        [
            Field("group", DataType.CHARARRAY),
            Field("C", DataType.BAG, element),
        ]
    )


class TestFieldAccess:
    def test_field_by_name(self):
        compiled = compile_expression(ast.FieldRef("ts"), schema())
        assert compiled.fn(("u", 5, 1.0)) == 5
        assert compiled.dtype is DataType.INT
        assert compiled.canonical == "$1"

    def test_positional(self):
        compiled = compile_expression(ast.PositionalRef(2), schema())
        assert compiled.fn(("u", 5, 1.5)) == 1.5

    def test_positional_out_of_range(self):
        with pytest.raises(DataError):
            compile_expression(ast.PositionalRef(9), schema())

    def test_unknown_name(self):
        with pytest.raises(DataError):
            compile_expression(ast.FieldRef("nope"), schema())

    def test_canonical_is_positional_not_name_based(self):
        # Same positions, different names -> same canonical form. This is
        # what makes operator equivalence name-agnostic.
        other = Schema([Field("x", DataType.CHARARRAY), Field("y", DataType.INT),
                        Field("z", DataType.DOUBLE)])
        a = compile_expression(ast.FieldRef("ts"), schema())
        b = compile_expression(ast.FieldRef("y"), other)
        assert a.canonical == b.canonical


class TestArithmeticAndComparison:
    def test_arithmetic_int(self):
        expr = ast.BinaryOp("+", ast.FieldRef("ts"), ast.Literal(10))
        compiled = compile_expression(expr, schema())
        assert compiled.fn(("u", 5, 0.0)) == 15
        assert compiled.dtype is DataType.INT

    def test_int_division_truncates(self):
        expr = ast.BinaryOp("/", ast.FieldRef("ts"), ast.Literal(2))
        assert compile_expression(expr, schema()).fn(("u", 7, 0.0)) == 3

    def test_division_by_zero_is_null(self):
        expr = ast.BinaryOp("/", ast.FieldRef("ts"), ast.Literal(0))
        assert compile_expression(expr, schema()).fn(("u", 7, 0.0)) is None

    def test_null_propagates(self):
        expr = ast.BinaryOp("*", ast.FieldRef("ts"), ast.Literal(2))
        assert compile_expression(expr, schema()).fn(("u", None, 0.0)) is None

    def test_mixed_numeric_promotes_to_double(self):
        expr = ast.BinaryOp("+", ast.FieldRef("ts"), ast.FieldRef("revenue"))
        assert compile_expression(expr, schema()).dtype is DataType.DOUBLE

    def test_arithmetic_on_string_rejected(self):
        expr = ast.BinaryOp("+", ast.FieldRef("user"), ast.Literal(1))
        with pytest.raises(DataError):
            compile_expression(expr, schema())

    def test_comparison_returns_boolean(self):
        expr = ast.BinaryOp("<", ast.FieldRef("ts"), ast.Literal(10))
        compiled = compile_expression(expr, schema())
        assert compiled.dtype is BOOLEAN
        assert compiled.fn(("u", 5, 0.0)) is True
        assert compiled.fn(("u", 15, 0.0)) is False

    def test_comparison_with_null_is_null(self):
        expr = ast.BinaryOp("==", ast.FieldRef("user"), ast.Literal("x"))
        assert compile_expression(expr, schema()).fn((None, 1, 0.0)) is None

    def test_string_int_comparison_rejected(self):
        expr = ast.BinaryOp("<", ast.FieldRef("user"), ast.Literal(10))
        with pytest.raises(DataError):
            compile_expression(expr, schema())


class TestLogical:
    def test_and_or(self):
        cond = ast.BinaryOp(
            "and",
            ast.BinaryOp(">", ast.FieldRef("ts"), ast.Literal(0)),
            ast.BinaryOp("<", ast.FieldRef("ts"), ast.Literal(10)),
        )
        compiled = compile_predicate(cond, schema())
        assert compiled.fn(("u", 5, 0.0)) is True
        assert compiled.fn(("u", 50, 0.0)) is False

    def test_null_and_false_is_false(self):
        cond = ast.BinaryOp(
            "and",
            ast.BinaryOp("==", ast.FieldRef("user"), ast.Literal("x")),  # null
            ast.BinaryOp("<", ast.FieldRef("ts"), ast.Literal(0)),        # false
        )
        assert compile_predicate(cond, schema()).fn((None, 5, 0.0)) is False

    def test_not_of_null_is_null(self):
        cond = ast.UnaryOp("not", ast.BinaryOp("==", ast.FieldRef("user"),
                                               ast.Literal("x")))
        assert compile_predicate(cond, schema()).fn((None, 5, 0.0)) is None

    def test_is_null(self):
        compiled = compile_predicate(ast.IsNull(ast.FieldRef("user")), schema())
        assert compiled.fn((None, 1, 0.0)) is True
        assert compiled.fn(("u", 1, 0.0)) is False

    def test_predicate_must_be_boolean(self):
        with pytest.raises(DataError):
            compile_predicate(ast.FieldRef("ts"), schema())


class TestAggregates:
    def test_sum_over_bag_projection(self):
        expr = ast.FuncCall("SUM", [ast.Deref("C", "revenue")])
        compiled = compile_expression(expr, grouped_schema())
        bag = (("a", 1, 2.0), ("b", 2, 3.0), ("c", 3, None))
        assert compiled.fn(("g", bag)) == 5.0
        assert compiled.dtype is DataType.DOUBLE

    def test_sum_empty_bag_is_null(self):
        expr = ast.FuncCall("SUM", [ast.Deref("C", "revenue")])
        assert compile_expression(expr, grouped_schema()).fn(("g", ())) is None

    def test_count_whole_bag(self):
        expr = ast.FuncCall("COUNT", [ast.FieldRef("C")])
        compiled = compile_expression(expr, grouped_schema())
        assert compiled.fn(("g", (("a", 1, 1.0),))) == 1
        assert compiled.fn(("g", ())) == 0

    def test_count_distinct(self):
        expr = ast.FuncCall("COUNT_DISTINCT", [ast.Deref("C", "user")])
        compiled = compile_expression(expr, grouped_schema())
        bag = (("a", 1, 1.0), ("a", 2, 2.0), ("b", 3, 3.0))
        assert compiled.fn(("g", bag)) == 2

    def test_avg_min_max(self):
        bag = (("a", 4, 1.0), ("b", 2, 2.0))
        row = ("g", bag)
        gs = grouped_schema()
        avg = compile_expression(ast.FuncCall("AVG", [ast.Deref("C", "ts")]), gs)
        low = compile_expression(ast.FuncCall("MIN", [ast.Deref("C", "ts")]), gs)
        high = compile_expression(ast.FuncCall("MAX", [ast.Deref("C", "ts")]), gs)
        assert avg.fn(row) == 3.0
        assert low.fn(row) == 2
        assert high.fn(row) == 4

    def test_aggregate_over_scalar_rejected(self):
        expr = ast.FuncCall("SUM", [ast.FieldRef("ts")])
        with pytest.raises(DataError):
            compile_expression(expr, schema())

    def test_deref_non_bag_rejected(self):
        with pytest.raises(DataError):
            compile_expression(ast.Deref("user", "x"), schema())

    def test_unknown_function(self):
        with pytest.raises(DataError):
            compile_expression(ast.FuncCall("NOPE", [ast.FieldRef("ts")]), schema())


class TestScalarFunctionsAndCasts:
    def test_cast_string_to_int(self):
        compiled = compile_expression(ast.Cast("int", ast.FieldRef("user")), schema())
        assert compiled.fn(("42", 0, 0.0)) == 42

    def test_round(self):
        compiled = compile_expression(
            ast.FuncCall("ROUND", [ast.FieldRef("revenue")]), schema()
        )
        assert compiled.fn(("u", 0, 2.6)) == 3

    def test_concat(self):
        expr = ast.FuncCall("CONCAT", [ast.FieldRef("user"), ast.Literal("!")])
        assert compile_expression(expr, schema()).fn(("hi", 0, 0.0)) == "hi!"

    def test_schema_from_load_fields(self):
        fields = [ast.FieldSpec("a", "int"), ast.FieldSpec("b", None)]
        result = schema_from_load_fields(fields)
        assert result.field("a").dtype is DataType.INT
        assert result.field("b").dtype is DataType.CHARARRAY

    def test_schema_from_load_fields_bad_type(self):
        with pytest.raises(DataError):
            schema_from_load_fields([ast.FieldSpec("a", "blob")])
