"""Directed tests for in-memory shard replication (PR 7): the
ReplicatedWorkerPool's warm failover, replica read fan-out, backfill,
the crash-window edges, and the response-timeout plumbing in
``_WorkerHandle`` — all crashes injected through the deterministic
``tests/faultinject.FaultSchedule``."""

import json
import multiprocessing

import pytest

from repro.physical.operators import POLoad, POStore
from repro.physical.plan import PhysicalPlan
from repro.restore import (
    load_repository,
    ReplicatedWorkerPool,
    RepositoryEntry,
    RepositoryLog,
    RepositoryService,
    ShardedRepository,
)
from repro.restore.persistence import SkeletonOp
from repro.restore.service import _WorkerHandle, WorkerCrashed
from repro.restore.sharding import shard_index_for_key
from repro.restore.stats import EntryStats

from tests.faultinject import (FaultSchedule, install_hang_guard,
                               ProtocolWindowKill)
from tests.helpers import make_dfs


@pytest.fixture(autouse=True)
def _hang_guard():
    # A lost IPC message hangs forever; fail loudly with stacks instead.
    cancel = install_hang_guard()
    yield
    cancel()


def _chain_plan(index, path, extra_op=None):
    load = POLoad(path, None, 0)
    chain = SkeletonOp("filter", f"FILTER[a>{index}]", None, [load])
    if extra_op is not None:
        chain = SkeletonOp("foreach", f"FOREACH[{extra_op}]", None, [chain])
    return PhysicalPlan([POStore(chain, f"/stored/s{index}")])


def _entry(index, path="/data/d0"):
    stats = EntryStats(input_bytes=1000 + index, output_bytes=10 + index,
                       producing_job_time=1.0 + index)
    return RepositoryEntry(_chain_plan(index, path), f"/stored/s{index}", stats)


def _twin_repositories(num_shards=2, count=12, paths=3, replicas=2,
                       **kwargs):
    """A serial twin and a replicated process-backed twin holding
    identical entries."""
    serial = ShardedRepository(num_shards=num_shards, executor="serial")
    replicated = ShardedRepository(num_shards=num_shards,
                                   executor="processes", replicas=replicas,
                                   **kwargs)
    for index in range(count):
        path = f"/data/d{index % paths}"
        serial.insert(_entry(index, path))
        replicated.insert(_entry(index, path))
    return serial, replicated


def _assert_probe_parity(serial, replicated, paths=3, tag="probe"):
    for index in range(paths):
        probe = _chain_plan(1000 + index, f"/data/d{index}", extra_op=tag)
        assert [e.output_path for e in replicated.match_candidates(probe)] \
            == [e.output_path for e in serial.match_candidates(probe)]


def _stats_by_shard(repository):
    return {shard.shard_id: (shard.stats.probes,
                             shard.stats.candidates_returned,
                             shard.stats.occupancy)
            for shard in repository.partitions()}


def _owner_of(path, num_shards):
    return shard_index_for_key((path, 0), num_shards)


class TestReplicatedPoolBasics:
    def test_replicas_validated(self):
        with pytest.raises(ValueError, match="replicas >= 2"):
            ReplicatedWorkerPool(replicas=1)
        with pytest.raises(ValueError, match="needs executor='processes'"):
            ShardedRepository(num_shards=2, replicas=2)
        with pytest.raises(ValueError, match="replicas must be >= 1"):
            ShardedRepository(num_shards=2, executor="processes", replicas=0)

    def test_matches_serial_and_counts_fanout(self):
        serial, replicated = _twin_repositories(num_shards=2, count=12)
        try:
            _assert_probe_parity(serial, replicated, tag="first")
            _assert_probe_parity(serial, replicated, tag="second")
            # The executor-independent counters agree with the serial
            # twin; the replication counters are extra columns.
            assert _stats_by_shard(replicated) == _stats_by_shard(serial)
            fanned = sum(shard.stats.replica_fanout
                         for shard in replicated.partitions())
            # Round-robin rotation: with two probes per shard, at least
            # one landed on a non-primary replica.
            assert fanned >= 1
            assert all(shard.stats.replica_fanout == 0
                       for shard in serial.partitions())
            assert "replicated-processes" in replicated.describe()
            assert "k=2" in replicated.worker_pool.describe()
        finally:
            replicated.close()
            replicated.close()  # idempotent
            serial.close()

    def test_replicas_hold_bit_identical_state(self):
        serial, replicated = _twin_repositories(num_shards=2, count=14)
        try:
            pool = replicated.worker_pool
            victims = [e for e in list(replicated.scan())[::3]]
            for repo in (serial, replicated):
                for victim in victims:
                    twin = next(e for e in repo.scan()
                                if e.output_path == victim.output_path)
                    repo.remove(twin)
            for shard_id in replicated.shard_sizes():
                if not replicated.shard_members(shard_id):
                    continue
                states = pool.replica_states(shard_id)
                assert len(states) == 2
                assert states[0] == states[1]
                assert len(states[0]) == len(replicated.shard_members(shard_id))
                assert pool.worker_size(shard_id) \
                    == len(replicated.shard_members(shard_id))
            _assert_probe_parity(serial, replicated, tag="after-remove")
        finally:
            replicated.close()
            serial.close()

    def test_batch_probe_matches_per_plan_calls(self):
        serial, replicated = _twin_repositories(num_shards=4, count=20,
                                                paths=4)
        try:
            plans = [_chain_plan(2000 + index, f"/data/d{index % 4}",
                                 extra_op="batch")
                     for index in range(10)]
            batched = replicated.match_candidates_batch(plans)
            singly = [serial.match_candidates(plan) for plan in plans]
            assert [[e.output_path for e in cs] for cs in batched] \
                == [[e.output_path for e in cs] for cs in singly]
        finally:
            replicated.close()
            serial.close()


class TestWarmFailover:
    def test_promotion_never_touches_partition_snapshot(self):
        # The tentpole's contract, spy-asserted: primary dies, a warm
        # peer answers, and the durable log sees NO partition replay on
        # the failover path — only the later background backfill reads
        # the snapshot.
        dfs = make_dfs()
        serial, replicated = _twin_repositories(num_shards=2, count=12)
        log = RepositoryLog(dfs)
        log.attach(replicated)
        try:
            _assert_probe_parity(serial, replicated, tag="warm-up")
            pool = replicated.worker_pool
            shard_id = _owner_of("/data/d0", 2)

            replays = []
            durable_snapshot = log.partition_snapshot

            def spying_snapshot(requested_shard):
                replays.append(requested_shard)
                return durable_snapshot(requested_shard)

            log.partition_snapshot = spying_snapshot
            reads_before = log.snapshot_reads
            # The round-robin cursor decides which replica answers the
            # next probe: kill exactly that one on its next message, so
            # the probe deterministically trips over the corpse and the
            # pool promotes the surviving peer in place.
            replicas = pool._replica_sets[shard_id]
            cursor = pool._cursors.get(shard_id, 0) % len(replicas)
            victim_seq = replicas[cursor].replica_seq
            probe = _chain_plan(600, "/data/d0", extra_op="failover")
            with FaultSchedule([(shard_id, victim_seq, 1)],
                               pool=pool) as schedule:
                assert [e.output_path
                        for e in replicated.match_candidates(probe)] \
                    == [e.output_path for e in serial.match_candidates(probe)]
            assert [kill[:2] for kill in schedule.killed] \
                == [(shard_id, victim_seq)]
            assert pool.failovers == 1
            assert pool.recoveries == 0
            assert replicated.shard_stats(shard_id).failovers == 1
            # Warm failover: zero durable reads, zero replays.
            assert replays == []
            assert log.snapshot_reads == reads_before
            assert pool.replica_count(shard_id) == 1  # backfill still owed

            # The next pool entry for the shard backfills the
            # replacement from the durable snapshot — in the background
            # of normal traffic, not on the failover path.
            _assert_probe_parity(serial, replicated, tag="backfilled")
            assert pool.replica_count(shard_id) == 2
            assert pool.backfills == 1
            assert replays == [shard_id]
            assert log.snapshot_reads == reads_before + 1
            states = pool.replica_states(shard_id)
            assert states[0] == states[1]  # replacement joined bit-identical
            assert _stats_by_shard(replicated) == _stats_by_shard(serial)
        finally:
            log.close()
            replicated.close()
            serial.close()

    def test_failover_survives_ongoing_mutations(self):
        # Mutations recorded after the kill still reach the survivors
        # and the backfilled replacement alike.
        serial, replicated = _twin_repositories(num_shards=2, count=8)
        try:
            _assert_probe_parity(serial, replicated, tag="pre")
            pool = replicated.worker_pool
            shard_id = _owner_of("/data/d1", 2)
            with FaultSchedule([(shard_id, 1, 1)], pool=pool):
                for index in range(8, 14):
                    path = f"/data/d{index % 3}"
                    serial.insert(_entry(index, path))
                    replicated.insert(_entry(index, path))
                _assert_probe_parity(serial, replicated, tag="mid")
            _assert_probe_parity(serial, replicated, tag="post")
            assert pool.failovers == 1
            states = pool.replica_states(shard_id)
            assert len(states) == 2 and states[0] == states[1]
            assert pool.worker_size(shard_id) \
                == len(replicated.shard_members(shard_id))
        finally:
            replicated.close()
            serial.close()


class TestCrashWindows:
    def test_replica_killed_between_flush_and_probe(self):
        # The narrowest window: the victim acknowledges the mutation
        # flush (its first message) and dies exactly as the probe (its
        # second) is sent. The peer got the same flush, so the promoted
        # answer already includes every buffered mutation.
        serial, replicated = _twin_repositories(num_shards=2, count=0)
        try:
            pool = replicated.worker_pool
            shard_id = _owner_of("/data/d0", 2)
            with FaultSchedule([(shard_id, 0, 2)], pool=pool) as schedule:
                for index in range(9):
                    path = f"/data/d{index % 3}"
                    serial.insert(_entry(index, path))
                    replicated.insert(_entry(index, path))
                probe = _chain_plan(500, "/data/d0", extra_op="window")
                assert [e.output_path
                        for e in replicated.match_candidates(probe)] \
                    == [e.output_path for e in serial.match_candidates(probe)]
            assert [kill[2] for kill in schedule.killed] == ["probe"]
            assert pool.failovers == 1
            assert pool.recoveries == 0
            _assert_probe_parity(serial, replicated, tag="window-after")
        finally:
            replicated.close()
            serial.close()

    def test_whole_replica_set_lost_forces_cold_fallback(self):
        # Primary AND replica die in the same stream: the warm path has
        # nobody to promote, so the pool falls back to the durable
        # partition replay — the one case snapshot reads are for.
        dfs = make_dfs()
        serial, replicated = _twin_repositories(num_shards=2, count=12)
        log = RepositoryLog(dfs)
        log.attach(replicated)
        try:
            _assert_probe_parity(serial, replicated, tag="pre-wipe")
            pool = replicated.worker_pool
            shard_id = _owner_of("/data/d2", 2)
            reads_before = log.snapshot_reads
            with FaultSchedule([(shard_id, 0, 1), (shard_id, 1, 1)],
                               pool=pool) as schedule:
                serial.insert(_entry(50, "/data/d2"))
                replicated.insert(_entry(50, "/data/d2"))
                _assert_probe_parity(serial, replicated, tag="wipe")
            assert len(schedule.killed) == 2
            assert pool.recoveries == 1
            assert pool.failovers == 0  # nobody left to promote
            assert log.snapshot_reads == reads_before + 1
            assert pool.replica_count(shard_id) == 2  # whole set respawned
            states = pool.replica_states(shard_id)
            assert states[0] == states[1]
            assert pool.worker_size(shard_id) \
                == len(replicated.shard_members(shard_id))
            assert _stats_by_shard(replicated) == _stats_by_shard(serial)
        finally:
            log.close()
            replicated.close()
            serial.close()

    def test_failover_during_batch_fanout(self):
        # A replica dies while a batched fan-out is in flight: its chunk
        # is retried on the promoted peer and the merged batch answer is
        # indistinguishable from the serial twin's.
        serial, replicated = _twin_repositories(num_shards=2, count=12)
        try:
            pool = replicated.worker_pool
            shard_id = _owner_of("/data/d0", 2)
            plans = [_chain_plan(3000 + index, f"/data/d{index % 3}",
                                 extra_op="fanout")
                     for index in range(8)]
            # Message 1 to the victim is the batch's buffer flush (or
            # its first chunk on a re-run); killing at message 2 lands
            # inside the fan-out dispatch.
            with FaultSchedule([(shard_id, 1, 2)], pool=pool) as schedule:
                batched = replicated.match_candidates_batch(plans)
            singly = [serial.match_candidates(plan) for plan in plans]
            assert [[e.output_path for e in cs] for cs in batched] \
                == [[e.output_path for e in cs] for cs in singly]
            assert schedule.killed
            assert pool.failovers == 1
            assert pool.recoveries == 0
            # And the batch path keeps answering after the promotion.
            assert [[e.output_path for e in cs] for cs in
                    replicated.match_candidates_batch(plans)] \
                == [[e.output_path for e in cs] for cs in singly]
        finally:
            replicated.close()
            serial.close()


class TestWorkerDurableFailover:
    def test_owner_death_after_append_dedups_on_promoted_owner(self):
        """The failover double-append window (PR 10): the durable owner
        appends its segment lines and dies before acking; the pool
        prunes it — promoting the surviving replica to ownership — and
        re-raises, and the log's watermark reconcile must recognize the
        landed records so the retry on the *promoted* owner re-appends
        nothing. Every record ends up in its segment exactly once, and
        the next durable flush routes through the promoted owner."""
        dfs = make_dfs()
        # Entered before the repository exists: the worker-side window
        # patches DfsClient at class level and forked replicas only see
        # patches installed before the fork.
        with ProtocolWindowKill("segment-appended") as crash:
            replicated = ShardedRepository(num_shards=2,
                                           executor="processes",
                                           replicas=2)
            log = RepositoryLog(dfs)
            log.attach(replicated)
            try:
                pool = replicated.worker_pool
                assert pool.durable_enabled
                paths = [f"/data/d{index}" for index in range(3)]
                for index in range(8):
                    replicated.insert(_entry(index, paths[index % 3]))
                # Spawn the replica sets: flush_durable never spawns,
                # and the kill window needs a worker-owned append.
                for index, path in enumerate(paths):
                    replicated.match_candidates(
                        _chain_plan(1000 + index, path, extra_op="warm"))
                # The victim is the owner of the first flushed label —
                # the lowest spawned shard id.
                victim_shard = min(_owner_of(path, 2) for path in paths)
                assert pool.replica_count(victim_shard) == 2
                assert log.flush() == 8
                assert crash.fired
                # The records landed before the crash, so the reconcile
                # dropped them from the pending buffer instead of
                # re-appending: exactly one copy of each in its segment.
                assert log.reconciled_records > 0
                seqs = []
                for label in sorted(log._segment_records):
                    segment = log._segment_path(label)
                    if dfs.exists(segment):
                        seqs.extend(json.loads(line)["seq"]
                                    for line in dfs.read_lines(segment))
                assert sorted(seqs) == sorted(set(seqs))
                assert len(seqs) == 8
                # The dead owner was pruned; its surviving peer now
                # *is* replica 0 — durable ownership is positional.
                assert pool.replica_count(victim_shard) == 1
                assert pool.failovers >= 1
                # The promoted owner serves the next durable flush.
                target = next(path for path in paths
                              if _owner_of(path, 2) == victim_shard)
                flushes_before = log.worker_flushes
                replicated.insert(_entry(50, target))
                assert log.flush() == 1
                assert log.worker_flushes == flushes_before + 1
                # Reload sees exactly the live state — nothing lost to
                # the crash, nothing doubled by the retry.
                log.checkpoint()
                reloaded = load_repository(dfs)
                assert [e.output_path for e in reloaded.scan()] \
                    == [e.output_path for e in replicated.scan()]
            finally:
                log.close()
                replicated.close()


class TestResponseTimeout:
    def test_timeout_threads_through_constructors(self):
        replicated = ShardedRepository(num_shards=2, executor="processes",
                                       replicas=2, response_timeout=7.5)
        try:
            pool = replicated.worker_pool
            assert pool._response_timeout == 7.5
            replicated.insert(_entry(0, "/data/d0"))
            shard_id = _owner_of("/data/d0", 2)
            assert pool.worker_size(shard_id) == 1
            for handle in pool._replica_sets[shard_id]:
                assert handle.response_timeout == 7.5
        finally:
            replicated.close()

        with RepositoryService(num_shards=2, replicas=2,
                               response_timeout=9.0) as service:
            assert service.pool._response_timeout == 9.0
        # The class default still applies when nothing is passed.
        plain = ShardedRepository(num_shards=2, executor="processes")
        try:
            plain.insert(_entry(1, "/data/d0"))
            pool = plain.worker_pool
            assert pool.worker_size(_owner_of("/data/d0", 2)) == 1
            handle = next(iter(pool._workers.values()))
            assert handle.response_timeout == _WorkerHandle.RESPONSE_TIMEOUT
        finally:
            plain.close()

    def test_receive_raises_when_worker_died_before_answering(self):
        # Directed coverage for the first crash branch of receive():
        # the process is gone, nothing is in flight — WorkerCrashed.
        context = multiprocessing.get_context("fork")
        handle = _WorkerHandle(3, context, response_timeout=5.0)
        try:
            handle.process.kill()
            handle.process.join()
            with pytest.raises(WorkerCrashed, match="died before answering"):
                handle.receive()
        finally:
            handle.kill()

    def test_receive_kills_unresponsive_worker_past_deadline(self):
        # Directed coverage for the second crash branch: the worker is
        # alive but silent past the (threaded-through) deadline — the
        # handle kills it and reports it unresponsive.
        context = multiprocessing.get_context("fork")
        handle = _WorkerHandle(4, context, response_timeout=0.3)
        try:
            assert handle.alive()
            with pytest.raises(WorkerCrashed, match="unresponsive"):
                handle.receive()  # no request outstanding: never answers
            assert not handle.process.is_alive()  # deadline killed it
        finally:
            handle.kill()


class TestReplicatedService:
    def test_repository_service_with_replicas_lifecycle(self):
        dfs = make_dfs()
        with RepositoryService(num_shards=2, replicas=2,
                               persistence=RepositoryLog(dfs)) as service:
            for index in range(6):
                service.insert(_entry(index, f"/data/d{index % 2}"))
            probe = _chain_plan(100, "/data/d0", extra_op="svc")
            candidates = service.match_candidates(probe)
            assert candidates
            [batched] = service.match_candidates_batch([probe])
            assert [e.output_path for e in batched] \
                == [e.output_path for e in candidates]
            assert "ReplicatedWorkerPool" in service.describe()
        from repro.restore import load_repository
        reloaded = load_repository(dfs)
        assert len(reloaded) == 6
