"""Deterministic fault injection for the worker-process shard service.

Crash tests used to kill workers ad hoc (``handle.process.kill()``
sprinkled between operations), which pins the crash to a line of test
code instead of a point in the *message stream* — unportable to
randomized property streams and impossible to reproduce from a seed.
:class:`FaultSchedule` fixes that: it wraps
:class:`~repro.restore.service._WorkerHandle` message delivery, counts
the messages each ``(shard, replica)`` receives, and kills the chosen
victim's process **as its Nth message is being sent** — the victim dies
before delivery, so the sender observes ``WorkerCrashed`` at exactly
that point in the stream, every run. Schedules are either spelled out
(``FaultSchedule([(shard_id, nth)])``) or generated from a seed
(:meth:`FaultSchedule.from_seed`), which is what the property suite's
fault-injected streams use.

Replicas are addressed by their spawn ordinal (``replica_seq``): the
replicated pool numbers each shard's replicas 0..k-1 at spawn and keeps
counting for replacements, so "kill shard 1's second replica after its
3rd message" names one deterministic process even across backfills.

This module is a test harness, not a test module (no ``test_``
prefix). It also provides :func:`install_hang_guard`: IPC tests that
lose a queue message hang forever, and a hung test hangs the whole CI
job — the guard arms :mod:`faulthandler` to dump every thread's stack
and hard-exit the interpreter past a per-test deadline, turning a hang
into a diagnosable failure.
"""

import faulthandler
import multiprocessing
import os
import random
import signal

from repro.restore import gateway as _gateway
from repro.restore import service as _service

#: per-test wall-clock ceiling for worker/replica IPC tests (seconds)
WORKER_TEST_TIMEOUT = 180.0


def install_hang_guard(timeout=WORKER_TEST_TIMEOUT):
    """Arm faulthandler to dump all stacks and exit if the current test
    runs past ``timeout`` seconds; returns the cancel callable (call it
    in teardown). Use as an autouse fixture in worker test modules::

        @pytest.fixture(autouse=True)
        def _hang_guard():
            cancel = install_hang_guard()
            yield
            cancel()
    """
    faulthandler.dump_traceback_later(timeout, exit=True)
    return faulthandler.cancel_dump_traceback_later


def kill_worker(handle):
    """SIGKILL ``handle``'s process without poisoning the DFS gateway.

    A durable-capable worker shares one multiprocessing request queue
    with every other worker of its pool (the gateway's). Queue puts are
    asynchronous — a feeder thread in the worker sends the bytes under
    the queue's shared write lock — so a SIGKILL that lands between the
    send and the lock release leaves the lock held forever: every
    surviving worker's durable write then blocks, the coordinator's
    receive-poll spins on the silent-but-alive workers, and interpreter
    shutdown deadlocks joining the parent's own feeder. Holding the
    lock across the kill rules the window out: the victim's feeder
    either already released it (which is how we acquired) or has not
    yet acquired it (and dies holding nothing).
    """
    client = getattr(handle, "durable_store", None)
    wlock = getattr(getattr(client, "_requests", None), "_wlock", None)
    if wlock is None:
        handle.process.kill()
        handle.process.join(timeout=5.0)
        return
    with wlock:
        handle.process.kill()
        handle.process.join(timeout=5.0)


class FaultSchedule:
    """Kill chosen shard workers after their Nth message, reproducibly.

    ``kills`` is an iterable of ``(shard_id, nth_message)`` — replica 0,
    the common case for the single-worker pool — or ``(shard_id,
    replica_seq, nth_message)``. Messages are counted per ``(shard_id,
    replica_seq)`` from the moment the schedule is entered; when a
    victim's count reaches its ``nth``, the worker process is killed
    (the process-kill half of ``_WorkerHandle.kill()`` — queues are
    left for the pool's own reaping) *before* the message is handed to
    the queue, so the send raises
    :class:`~repro.restore.service.WorkerCrashed` deterministically.

    Use as a context manager; ``killed`` records each kill as
    ``(shard_id, replica_seq, message_op)`` in firing order. An optional
    ``pool`` restricts counting and killing to handles owned by that
    pool — required when several worker pools run side by side (the
    lock-step fleets), since shard ids repeat across pools.
    """

    def __init__(self, kills, pool=None):
        self._kills = {}
        for point in kills:
            if len(point) == 2:
                shard_id, nth = point
                replica_seq = 0
            else:
                shard_id, replica_seq, nth = point
            if nth < 1:
                raise ValueError(f"nth_message must be >= 1, got {nth}")
            self._kills[(shard_id, replica_seq)] = nth
        self._pool = pool
        self._counts = {}
        self._original_send = None
        self.killed = []

    @classmethod
    def from_seed(cls, seed, shard_ids, replicas=1, kills=1,
                  max_message=12, pool=None):
        """A schedule of ``kills`` distinct victims drawn from
        ``random.Random(seed)``: each picks a shard from ``shard_ids``,
        a replica ordinal below ``replicas``, and an Nth message in
        [1, max_message]. Same seed, same schedule — the property
        suite's fault-injected streams are reproducible from their
        stream number alone."""
        rng = random.Random(seed)
        shard_ids = list(shard_ids)
        points = []
        victims = set()
        for _ in range(kills):
            for _attempt in range(64):
                victim = (rng.choice(shard_ids), rng.randrange(replicas))
                if victim not in victims:
                    break
            victims.add(victim)
            points.append(victim + (rng.randint(1, max_message),))
        return cls(points, pool=pool)

    def _owns(self, handle):
        """Does the schedule's pool (if any) own ``handle``?"""
        pool = self._pool
        if pool is None:
            return True
        replica_sets = getattr(pool, "_replica_sets", None)
        if replica_sets and any(handle in replicas
                                for replicas in replica_sets.values()):
            return True
        workers = getattr(pool, "_workers", None)
        return bool(workers) and handle in workers.values()

    def __enter__(self):
        schedule = self
        original = _service._WorkerHandle.send

        def counting_send(handle, message):
            if schedule._owns(handle):
                key = (handle.shard_id, getattr(handle, "replica_seq", 0))
                count = schedule._counts.get(key, 0) + 1
                schedule._counts[key] = count
                if schedule._kills.get(key) == count:
                    schedule.killed.append(key + (message[0],))
                    kill_worker(handle)
            return original(handle, message)

        self._original_send = original
        _service._WorkerHandle.send = counting_send
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        _service._WorkerHandle.send = self._original_send
        self._original_send = None
        return False

    @property
    def pending(self):
        """Victims whose Nth message has not arrived yet."""
        return {key: nth for key, nth in self._kills.items()
                if self._counts.get(key, 0) < nth}


class ProtocolWindowKill:
    """Kill a durable-owner worker at one chosen window of the
    worker-owned checkpoint protocol (PERSISTENCE §6), deterministically.

    Message counts (:class:`FaultSchedule`) cannot name the windows that
    matter for worker-owned durability — "after the segment append hit
    the DFS but before the ack" is a point *inside* one message's
    handling, not between messages. This harness pins each window
    exactly:

    * ``"segment-append"`` — the combined mutation+append message is
      being sent to the durable owner; the victim dies **before
      delivery**, so nothing reached the segment and the coordinator
      sees ``WorkerCrashed`` on the send (uncertainty resolved to "not
      appended": the watermark reconcile must keep every record).
    * ``"segment-appended"`` — the worker's gateway ``append_lines``
      returned (the records are durable) and the worker dies **before
      acking**; the coordinator's receive raises and the reconcile must
      drop exactly the appended records (the double-append window).
    * ``"section-written"`` — the worker's gateway ``write_section``
      returned (the new generation-named section exists) and the worker
      dies **before acking**; the coordinator must rewrite the section
      itself — byte-identical, so the overwrite is invisible.
    * ``"acked"`` — the worker's ``compact_section`` ack was received
      and the worker dies **before the manifest swap**; the swap is
      front-end work, so the checkpoint completes and only the next
      probe notices the corpse.

    The worker-side windows (``"segment-appended"``,
    ``"section-written"``) patch :class:`~repro.restore.gateway.DfsClient`
    **at class level**: enter the context *before the pool spawns its
    workers*, so the forked children inherit the patched method. After
    the real write returns, the patched method flips a shared
    ``fired`` flag and SIGKILLs its own process — the first durable
    write through any inherited client fires, which is deterministic
    because one repository per test owns a gateway. The front-end
    windows (``"segment-append"``, ``"acked"``) patch
    ``_WorkerHandle`` send/receive like :class:`FaultSchedule` does.

    ``fired`` reads the (process-shared) flag; ``killed`` records
    ``(shard_id, replica_seq, window)`` for the front-end windows
    (worker-side kills cannot know their shard — check ``fired``).
    """

    WINDOWS = ("segment-append", "segment-appended", "section-written",
               "acked")

    def __init__(self, window):
        if window not in self.WINDOWS:
            raise ValueError(
                f"unknown protocol window {window!r}; pick one of "
                f"{self.WINDOWS}")
        self.window = window
        self.killed = []
        # Shared with forked workers: a worker-side kill must be
        # observable from the test process.
        self._fired = multiprocessing.Value("i", 0)
        self._originals = []

    @property
    def fired(self):
        return bool(self._fired.value)

    def _fire_once(self):
        """Atomically claim the (single) kill; False when already fired."""
        with self._fired.get_lock():
            if self._fired.value:
                return False
            self._fired.value = 1
            return True

    def __enter__(self):
        harness = self

        def patch(owner, name, replacement):
            self._originals.append((owner, name, getattr(owner, name)))
            setattr(owner, name, replacement)

        if self.window == "segment-append":
            original_send = _service._WorkerHandle.send

            def killing_send(handle, message):
                if (message[0] == "apply" and len(message) > 2
                        and harness._fire_once()):
                    harness.killed.append(
                        (handle.shard_id,
                         getattr(handle, "replica_seq", 0),
                         harness.window))
                    kill_worker(handle)
                return original_send(handle, message)

            patch(_service._WorkerHandle, "send", killing_send)
        elif self.window in ("segment-appended", "section-written"):
            method = ("append_lines" if self.window == "segment-appended"
                      else "write_section")
            original_call = getattr(_gateway.DfsClient, method)

            def dying_write(client, target, lines):
                answer = original_call(client, target, lines)
                if harness._fire_once():
                    # The write is durable (the gateway pump acked);
                    # die before the protocol-level ack. One care: the
                    # reply can race this process's queue feeder
                    # thread, which may still sit between sending the
                    # request bytes and releasing the gateway queue's
                    # shared write lock — SIGKILL in that window
                    # poisons the lock for every surviving worker
                    # (their writes, and the coordinator polling them,
                    # block forever). Cycling the lock first proves
                    # the feeder is idle; nothing else in this process
                    # enqueues, so nothing re-acquires before we die.
                    wlock = getattr(client._requests, "_wlock", None)
                    if wlock is not None:
                        with wlock:
                            pass
                    os.kill(os.getpid(), signal.SIGKILL)
                return answer

            patch(_gateway.DfsClient, method, dying_write)
        else:  # "acked"
            original_send = _service._WorkerHandle.send
            original_receive = _service._WorkerHandle.receive

            def tagging_send(handle, message):
                handle._last_op_sent = message[0]
                return original_send(handle, message)

            def killing_receive(handle):
                answer = original_receive(handle)
                if (getattr(handle, "_last_op_sent", None)
                        == "compact_section" and harness._fire_once()):
                    harness.killed.append(
                        (handle.shard_id,
                         getattr(handle, "replica_seq", 0),
                         harness.window))
                    kill_worker(handle)
                return answer

            patch(_service._WorkerHandle, "send", tagging_send)
            patch(_service._WorkerHandle, "receive", killing_receive)
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        while self._originals:
            owner, name, original = self._originals.pop()
            setattr(owner, name, original)
        return False
