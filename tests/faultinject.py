"""Deterministic fault injection for the worker-process shard service.

Crash tests used to kill workers ad hoc (``handle.process.kill()``
sprinkled between operations), which pins the crash to a line of test
code instead of a point in the *message stream* — unportable to
randomized property streams and impossible to reproduce from a seed.
:class:`FaultSchedule` fixes that: it wraps
:class:`~repro.restore.service._WorkerHandle` message delivery, counts
the messages each ``(shard, replica)`` receives, and kills the chosen
victim's process **as its Nth message is being sent** — the victim dies
before delivery, so the sender observes ``WorkerCrashed`` at exactly
that point in the stream, every run. Schedules are either spelled out
(``FaultSchedule([(shard_id, nth)])``) or generated from a seed
(:meth:`FaultSchedule.from_seed`), which is what the property suite's
fault-injected streams use.

Replicas are addressed by their spawn ordinal (``replica_seq``): the
replicated pool numbers each shard's replicas 0..k-1 at spawn and keeps
counting for replacements, so "kill shard 1's second replica after its
3rd message" names one deterministic process even across backfills.

This module is a test harness, not a test module (no ``test_``
prefix). It also provides :func:`install_hang_guard`: IPC tests that
lose a queue message hang forever, and a hung test hangs the whole CI
job — the guard arms :mod:`faulthandler` to dump every thread's stack
and hard-exit the interpreter past a per-test deadline, turning a hang
into a diagnosable failure.
"""

import faulthandler
import random

from repro.restore import service as _service

#: per-test wall-clock ceiling for worker/replica IPC tests (seconds)
WORKER_TEST_TIMEOUT = 180.0


def install_hang_guard(timeout=WORKER_TEST_TIMEOUT):
    """Arm faulthandler to dump all stacks and exit if the current test
    runs past ``timeout`` seconds; returns the cancel callable (call it
    in teardown). Use as an autouse fixture in worker test modules::

        @pytest.fixture(autouse=True)
        def _hang_guard():
            cancel = install_hang_guard()
            yield
            cancel()
    """
    faulthandler.dump_traceback_later(timeout, exit=True)
    return faulthandler.cancel_dump_traceback_later


class FaultSchedule:
    """Kill chosen shard workers after their Nth message, reproducibly.

    ``kills`` is an iterable of ``(shard_id, nth_message)`` — replica 0,
    the common case for the single-worker pool — or ``(shard_id,
    replica_seq, nth_message)``. Messages are counted per ``(shard_id,
    replica_seq)`` from the moment the schedule is entered; when a
    victim's count reaches its ``nth``, the worker process is killed
    (the process-kill half of ``_WorkerHandle.kill()`` — queues are
    left for the pool's own reaping) *before* the message is handed to
    the queue, so the send raises
    :class:`~repro.restore.service.WorkerCrashed` deterministically.

    Use as a context manager; ``killed`` records each kill as
    ``(shard_id, replica_seq, message_op)`` in firing order. An optional
    ``pool`` restricts counting and killing to handles owned by that
    pool — required when several worker pools run side by side (the
    lock-step fleets), since shard ids repeat across pools.
    """

    def __init__(self, kills, pool=None):
        self._kills = {}
        for point in kills:
            if len(point) == 2:
                shard_id, nth = point
                replica_seq = 0
            else:
                shard_id, replica_seq, nth = point
            if nth < 1:
                raise ValueError(f"nth_message must be >= 1, got {nth}")
            self._kills[(shard_id, replica_seq)] = nth
        self._pool = pool
        self._counts = {}
        self._original_send = None
        self.killed = []

    @classmethod
    def from_seed(cls, seed, shard_ids, replicas=1, kills=1,
                  max_message=12, pool=None):
        """A schedule of ``kills`` distinct victims drawn from
        ``random.Random(seed)``: each picks a shard from ``shard_ids``,
        a replica ordinal below ``replicas``, and an Nth message in
        [1, max_message]. Same seed, same schedule — the property
        suite's fault-injected streams are reproducible from their
        stream number alone."""
        rng = random.Random(seed)
        shard_ids = list(shard_ids)
        points = []
        victims = set()
        for _ in range(kills):
            for _attempt in range(64):
                victim = (rng.choice(shard_ids), rng.randrange(replicas))
                if victim not in victims:
                    break
            victims.add(victim)
            points.append(victim + (rng.randint(1, max_message),))
        return cls(points, pool=pool)

    def _owns(self, handle):
        """Does the schedule's pool (if any) own ``handle``?"""
        pool = self._pool
        if pool is None:
            return True
        replica_sets = getattr(pool, "_replica_sets", None)
        if replica_sets and any(handle in replicas
                                for replicas in replica_sets.values()):
            return True
        workers = getattr(pool, "_workers", None)
        return bool(workers) and handle in workers.values()

    def __enter__(self):
        schedule = self
        original = _service._WorkerHandle.send

        def counting_send(handle, message):
            if schedule._owns(handle):
                key = (handle.shard_id, getattr(handle, "replica_seq", 0))
                count = schedule._counts.get(key, 0) + 1
                schedule._counts[key] = count
                if schedule._kills.get(key) == count:
                    schedule.killed.append(key + (message[0],))
                    handle.process.kill()
                    handle.process.join(timeout=5.0)
            return original(handle, message)

        self._original_send = original
        _service._WorkerHandle.send = counting_send
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        _service._WorkerHandle.send = self._original_send
        self._original_send = None
        return False

    @property
    def pending(self):
        """Victims whose Nth message has not arrived yet."""
        return {key: nth for key, nth in self._kills.items()
                if self._counts.get(key, 0) < nth}
