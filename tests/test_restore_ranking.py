"""Unit tests for cost-model-driven candidate ranking.

The ranking contract: a ranker reorders exactly the candidate set the
repository's load filter produced (never adds or drops entries), keeps
the paper's rule 1 (subsumption) a hard constraint, is deterministic,
and the structural default stays bit-identical to the unranked path.
"""

import pytest

from repro.common.errors import RepositoryError
from repro.physical.operators import POLoad, POStore
from repro.physical.plan import PhysicalPlan
from repro.restore import (
    CandidateRanker,
    estimate_entry_savings,
    Repository,
    RepositoryEntry,
    ReStore,
    SavingsRanker,
    ShardedRepository,
    StructuralRanker,
)
from repro.restore.persistence import SkeletonOp
from repro.restore.ranking import realized_entry_savings, resolve_ranker
from repro.restore.stats import EntryStats

from tests.helpers import (
    compile_query,
    make_cost_model,
    make_dfs,
    Q1_TEXT,
    Q2_TEXT,
    seed_page_views,
    seed_users,
)


def chain_plan(store_path, path="/data/d0", ops=("filter",)):
    """Load -> <ops...> -> Store skeleton plan; ``ops`` are (kind, tag)
    or bare kinds (tag defaults to the kind)."""
    node = POLoad(path, None, 0)
    for op in ops:
        kind, tag = op if isinstance(op, tuple) else (op, op)
        node = SkeletonOp(kind, f"{kind.upper()}[{tag}]", None, [node])
    return PhysicalPlan([POStore(node, store_path)])


def entry(store_path, ops=("filter",), output_bytes=1000, time=100.0,
          reduce_time=0.0, path="/data/d0", origin="whole-job"):
    stats = EntryStats(input_bytes=10**6, output_bytes=output_bytes,
                       producing_job_time=time, reduce_time=reduce_time)
    return RepositoryEntry(chain_plan(store_path, path, ops), store_path,
                           stats, origin=origin)


class TestEstimator:
    def test_larger_output_estimates_lower_savings(self):
        model = make_cost_model()
        small = entry("/s/a", output_bytes=10**3)
        large = entry("/s/b", output_bytes=10**9)
        assert estimate_entry_savings(small, model) > \
            estimate_entry_savings(large, model)

    def test_producer_store_cost_is_not_avoided(self):
        # Equal total producing time, but one entry spent most of it
        # writing the stored file — the consumer avoids less.
        model = make_cost_model()
        compute_heavy = entry("/s/a", time=100.0, reduce_time=5.0)
        store_heavy = entry("/s/b", time=100.0, reduce_time=80.0)
        assert estimate_entry_savings(compute_heavy, model) > \
            estimate_entry_savings(store_heavy, model)

    def test_estimate_is_avoided_minus_reload(self):
        model = make_cost_model()
        one = entry("/s/a", output_bytes=4096, time=50.0, reduce_time=10.0)
        expected = (50.0 - 10.0) - model.estimate_load_time(4096)
        assert estimate_entry_savings(one, model) == pytest.approx(expected)

    def test_realized_uses_actual_file_size(self):
        model = make_cost_model()
        dfs = make_dfs()
        one = entry("/s/a", output_bytes=10**8, time=1000.0)
        dfs.write_lines("/s/a", ["tiny"])  # actual file is far smaller
        realized = realized_entry_savings(one, model, dfs)
        estimated = estimate_entry_savings(one, model)
        assert realized > estimated  # reloading the real file is cheaper

    def test_realized_falls_back_to_recorded_bytes_when_file_missing(self):
        model = make_cost_model()
        dfs = make_dfs()
        one = entry("/s/gone", output_bytes=4096, time=50.0)
        assert realized_entry_savings(one, model, dfs) == \
            pytest.approx(estimate_entry_savings(one, model))

    def test_subjob_entry_does_not_claim_the_whole_jobs_time(self):
        # A sub-job entry records the producing JOB's execution time,
        # but its plan is only a prefix — the estimator must cap its
        # avoided cost at the Equation-2 reconstruction of the prefix.
        model = make_cost_model()
        whole = entry("/s/w", ops=[("filter", "a")], time=10_000.0)
        prefix = entry("/s/p", ops=[("filter", "a")], time=10_000.0,
                       origin="sub-job")
        assert estimate_entry_savings(prefix, model) < \
            estimate_entry_savings(whole, model)
        reconstructed = model.estimate_subplan_time(
            ["filter"], prefix.stats.input_bytes)
        expected = reconstructed - model.estimate_load_time(1000)
        assert estimate_entry_savings(prefix, model) == pytest.approx(expected)

    def test_subjob_cap_never_exceeds_recorded_time(self):
        # When the producing job was genuinely cheap, the recorded time
        # stays the binding bound (min of recorded and reconstructed).
        model = make_cost_model()
        cheap = entry("/s/c", ops=[("filter", "a")], time=1.0,
                      origin="sub-job")
        like_whole = entry("/s/w", ops=[("filter", "a")], time=1.0)
        assert estimate_entry_savings(cheap, model) == \
            pytest.approx(estimate_entry_savings(like_whole, model))


class TestResolveRanker:
    def test_default_is_structural(self):
        ranker = resolve_ranker(None, make_cost_model())
        assert isinstance(ranker, StructuralRanker)
        assert ranker.is_structural

    def test_names_resolve(self):
        model = make_cost_model()
        assert isinstance(resolve_ranker("structural", model), StructuralRanker)
        savings = resolve_ranker("savings", model)
        assert isinstance(savings, SavingsRanker)
        assert savings.cost_model is model

    def test_instance_passthrough_binds_cost_model(self):
        model = make_cost_model()
        unbound = SavingsRanker()
        assert resolve_ranker(unbound, model) is unbound
        assert unbound.cost_model is model
        # An already-bound ranker keeps its own model.
        other = make_cost_model()
        bound = SavingsRanker(model)
        resolve_ranker(bound, other)
        assert bound.cost_model is model

    def test_invalid_ranker_rejected(self):
        with pytest.raises(ValueError):
            resolve_ranker("best-effort", make_cost_model())

    def test_unbound_savings_ranker_raises_on_use(self):
        with pytest.raises(RepositoryError):
            SavingsRanker().estimated_savings(entry("/s/a"))

    def test_base_ranker_order_is_abstract(self):
        with pytest.raises(NotImplementedError):
            CandidateRanker().order((), Repository())


class TestStructuralRanker:
    def test_order_is_identity(self):
        repo = Repository()
        entries = [repo.insert(entry(f"/s/{i}", ops=[("filter", f"f{i}")]))
                   for i in range(4)]
        candidates = repo.match_candidates(chain_plan("/out/p"))
        assert StructuralRanker().order(candidates, repo) == candidates

    def test_match_candidates_with_structural_ranker_identical(self):
        repo = Repository()
        for i in range(5):
            repo.insert(entry(f"/s/{i}", ops=[("filter", f"f{i}")]))
        probe = chain_plan("/out/p", ops=[("filter", "f1"), ("foreach", "x")])
        assert repo.match_candidates(probe, ranker=StructuralRanker()) == \
            repo.match_candidates(probe)


class TestSavingsOrder:
    def _repo_with_unrelated(self):
        """Three mutually-unrelated candidates with distinct savings."""
        repo = Repository()
        cheap = repo.insert(entry("/s/cheap", ops=[("filter", "a")],
                                  time=20.0, output_bytes=10**6))
        best = repo.insert(entry("/s/best", ops=[("filter", "b")],
                                 time=500.0, output_bytes=10**3))
        mid = repo.insert(entry("/s/mid", ops=[("filter", "c")],
                                time=100.0, output_bytes=10**4))
        return repo, cheap, best, mid

    def _probe_all_filters(self):
        return chain_plan("/out/p", ops=[("filter", "a"), ("filter", "b"),
                                         ("filter", "c"), ("foreach", "x")])

    def test_highest_estimated_savings_first(self):
        repo, cheap, best, mid = self._repo_with_unrelated()
        ranker = SavingsRanker(make_cost_model())
        ordered = repo.match_candidates(self._probe_all_filters(), ranker=ranker)
        assert [e.output_path for e in ordered] == \
            ["/s/best", "/s/mid", "/s/cheap"]

    def test_ranking_is_a_permutation_of_the_structural_candidates(self):
        repo, *_ = self._repo_with_unrelated()
        probe = self._probe_all_filters()
        structural = repo.match_candidates(probe)
        ranked = repo.match_candidates(probe, ranker=SavingsRanker(make_cost_model()))
        assert sorted(e.entry_id for e in ranked) == \
            sorted(e.entry_id for e in structural)

    def test_subsumption_overrides_savings(self):
        # The contained entry has far better estimated savings, but its
        # container still goes first: rule 1 stays a hard constraint.
        repo = Repository()
        container = repo.insert(entry(
            "/s/container", ops=[("filter", "a"), ("foreach", "x")],
            time=20.0, output_bytes=10**6))
        contained = repo.insert(entry(
            "/s/contained", ops=[("filter", "a")],
            time=900.0, output_bytes=10**3))
        model = make_cost_model()
        assert estimate_entry_savings(contained, model) > \
            estimate_entry_savings(container, model)
        probe = chain_plan("/out/p", ops=[("filter", "a"), ("foreach", "x"),
                                          ("distinct", "d")])
        ordered = repo.match_candidates(probe, ranker=SavingsRanker(model))
        paths = [e.output_path for e in ordered]
        assert paths.index("/s/container") < paths.index("/s/contained")

    def test_equal_savings_tiebreak_is_scan_order(self):
        repo = Repository()
        for i in range(4):
            repo.insert(entry(f"/s/{i}", ops=[("filter", f"f{i}")],
                              time=100.0, output_bytes=1000))
        probe = chain_plan("/out/p", ops=[("filter", "f0"), ("filter", "f1"),
                                          ("filter", "f2"), ("filter", "f3"),
                                          ("foreach", "x")])
        structural = repo.match_candidates(probe)
        ranked = repo.match_candidates(probe, ranker=SavingsRanker(make_cost_model()))
        assert ranked == structural  # identical stats -> structural order

    def test_order_is_deterministic(self):
        repo, *_ = self._repo_with_unrelated()
        ranker = SavingsRanker(make_cost_model())
        probe = self._probe_all_filters()
        first = repo.match_candidates(probe, ranker=ranker)
        second = repo.match_candidates(probe, ranker=ranker)
        assert first == second

    def test_sharded_savings_order_matches_unsharded(self):
        model = make_cost_model()
        plain, sharded = Repository(), ShardedRepository(num_shards=4)
        for i in range(12):
            for repo in (plain, sharded):
                repo.insert(entry(f"/s/{i}", ops=[("filter", f"f{i % 5}")],
                                  time=10.0 * (i + 1),
                                  output_bytes=10 ** (3 + i % 3),
                                  path=f"/data/d{i % 3}"))
        probe_ops = [("filter", f"f{i}") for i in range(5)] + [("foreach", "x")]
        for data in range(3):
            probe = chain_plan("/out/p", path=f"/data/d{data}", ops=probe_ops)
            assert [e.output_path
                    for e in sharded.match_candidates(probe, ranker=SavingsRanker(model))] == \
                [e.output_path
                 for e in plain.match_candidates(probe, ranker=SavingsRanker(model))]


class TestManagerKnob:
    def _scenario(self, **kwargs):
        dfs = make_dfs()
        seed_page_views(dfs)
        seed_users(dfs, include=range(6))
        restore = ReStore(dfs, make_cost_model(), **kwargs)
        costs = 0.0
        for name, text in (("q1", Q1_TEXT), ("q2", Q2_TEXT), ("q2b", Q2_TEXT)):
            result = restore.submit(compile_query(text, name, dfs))
            costs += result.total_execution_time
        return restore, dfs.read_lines("/out/L3_out"), costs

    def test_default_report_names_structural_ranker(self):
        restore, _, _ = self._scenario()
        assert restore.ranker.name == "structural"
        assert restore.last_report.ranking.ranker_name == "structural"

    def test_ledger_records_every_rewrite(self):
        restore, _, _ = self._scenario()
        report = restore.last_report
        assert len(report.ranking) == report.num_rewrites >= 1
        for decision in report.ranking.decisions:
            assert decision.estimated_savings == \
                pytest.approx(decision.realized_savings)
            assert decision.as_dict()["estimate_error"] == pytest.approx(0.0)

    def test_savings_ranker_same_outputs_and_no_worse_cost(self):
        structural, out_structural, cost_structural = self._scenario()
        savings, out_savings, cost_savings = self._scenario(ranker="savings")
        assert savings.last_report.ranking.ranker_name == "savings"
        assert out_savings == out_structural
        assert cost_savings <= cost_structural + 1e-9

    def test_savings_ledger_estimates_are_finite_and_recorded(self):
        restore, _, _ = self._scenario(ranker="savings")
        ledger = restore.last_report.ranking
        assert len(ledger) >= 1
        assert ledger.total_estimated_savings == pytest.approx(
            sum(d.estimated_savings for d in ledger.decisions))
        assert "savings" in ledger.describe()

    def test_invalid_ranker_rejected(self):
        with pytest.raises(ValueError):
            ReStore(make_dfs(), make_cost_model(), ranker="fastest")

    def test_ledger_uses_the_rankers_own_cost_model(self):
        # A ranker constructed over a different cost model (e.g. a
        # scaled one) ranks by that model — the ledger must log the
        # number the ranker actually ranked by, not re-estimate with
        # the manager's model.
        scaled = make_cost_model(scale=100.0)
        ranker = SavingsRanker(scaled)
        restore, _, _ = self._scenario(ranker=ranker)
        ledger = restore.last_report.ranking
        assert len(ledger) >= 1
        for decision in ledger.decisions:
            entry = restore.repository.entry(decision.entry_id)
            assert decision.estimated_savings == pytest.approx(
                estimate_entry_savings(entry, scaled))


class TestLedgerSurfaces:
    def test_empty_ledger_describe(self):
        from repro.restore.stats import RankingLedger

        ledger = RankingLedger("savings")
        assert "no rewrites" in ledger.describe()
        assert ledger.mean_absolute_error == 0.0
        assert ledger.as_dict()["decisions"] == []
        assert "savings" in repr(ledger)

    def test_decision_repr_and_error(self):
        from repro.restore.stats import RankingLedger

        ledger = RankingLedger()
        decision = ledger.record("j1", "e1", 12.0, 10.0)
        assert decision.estimate_error == pytest.approx(2.0)
        assert ledger.mean_absolute_error == pytest.approx(2.0)
        assert "j1" in repr(decision) and "e1" in repr(decision)
        summary = ledger.as_dict()
        assert summary["total_estimated_savings"] == pytest.approx(12.0)
        assert summary["total_realized_savings"] == pytest.approx(10.0)

    def test_report_describe_mentions_ranker(self):
        restore, _, _ = TestManagerKnob()._scenario(ranker="savings")
        assert "ranker=savings" in restore.last_report.describe()
