"""Unit tests for the Pig Latin lexer."""

import pytest

from repro.common.errors import ParseError
from repro.piglatin import tokenize
from repro.piglatin.tokens import TokenKind


def kinds(text):
    return [token.kind for token in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [token.text for token in tokenize(text)][:-1]


class TestBasics:
    def test_empty_input_gives_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_names_and_symbols(self):
        assert texts("A = load 'x';") == ["A", "=", "load", "x", ";"]

    def test_keywords_are_names(self):
        (token,) = tokenize("FOREACH")[:-1]
        assert token.kind is TokenKind.NAME
        assert token.matches_keyword("foreach")

    def test_integers_and_doubles(self):
        tokens = tokenize("42 3.25")[:-1]
        assert tokens[0].kind is TokenKind.INT
        assert tokens[1].kind is TokenKind.DOUBLE
        assert tokens[1].text == "3.25"

    def test_dot_after_int_is_deref_when_not_decimal(self):
        # "B.action" style: the dot must not glue onto a number context.
        assert texts("a.b") == ["a", ".", "b"]

    def test_dollar_positional(self):
        tokens = tokenize("$12")[:-1]
        assert tokens[0].kind is TokenKind.DOLLAR
        assert tokens[0].text == "12"

    def test_dollar_without_digits_raises(self):
        with pytest.raises(ParseError):
            tokenize("$x")

    def test_strings_with_escapes(self):
        tokens = tokenize(r"'a\'b'")[:-1]
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "a'b"

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_double_colon_is_one_token(self):
        assert texts("users::name") == ["users", "::", "name"]

    def test_colon_in_field_spec(self):
        assert texts("user:chararray") == ["user", ":", "chararray"]

    def test_comparison_operators(self):
        assert texts("a == b != c <= d >= e < f > g") == [
            "a", "==", "b", "!=", "c", "<=", "d", ">=", "e", "<", "f", ">", "g"
        ]

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError):
            tokenize("a ~ b")


class TestCommentsAndPositions:
    def test_line_comments_skipped(self):
        assert texts("a -- comment here\nb") == ["a", "b"]

    def test_block_comments_skipped(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(ParseError):
            tokenize("a /* never closed")

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\n  c")[:-1]
        assert [token.line for token in tokens] == [1, 2, 3]
        assert tokens[2].column == 3

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("ok\n  ~")
        assert excinfo.value.line == 2
