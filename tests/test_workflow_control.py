"""Tests for workflow orchestration: topology, Equation 1, JobControl hooks."""

import pytest

from repro.common.errors import ExecutionError
from repro.data import DataType, encode_row, Field, Schema
from repro.mapreduce import Workflow, WorkflowExecutor
from repro.mapreduce.runner import JobRunResult
from repro.mrcompiler import JobControl

from tests.helpers import compile_query, make_cost_model, make_dfs

DIAMOND_QUERY = """
A = load '/data/a' as (x:int);
B = distinct A;
C = load '/data/c' as (x:int);
D = distinct C;
E = union B, D;
F = distinct E;
store F into '/out/diamond';
"""

SCHEMA = Schema([Field("x", DataType.INT)])


def seeded_dfs():
    dfs = make_dfs()
    dfs.write_lines("/data/a", [encode_row((i,), SCHEMA) for i in range(20)])
    dfs.write_lines("/data/c", [encode_row((i,), SCHEMA) for i in range(10, 30)])
    return dfs


class TestTopology:
    def test_topological_order_respects_dependencies(self):
        dfs = seeded_dfs()
        workflow = compile_query(DIAMOND_QUERY, "d", dfs)
        order = workflow.topological_jobs()
        positions = {job.job_id: pos for pos, job in enumerate(order)}
        for job in workflow.jobs:
            for dep in job.dependencies:
                assert positions[dep.job_id] < positions[job.job_id]

    def test_cycle_detection(self):
        dfs = seeded_dfs()
        workflow = compile_query(DIAMOND_QUERY, "d", dfs)
        a, b = workflow.jobs[0], workflow.jobs[-1]
        a.dependencies.append(b)
        b.dependencies.append(a)
        with pytest.raises(ExecutionError):
            workflow.topological_jobs()

    def test_describe_lists_all_jobs(self):
        dfs = seeded_dfs()
        workflow = compile_query(DIAMOND_QUERY, "d", dfs)
        text = workflow.describe()
        for job in workflow.jobs:
            assert job.job_id in text

    def test_final_output_paths(self):
        dfs = seeded_dfs()
        workflow = compile_query(DIAMOND_QUERY, "d", dfs)
        assert workflow.final_output_paths() == ["/out/diamond"]


class TestEquation1:
    def test_diamond_critical_path(self):
        dfs = seeded_dfs()
        workflow = compile_query(DIAMOND_QUERY, "d", dfs)
        result = WorkflowExecutor(dfs, make_cost_model()).execute(workflow)
        final = [job for job in workflow.jobs if job.dependencies][0]
        dep_times = [result.completion_times[dep.job_id]
                     for dep in final.dependencies]
        expected = result.job_results[final.job_id].execution_time + max(dep_times)
        assert result.completion_times[final.job_id] == pytest.approx(expected)
        # The workflow time is the critical path, NOT the sum of all jobs.
        assert result.total_time < result.total_execution_time

    def test_union_output_correct(self):
        dfs = seeded_dfs()
        workflow = compile_query(DIAMOND_QUERY, "d", dfs)
        WorkflowExecutor(dfs, make_cost_model()).execute(workflow)
        values = sorted(int(line) for line in dfs.read_lines("/out/diamond"))
        assert values == list(range(30))

    def test_result_describe(self):
        dfs = seeded_dfs()
        workflow = compile_query(DIAMOND_QUERY, "d", dfs)
        result = WorkflowExecutor(dfs, make_cost_model()).execute(workflow)
        assert "total" in result.describe()


class _SkippingControl(JobControl):
    """Skips every job with no dependencies (for hook testing)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.prepared = []
        self.after = []

    def prepare_job(self, job, workflow, result):
        self.prepared.append(job.job_id)
        return bool(job.dependencies)

    def after_job(self, job, run_result, executed):
        self.after.append((job.job_id, executed, run_result.skipped))


class TestJobControlHooks:
    def test_hooks_called_in_dependency_order(self):
        dfs = seeded_dfs()
        workflow = compile_query(DIAMOND_QUERY, "d", dfs)
        control = _SkippingControl(dfs, make_cost_model())
        # Skipping the producer jobs leaves the final job without inputs:
        # the missing temp file surfaces as a DFS error.
        from repro.common.errors import DfsError

        with pytest.raises(DfsError):
            control.run(workflow)
        assert control.prepared  # prepare ran before the failure

    def test_skipped_jobs_have_zero_time(self):
        result = JobRunResult.skipped_job("j1")
        assert result.skipped
        assert result.execution_time == 0.0

    def test_plain_jobcontrol_cleans_temps(self):
        dfs = seeded_dfs()
        workflow = compile_query(DIAMOND_QUERY, "d", dfs)
        JobControl(dfs, make_cost_model()).run(workflow)
        for path in workflow.temp_paths:
            assert not dfs.exists(path)

    def test_keep_temps_flag(self):
        dfs = seeded_dfs()
        workflow = compile_query(DIAMOND_QUERY, "d", dfs)
        JobControl(dfs, make_cost_model(), keep_temps=True).run(workflow)
        assert any(dfs.exists(path) for path in workflow.temp_paths)

    def test_deadlock_detection(self):
        dfs = seeded_dfs()
        workflow = compile_query(DIAMOND_QUERY, "d", dfs)
        # An external dependency that is never part of the workflow.
        ghost_workflow = compile_query(DIAMOND_QUERY, "ghost", dfs)
        workflow.jobs[0].dependencies.append(ghost_workflow.jobs[0])
        with pytest.raises(ExecutionError):
            JobControl(dfs, make_cost_model()).run(workflow)
