"""Tests for plan containment matching (Algorithm 1)."""

import pytest

from repro.logical import build_logical_plan
from repro.physical import logical_to_physical, PhysicalPlan
from repro.physical.operators import POStore
from repro.piglatin import parse_query
from repro.restore.matcher import contains, find_containment, pairwise_plan_traversal

from tests.helpers import Q1_TEXT, Q2_TEXT


def physical(text, versions=None):
    return logical_to_physical(build_logical_plan(parse_query(text)), versions)


def as_entry_plan(plan):
    """Use a query plan as a repository entry plan (it ends with a Store)."""
    assert len(plan.stores()) == 1
    return plan


PROJECT_PV = """
A = load '/data/page_views' as (user:chararray, timestamp:int,
    est_revenue:double, page_info:chararray, page_links:chararray);
B = foreach A generate user, est_revenue;
store B into '/stored/pv_proj';
"""

PROJECT_USERS = """
alpha = load '/data/users' as (name:chararray, phone:chararray,
    address:chararray, city:chararray);
beta = foreach alpha generate name;
store beta into '/stored/users_proj';
"""


class TestContainment:
    def test_plan_contains_itself(self):
        q1 = physical(Q1_TEXT)
        match = find_containment(as_entry_plan(q1), physical(Q1_TEXT))
        assert match is not None
        # Frontier of a full self-match is the operator feeding the store.
        assert match.frontier.kind == "join"

    def test_q1_contained_in_q2(self):
        # The paper's example: Q1 (the join) is contained in Q2.
        match = find_containment(physical(Q1_TEXT), physical(Q2_TEXT))
        assert match is not None
        assert match.frontier.kind == "join"

    def test_q2_not_contained_in_q1(self):
        assert find_containment(physical(Q2_TEXT), physical(Q1_TEXT)) is None

    def test_projection_subjobs_contained_in_q1(self):
        # Figure 5's sub-jobs match inside Q1's plan.
        for text in (PROJECT_PV, PROJECT_USERS):
            match = find_containment(physical(text), physical(Q1_TEXT))
            assert match is not None
            assert match.frontier.kind == "foreach"

    def test_different_dataset_does_not_match(self):
        other = PROJECT_PV.replace("/data/page_views", "/data/other")
        assert find_containment(physical(other), physical(Q1_TEXT)) is None

    def test_different_dataset_version_does_not_match(self):
        entry = physical(PROJECT_PV, versions={"/data/page_views": 1})
        newer = physical(Q1_TEXT, versions={"/data/page_views": 2})
        assert find_containment(entry, newer) is None
        same = physical(Q1_TEXT, versions={"/data/page_views": 1})
        assert find_containment(entry, same) is not None

    def test_different_projection_does_not_match(self):
        entry = physical(PROJECT_PV.replace("user, est_revenue", "user, timestamp"))
        assert find_containment(entry, physical(Q1_TEXT)) is None

    def test_filter_predicate_must_match_exactly(self):
        def filter_query(threshold):
            return (
                "A = load '/d' as (x:int, y:int);"
                f"B = filter A by x > {threshold};"
                "store B into '/o';"
            )

        assert contains(physical(filter_query(5)), physical(filter_query(5)))
        assert not contains(physical(filter_query(5)), physical(filter_query(6)))

    def test_field_names_do_not_matter_positions_do(self):
        # Operator equivalence is positional: same function, different
        # user-chosen names.
        a = (
            "A = load '/d' as (foo:chararray, bar:int);"
            "B = foreach A generate foo;"
            "store B into '/o1';"
        )
        b = (
            "X = load '/d' as (baz:chararray, qux:int);"
            "Y = foreach X generate baz;"
            "store Y into '/o2';"
        )
        assert contains(physical(a), physical(b))

    def test_join_input_order_matters(self):
        flipped = Q1_TEXT.replace("join beta by name, B by user",
                                  "join B by user, beta by name")
        assert not contains(physical(Q1_TEXT), physical(flipped))

    def test_frontier_is_never_a_bare_load(self):
        # An entry that is Load->Store must not "match" another plan's Load.
        copy_plan = physical("A = load '/d' as (x:int); store A into '/o';")
        target = physical(
            "A = load '/d' as (x:int); B = filter A by x > 0; store B into '/o2';"
        )
        assert find_containment(copy_plan, target) is None

    def test_mapping_covers_all_entry_operators(self):
        entry = physical(PROJECT_PV)
        target = physical(Q1_TEXT)
        match = find_containment(entry, target)
        non_store_ops = [
            op for op in entry.operators() if not isinstance(op, POStore)
        ]
        assert len(match.mapping) == len(non_store_ops)

    def test_group_keys_must_match(self):
        base = (
            "A = load '/d' as (u:chararray, t:int);"
            "B = group A by {key};"
            "C = foreach B generate group, COUNT(A);"
            "store C into '/o';"
        )
        by_u = physical(base.format(key="u"))
        by_t = physical(base.format(key="t"))
        assert not contains(by_u, by_t)
        assert contains(by_u, physical(base.format(key="u")))

    def test_aggregate_function_must_match(self):
        base = (
            "A = load '/d' as (u:chararray, t:int);"
            "B = group A by u;"
            "C = foreach B generate group, {agg}(A.t);"
            "store C into '/o';"
        )
        sum_plan = physical(base.format(agg="SUM"))
        avg_plan = physical(base.format(agg="AVG"))
        assert not contains(sum_plan, avg_plan)

    def test_shared_join_prefix_across_aggregates_matches(self):
        # L3-variant scenario: the join is shared even when the final
        # aggregate differs.
        q2_avg = Q2_TEXT.replace("SUM", "AVG")
        assert contains(physical(Q1_TEXT), physical(q2_avg))


class TestPairwiseTraversal:
    def test_agrees_with_find_containment_on_paper_plans(self):
        cases = [
            (PROJECT_PV, Q1_TEXT, True),
            (PROJECT_USERS, Q1_TEXT, True),
            (Q1_TEXT, Q2_TEXT, True),
            (Q2_TEXT, Q1_TEXT, False),
            (PROJECT_PV.replace("page_views", "other"), Q1_TEXT, False),
        ]
        for entry_text, input_text, expected in cases:
            entry = physical(entry_text)
            target = physical(input_text)
            assert pairwise_plan_traversal(target, entry) is expected
            assert (find_containment(entry, target) is not None) is expected
