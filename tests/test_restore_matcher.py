"""Tests for plan containment matching (Algorithm 1)."""

import random

import pytest

from repro.logical import build_logical_plan
from repro.physical import logical_to_physical, PhysicalPlan
from repro.physical.operators import POLoad, POSplit, POStore
from repro.piglatin import parse_query
from repro.restore.matcher import contains, find_containment, pairwise_plan_traversal
from repro.restore.persistence import SkeletonOp

from tests.helpers import Q1_TEXT, Q2_TEXT


def physical(text, versions=None):
    return logical_to_physical(build_logical_plan(parse_query(text)), versions)


def as_entry_plan(plan):
    """Use a query plan as a repository entry plan (it ends with a Store)."""
    assert len(plan.stores()) == 1
    return plan


PROJECT_PV = """
A = load '/data/page_views' as (user:chararray, timestamp:int,
    est_revenue:double, page_info:chararray, page_links:chararray);
B = foreach A generate user, est_revenue;
store B into '/stored/pv_proj';
"""

PROJECT_USERS = """
alpha = load '/data/users' as (name:chararray, phone:chararray,
    address:chararray, city:chararray);
beta = foreach alpha generate name;
store beta into '/stored/users_proj';
"""


class TestContainment:
    def test_plan_contains_itself(self):
        q1 = physical(Q1_TEXT)
        match = find_containment(as_entry_plan(q1), physical(Q1_TEXT))
        assert match is not None
        # Frontier of a full self-match is the operator feeding the store.
        assert match.frontier.kind == "join"

    def test_q1_contained_in_q2(self):
        # The paper's example: Q1 (the join) is contained in Q2.
        match = find_containment(physical(Q1_TEXT), physical(Q2_TEXT))
        assert match is not None
        assert match.frontier.kind == "join"

    def test_q2_not_contained_in_q1(self):
        assert find_containment(physical(Q2_TEXT), physical(Q1_TEXT)) is None

    def test_projection_subjobs_contained_in_q1(self):
        # Figure 5's sub-jobs match inside Q1's plan.
        for text in (PROJECT_PV, PROJECT_USERS):
            match = find_containment(physical(text), physical(Q1_TEXT))
            assert match is not None
            assert match.frontier.kind == "foreach"

    def test_different_dataset_does_not_match(self):
        other = PROJECT_PV.replace("/data/page_views", "/data/other")
        assert find_containment(physical(other), physical(Q1_TEXT)) is None

    def test_different_dataset_version_does_not_match(self):
        entry = physical(PROJECT_PV, versions={"/data/page_views": 1})
        newer = physical(Q1_TEXT, versions={"/data/page_views": 2})
        assert find_containment(entry, newer) is None
        same = physical(Q1_TEXT, versions={"/data/page_views": 1})
        assert find_containment(entry, same) is not None

    def test_different_projection_does_not_match(self):
        entry = physical(PROJECT_PV.replace("user, est_revenue", "user, timestamp"))
        assert find_containment(entry, physical(Q1_TEXT)) is None

    def test_filter_predicate_must_match_exactly(self):
        def filter_query(threshold):
            return (
                "A = load '/d' as (x:int, y:int);"
                f"B = filter A by x > {threshold};"
                "store B into '/o';"
            )

        assert contains(physical(filter_query(5)), physical(filter_query(5)))
        assert not contains(physical(filter_query(5)), physical(filter_query(6)))

    def test_field_names_do_not_matter_positions_do(self):
        # Operator equivalence is positional: same function, different
        # user-chosen names.
        a = (
            "A = load '/d' as (foo:chararray, bar:int);"
            "B = foreach A generate foo;"
            "store B into '/o1';"
        )
        b = (
            "X = load '/d' as (baz:chararray, qux:int);"
            "Y = foreach X generate baz;"
            "store Y into '/o2';"
        )
        assert contains(physical(a), physical(b))

    def test_join_input_order_matters(self):
        flipped = Q1_TEXT.replace("join beta by name, B by user",
                                  "join B by user, beta by name")
        assert not contains(physical(Q1_TEXT), physical(flipped))

    def test_frontier_is_never_a_bare_load(self):
        # An entry that is Load->Store must not "match" another plan's Load.
        copy_plan = physical("A = load '/d' as (x:int); store A into '/o';")
        target = physical(
            "A = load '/d' as (x:int); B = filter A by x > 0; store B into '/o2';"
        )
        assert find_containment(copy_plan, target) is None

    def test_mapping_covers_all_entry_operators(self):
        entry = physical(PROJECT_PV)
        target = physical(Q1_TEXT)
        match = find_containment(entry, target)
        non_store_ops = [
            op for op in entry.operators() if not isinstance(op, POStore)
        ]
        assert len(match.mapping) == len(non_store_ops)

    def test_group_keys_must_match(self):
        base = (
            "A = load '/d' as (u:chararray, t:int);"
            "B = group A by {key};"
            "C = foreach B generate group, COUNT(A);"
            "store C into '/o';"
        )
        by_u = physical(base.format(key="u"))
        by_t = physical(base.format(key="t"))
        assert not contains(by_u, by_t)
        assert contains(by_u, physical(base.format(key="u")))

    def test_aggregate_function_must_match(self):
        base = (
            "A = load '/d' as (u:chararray, t:int);"
            "B = group A by u;"
            "C = foreach B generate group, {agg}(A.t);"
            "store C into '/o';"
        )
        sum_plan = physical(base.format(agg="SUM"))
        avg_plan = physical(base.format(agg="AVG"))
        assert not contains(sum_plan, avg_plan)

    def test_shared_join_prefix_across_aggregates_matches(self):
        # L3-variant scenario: the join is shared even when the final
        # aggregate differs.
        q2_avg = Q2_TEXT.replace("SUM", "AVG")
        assert contains(physical(Q1_TEXT), physical(q2_avg))


class TestPairwiseTraversal:
    def test_agrees_with_find_containment_on_paper_plans(self):
        cases = [
            (PROJECT_PV, Q1_TEXT, True),
            (PROJECT_USERS, Q1_TEXT, True),
            (Q1_TEXT, Q2_TEXT, True),
            (Q2_TEXT, Q1_TEXT, False),
            (PROJECT_PV.replace("page_views", "other"), Q1_TEXT, False),
        ]
        for entry_text, input_text, expected in cases:
            entry = physical(entry_text)
            target = physical(input_text)
            assert pairwise_plan_traversal(target, entry) is expected
            assert (find_containment(entry, target) is not None) is expected


# --- Differential fuzzing: Algorithm 1 vs find_containment --------------------
#
# The two containment implementations must agree on arbitrary plan DAGs,
# not just the plans the Pig compiler happens to produce: random
# structural plans (skeleton operators over a small signature pool, so
# collisions — and therefore matches — are frequent) with Splits
# sprinkled in and multi-Store input plans. The only excluded entries
# are the two documented boundary shapes, pinned by directed tests
# below: bare Load->Store entries (no match frontier by design) and
# multi-Store entries (find_containment rejects them outright).

_FUZZ_PATHS = ["/data/a", "/data/b", "/data/c"]
_FUZZ_UNARY = ["filter", "foreach", "distinct"]


def _random_nodes(rng, *, allow_splits=True):
    """A random operator DAG (as the list of all nodes, leaves first)."""
    nodes = [POLoad(rng.choice(_FUZZ_PATHS), None, rng.choice([0, 0, 1]))
             for _ in range(rng.randint(1, 2))]
    for _ in range(rng.randint(1, 5)):
        roll = rng.random()
        if roll < 0.15 and len(nodes) >= 2:
            left, right = rng.sample(nodes, 2)
            node = SkeletonOp("join", f"JOIN[k{rng.randint(0, 1)}]", None,
                              [left, right])
        elif roll < 0.30 and allow_splits:
            node = POSplit(rng.choice(nodes))
        else:
            kind = rng.choice(_FUZZ_UNARY)
            node = SkeletonOp(kind, f"{kind.upper()}[t{rng.randint(0, 2)}]",
                              None, [rng.choice(nodes)])
        nodes.append(node)
    return nodes


def _skip_splits(op):
    while op.kind == "split":
        op = op.inputs[0]
    return op


def _random_entry_plan(rng):
    """A single-Store entry plan over a random DAG; sometimes with a
    Split directly under the Store (the shape match_frontier skips)."""
    nodes = _random_nodes(rng)
    frontiers = [op for op in nodes if _skip_splits(op).kind != "load"]
    if not frontiers:
        return None
    frontier = rng.choice(frontiers)
    if rng.random() < 0.25:
        frontier = POSplit(frontier)
    return PhysicalPlan([POStore(frontier, "/stored/fuzz")])


def _random_input_plan(rng, entry_plan):
    """A random input plan; half the time it embeds a clone of the
    entry's computation (extended with extra operators and sometimes a
    second Store), so positive containments are frequent."""
    if entry_plan is not None and rng.random() < 0.5:
        cloned, _ = entry_plan.clone()
        node = cloned.stores()[0].inputs[0]
        for _ in range(rng.randint(0, 3)):
            kind = rng.choice(_FUZZ_UNARY)
            node = SkeletonOp(kind, f"{kind.upper()}[t{rng.randint(0, 2)}]",
                              None, [node])
        sinks = [POStore(node, "/out/fuzz")]
        extra_nodes = None
    else:
        extra_nodes = _random_nodes(rng)
        sinks = [POStore(rng.choice(extra_nodes), "/out/fuzz")]
    if extra_nodes is None and rng.random() < 0.3:
        branch = _random_nodes(rng)
        sinks.append(POStore(rng.choice(branch), "/out/fuzz2"))
    elif extra_nodes is not None and rng.random() < 0.3:
        sinks.append(POStore(rng.choice(extra_nodes), "/out/fuzz2"))
    return PhysicalPlan(sinks)


class TestDifferentialFuzz:
    def test_algorithms_agree_on_300_random_plan_pairs(self):
        rng = random.Random(20260726)
        agreements = {True: 0, False: 0}
        pairs = 0
        while pairs < 300:
            entry = _random_entry_plan(rng)
            if entry is None:
                continue
            target = _random_input_plan(rng, entry)
            pairs += 1
            via_containment = find_containment(entry, target) is not None
            via_traversal = pairwise_plan_traversal(target, entry)
            assert via_containment == via_traversal, (
                f"pair {pairs}: find_containment={via_containment}, "
                f"pairwise_plan_traversal={via_traversal}\n"
                f"entry:\n{entry.describe()}\ninput:\n{target.describe()}"
            )
            agreements[via_containment] += 1
        # The fuzz must exercise both verdicts, or agreement is vacuous.
        assert agreements[True] >= 30, agreements
        assert agreements[False] >= 30, agreements

    def test_split_under_entry_store_is_transparent_to_both(self):
        # Regression for the Algorithm 1 transcription: an entry whose
        # Store hangs off a Split must match exactly like the same entry
        # without the Split (find_containment's match_frontier skips it;
        # the traversal used to demand a literal Split twin and said no).
        load = POLoad("/data/a", None, 0)
        chain = SkeletonOp("filter", "FILTER[t0]", None, [load])
        entry = PhysicalPlan([POStore(POSplit(chain), "/stored/s")])
        target_chain = SkeletonOp(
            "foreach", "FOREACH[x]", None,
            [SkeletonOp("filter", "FILTER[t0]", None,
                        [POLoad("/data/a", None, 0)])])
        target = PhysicalPlan([POStore(target_chain, "/out/p")])
        assert find_containment(entry, target) is not None
        assert pairwise_plan_traversal(target, entry)

    def test_interior_split_in_entry_blocks_both(self):
        # A Split *between* entry operators is never produced by
        # registration (clone_subgraph bypasses splits); both matchers
        # conservatively reject such an entry the same way.
        load = POLoad("/data/a", None, 0)
        filt = SkeletonOp("filter", "FILTER[t0]", None, [load])
        top = SkeletonOp("foreach", "FOREACH[x]", None, [POSplit(filt)])
        entry = PhysicalPlan([POStore(top, "/stored/s")])
        target_chain = SkeletonOp(
            "foreach", "FOREACH[x]", None,
            [SkeletonOp("filter", "FILTER[t0]", None,
                        [POLoad("/data/a", None, 0)])])
        target = PhysicalPlan([POStore(target_chain, "/out/p")])
        assert find_containment(entry, target) is None
        assert not pairwise_plan_traversal(target, entry)

    def test_multi_store_input_plan_matches_in_either_branch(self):
        entry = PhysicalPlan([POStore(
            SkeletonOp("filter", "FILTER[t1]", None,
                       [POLoad("/data/b", None, 0)]), "/stored/s")])
        other = SkeletonOp("distinct", "DISTINCT[t0]", None,
                           [POLoad("/data/a", None, 0)])
        matching = SkeletonOp("filter", "FILTER[t1]", None,
                              [POLoad("/data/b", None, 0)])
        target = PhysicalPlan([POStore(other, "/out/p1"),
                               POStore(matching, "/out/p2")])
        assert find_containment(entry, target) is not None
        assert pairwise_plan_traversal(target, entry)

    def test_multi_store_entry_is_a_documented_boundary(self):
        # Repository entries always have exactly one Store;
        # find_containment enforces that loudly while Algorithm 1's
        # transcription simply traverses whatever it is given. The fuzz
        # generator therefore only emits single-Store entries.
        shared = SkeletonOp("filter", "FILTER[t0]", None,
                            [POLoad("/data/a", None, 0)])
        entry = PhysicalPlan([POStore(shared, "/stored/s1"),
                              POStore(shared, "/stored/s2")])
        target = PhysicalPlan([POStore(
            SkeletonOp("filter", "FILTER[t0]", None,
                       [POLoad("/data/a", None, 0)]), "/out/p")])
        with pytest.raises(ValueError):
            find_containment(entry, target)
        assert pairwise_plan_traversal(target, entry)

    def test_bare_load_entry_is_a_documented_boundary(self):
        # A Load->Store entry has no match frontier by design (replacing
        # a Load with a Load is a useless rewrite), so find_containment
        # answers None while the literal traversal — which only asks
        # "does every entry operator have an equivalent" — says yes.
        # This is the one shape the agreement property excludes.
        entry = PhysicalPlan([POStore(POLoad("/data/a", None, 0), "/stored/s")])
        target = PhysicalPlan([POStore(
            SkeletonOp("filter", "FILTER[t0]", None,
                       [POLoad("/data/a", None, 0)]), "/out/p")])
        assert find_containment(entry, target) is None
        assert pairwise_plan_traversal(target, entry)
