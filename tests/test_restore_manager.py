"""End-to-end ReStore tests: reuse across workflows, per the paper."""

import pytest

from repro.restore import (
    AggressiveHeuristic,
    ConservativeHeuristic,
    NoHeuristic,
    ReStore,
)

from tests.helpers import (
    compile_query,
    make_cost_model,
    make_dfs,
    Q1_TEXT,
    Q2_TEXT,
    seed_page_views,
    seed_users,
)


def fresh_restore(dfs, **kwargs):
    return ReStore(dfs, make_cost_model(), **kwargs)


def baseline_output(text, out_path):
    """Run ``text`` on a fresh, identical cluster without any reuse."""
    dfs = make_dfs()
    seed_page_views(dfs)
    seed_users(dfs, include=range(6))
    from repro.mapreduce import WorkflowExecutor

    workflow = compile_query(text, "baseline", dfs)
    WorkflowExecutor(dfs, make_cost_model()).execute(workflow)
    return dfs.read_lines(out_path)


class TestWholeJobReuse:
    def setup_method(self):
        self.dfs = make_dfs()
        seed_page_views(self.dfs)
        seed_users(self.dfs, include=range(6))

    def test_q2_reuses_q1_join(self):
        # The paper's running example (Figures 2-4): Q1's join job output
        # is reused by Q2, whose workflow drops to one MapReduce job.
        restore = fresh_restore(self.dfs, heuristic=None)
        restore.submit(compile_query(Q1_TEXT, "q1", self.dfs))
        assert len(restore.repository) >= 1

        result = restore.submit(compile_query(Q2_TEXT, "q2", self.dfs))
        report = restore.last_report
        assert report.num_rewrites >= 1
        executed = [r for r in result.job_results.values() if not r.skipped]
        assert len(executed) == 1  # only the group job ran

    def test_rewritten_q2_output_identical_to_baseline(self):
        restore = fresh_restore(self.dfs, heuristic=None)
        restore.submit(compile_query(Q1_TEXT, "q1", self.dfs))
        restore.submit(compile_query(Q2_TEXT, "q2", self.dfs))
        assert self.dfs.read_lines("/out/L3_out") == baseline_output(
            Q2_TEXT, "/out/L3_out"
        )

    def test_resubmitted_workflow_eliminates_intermediate_job(self):
        restore = fresh_restore(self.dfs, heuristic=None)
        first = restore.submit(compile_query(Q2_TEXT, "first", self.dfs))
        second = restore.submit(compile_query(Q2_TEXT, "second", self.dfs))
        assert restore.last_report.eliminated_jobs  # the join job vanished
        assert second.total_time < first.total_time
        assert self.dfs.read_lines("/out/L3_out") == baseline_output(
            Q2_TEXT, "/out/L3_out"
        )

    def test_reuse_is_faster(self):
        restore = fresh_restore(self.dfs, heuristic=None)
        first = restore.submit(compile_query(Q2_TEXT, "w1", self.dfs))
        second = restore.submit(compile_query(Q2_TEXT, "w2", self.dfs))
        assert second.total_time < first.total_time

    def test_modified_input_prevents_reuse(self):
        restore = fresh_restore(self.dfs, heuristic=None)
        restore.submit(compile_query(Q1_TEXT, "q1", self.dfs))
        # Overwrite page_views: versions change, stored outputs are stale.
        seed_page_views(self.dfs, seed=99)
        restore.submit(compile_query(Q2_TEXT, "q2", self.dfs))
        assert restore.last_report.num_rewrites == 0
        # Output must reflect the NEW data (no stale reuse).
        fresh = make_dfs()
        seed_page_views(fresh, seed=99)
        seed_users(fresh, include=range(6))
        from repro.mapreduce import WorkflowExecutor

        WorkflowExecutor(fresh, make_cost_model()).execute(
            compile_query(Q2_TEXT, "check", fresh)
        )
        assert self.dfs.read_lines("/out/L3_out") == fresh.read_lines("/out/L3_out")


class TestSubJobReuse:
    def setup_method(self):
        self.dfs = make_dfs()
        seed_page_views(self.dfs)
        seed_users(self.dfs, include=range(6))

    def test_aggressive_injects_stores_for_q1(self):
        restore = fresh_restore(self.dfs, heuristic=AggressiveHeuristic())
        restore.submit(compile_query(Q1_TEXT, "q1", self.dfs))
        kinds = sorted(kind for _, kind, _ in restore.last_report.injected_stores)
        # Two Projects get Split+Store (Figure 8); the Join feeds the final
        # Store so its output is already materialized.
        assert kinds == ["foreach", "foreach"]

    def test_conservative_vs_aggressive_on_q2(self):
        # The Join itself feeds job1's Store (its output is already
        # materialized as the inter-job temp), so HA adds the Group only.
        for heuristic, expected_kinds in (
            (ConservativeHeuristic(), {"foreach"}),
            (AggressiveHeuristic(), {"foreach", "group"}),
        ):
            dfs = make_dfs()
            seed_page_views(dfs)
            seed_users(dfs, include=range(6))
            restore = fresh_restore(dfs, heuristic=heuristic)
            restore.submit(compile_query(Q2_TEXT, "q2", dfs))
            kinds = {kind for _, kind, _ in restore.last_report.injected_stores}
            assert kinds == expected_kinds

    def test_no_heuristic_injects_most(self):
        counts = {}
        for heuristic in (ConservativeHeuristic(), AggressiveHeuristic(), NoHeuristic()):
            dfs = make_dfs()
            seed_page_views(dfs)
            seed_users(dfs, include=range(6))
            restore = fresh_restore(dfs, heuristic=heuristic)
            restore.submit(compile_query(Q2_TEXT, "q2", dfs))
            counts[heuristic.name] = len(restore.last_report.injected_stores)
        assert counts["conservative"] <= counts["aggressive"] <= counts["no-heuristic"]

    def test_injection_preserves_query_output(self):
        restore = fresh_restore(self.dfs, heuristic=AggressiveHeuristic())
        restore.submit(compile_query(Q2_TEXT, "q2", self.dfs))
        assert self.dfs.read_lines("/out/L3_out") == baseline_output(
            Q2_TEXT, "/out/L3_out"
        )

    def test_q1_reuses_projection_subjobs(self):
        # Figure 6: after the projections are stored, a re-submitted Q1 is
        # rewritten to load the two projected datasets.
        restore = fresh_restore(self.dfs, heuristic=AggressiveHeuristic())
        restore.submit(compile_query(Q1_TEXT, "first", self.dfs))
        result = restore.submit(compile_query(Q1_TEXT, "second", self.dfs))
        # Second run: the entire job was matched (join output stored), so
        # the job collapses to a copy; or at minimum projections reused.
        assert restore.last_report.num_rewrites >= 1
        assert self.dfs.read_lines("/out/L2_out") == baseline_output(
            Q1_TEXT, "/out/L2_out"
        )

    def test_subjob_enables_reuse_across_different_queries(self):
        # Store sub-jobs from Q1; then a NEW query over the projected
        # page_views (group by user) reuses the projection sub-job.
        restore = fresh_restore(self.dfs, heuristic=AggressiveHeuristic())
        restore.submit(compile_query(Q1_TEXT, "q1", self.dfs))
        other = """
        A = load '/data/page_views' as (user:chararray, timestamp:int,
            est_revenue:double, page_info:chararray, page_links:chararray);
        B = foreach A generate user, est_revenue;
        C = group B by user;
        D = foreach C generate group, COUNT(B);
        store D into '/out/other';
        """
        restore.submit(compile_query(other, "other", self.dfs))
        assert restore.last_report.num_rewrites >= 1

    def test_materialized_files_live_under_restore_prefix(self):
        restore = fresh_restore(self.dfs, heuristic=AggressiveHeuristic())
        restore.submit(compile_query(Q1_TEXT, "q1", self.dfs))
        materialized = self.dfs.list_files(ReStore.MATERIALIZED_PREFIX)
        assert len(materialized) == 2


class TestRepositoryBehaviour:
    def setup_method(self):
        self.dfs = make_dfs()
        seed_page_views(self.dfs)
        seed_users(self.dfs, include=range(6))

    def test_whole_job_entry_preferred_over_subjob(self):
        # Ordering rule 1: the join plan subsumes the projection sub-plans,
        # so it must come first in the scan order.
        restore = fresh_restore(self.dfs, heuristic=AggressiveHeuristic())
        restore.submit(compile_query(Q1_TEXT, "q1", self.dfs))
        entries = restore.repository.scan()
        sizes = [entry.num_operators for entry in entries]
        join_entries = [e for e in entries if any(
            op.kind == "join" for op in e.plan.operators())]
        first_join_pos = entries.index(join_entries[0])
        projection_only = [
            e for e in entries
            if all(op.kind in ("load", "foreach", "store")
                   for op in e.plan.operators())
            and any(op.kind == "foreach" for op in e.plan.operators())
        ]
        for proj in projection_only:
            # every subsumed projection entry appears after the join entry
            if any(op.path == "/data/page_views" for op in proj.plan.loads()):
                assert entries.index(proj) > first_join_pos

    def test_q2_rewrite_uses_join_not_projections(self):
        # With both the whole join and the projections stored, Q2 must be
        # rewritten with the join output (the best match, Section 3).
        restore = fresh_restore(self.dfs, heuristic=AggressiveHeuristic())
        restore.submit(compile_query(Q1_TEXT, "q1", self.dfs))
        restore.submit(compile_query(Q2_TEXT, "q2", self.dfs))
        used = [entry_id for _, entry_id in restore.last_report.rewrites]
        first_entry = restore.repository.entry(used[0])
        assert any(op.kind == "join" for op in first_entry.plan.operators())

    def test_registration_can_be_disabled(self):
        restore = fresh_restore(self.dfs, heuristic=None, enable_registration=False)
        restore.submit(compile_query(Q1_TEXT, "q1", self.dfs))
        assert len(restore.repository) == 0

    def test_rewrite_can_be_disabled(self):
        restore = fresh_restore(self.dfs, heuristic=None)
        restore.submit(compile_query(Q1_TEXT, "q1", self.dfs))
        no_reuse = fresh_restore(self.dfs, heuristic=None, enable_rewrite=False)
        no_reuse.repository = restore.repository
        no_reuse.submit(compile_query(Q2_TEXT, "q2", self.dfs))
        assert no_reuse.last_report.num_rewrites == 0


class TestResourceAccounting:
    """Regression tests for the PR 4 leak fixes."""

    def setup_method(self):
        self.dfs = make_dfs()
        seed_page_views(self.dfs)
        seed_users(self.dfs, include=range(6))

    def test_disabled_registration_discards_materialized_files(self):
        """With registration off, injected sub-job stores still execute
        and write to the DFS; their outputs must be discarded after the
        submit instead of accumulating forever."""
        restore = fresh_restore(self.dfs, heuristic=AggressiveHeuristic(),
                                enable_registration=False)
        restore.submit(compile_query(Q1_TEXT, "q1", self.dfs))
        assert len(restore.repository) == 0
        assert self.dfs.list_files(ReStore.MATERIALIZED_PREFIX) == []

    def test_duplicate_candidates_are_discarded_not_shielded(self):
        """Regression: a sub-job candidate equivalent to an existing
        entry materializes a redundant file at a fresh path; it must be
        discarded, not shielded forever by _kept_paths (which the
        eviction pruning can never reach — no entry owns that path)."""
        restore = fresh_restore(self.dfs, heuristic=AggressiveHeuristic(),
                                enable_rewrite=False)
        restore.submit(compile_query(Q1_TEXT, "first", self.dfs))
        first_files = set(self.dfs.list_files(ReStore.MATERIALIZED_PREFIX))
        kept_before = len(restore._kept_paths)
        # Re-enumeration materializes the same sub-plans at fresh paths;
        # find_equivalent dedups them, and the fresh files must go.
        restore.submit(compile_query(Q1_TEXT, "second", self.dfs))
        assert set(self.dfs.list_files(ReStore.MATERIALIZED_PREFIX)) == \
            first_files
        assert len(restore._kept_paths) == kept_before

    def test_kept_paths_pruned_on_eviction(self):
        """Paths whose entries the sweep evicts must leave _kept_paths:
        a long-running manager must not leak memory, and a stale path
        must not shield a later discard of the same location."""
        from repro.restore import HeuristicRetentionPolicy

        restore = fresh_restore(
            self.dfs, heuristic=AggressiveHeuristic(),
            retention=HeuristicRetentionPolicy(window_ticks=100))
        removed_paths = []

        def observe(op, entry):
            if op == "remove":
                removed_paths.append(entry.output_path)

        restore.repository.add_listener(observe)
        restore.submit(compile_query(Q1_TEXT, "q1", self.dfs))
        assert restore._kept_paths
        # Rule 4: modifying the users dataset evicts every entry that
        # read the old version at the next sweep.
        seed_users(self.dfs, include=range(4))
        restore.submit(compile_query(Q1_TEXT.replace(
            "'/out/L2_out'", "'/out/L2_again'"), "q1b", self.dfs))
        assert restore.last_report.evicted_entries
        assert removed_paths
        # No evicted entry's path lingers in the shield set, so a later
        # discard of the same location is no longer wrongly blocked.
        assert not set(removed_paths) & restore._kept_paths

    def test_async_disabled_registration_discards_each_file_once(self):
        """The async twin of the orphan-store fix (PR 8): with
        registration off, the pending candidates' files are routed
        through exactly ONE discard channel — the enqueued
        DiscardRecord — never also the per-submit discard list, which
        would delete every path once per route."""
        restore = fresh_restore(self.dfs, heuristic=AggressiveHeuristic(),
                                enable_registration=False, ingest="async")
        deleted = []
        original = self.dfs.delete_if_exists

        def counting_delete(path):
            deleted.append(path)
            return original(path)

        self.dfs.delete_if_exists = counting_delete
        restore.submit(compile_query(Q1_TEXT, "q1", self.dfs))
        restore.flush()
        restore.close()
        assert len(restore.repository) == 0
        assert self.dfs.list_files(ReStore.MATERIALIZED_PREFIX) == []
        materialized = [path for path in deleted
                        if path.startswith(ReStore.MATERIALIZED_PREFIX)]
        assert materialized  # the injected stores did execute
        assert len(materialized) == len(set(materialized))
