"""Incremental persistence: the change-event channel, the append-only
repository log, compaction, and crash-safe replay (PR 4)."""

import json

import pytest

from repro.common import LogicalClock
from repro.common.errors import DfsError, RepositoryError
from repro.dfs import DistributedFileSystem
from repro.physical.operators import POLoad, POStore
from repro.physical.plan import PhysicalPlan
from repro.restore import (
    HeuristicRetentionPolicy,
    load_repository,
    Repository,
    RepositoryEntry,
    RepositoryLog,
    save_repository,
    ShardedRepository,
)
from repro.restore.persistence import LOG_MANIFEST_VERSION, MANIFEST_KEY, SkeletonOp
from repro.restore.sharding import CATCHALL_SHARD
from repro.restore.stats import EntryStats

from tests.helpers import Q1_TEXT, Q2_TEXT, seed_page_views, seed_users

SNAPSHOT = "/restore/repository.jsonl"
LOG = "/restore/repository.jsonl.log"


def fabricated_entry(index, pool=4):
    """A cheap single-chain entry over a small pool of load paths."""
    load = POLoad(f"/data/d{index % pool}", None, 0)
    chain = SkeletonOp("filter", f"FILTER[a>{index}]", None, [load])
    plan = PhysicalPlan([POStore(chain, f"/stored/s{index}")])
    stats = EntryStats(
        input_bytes=1000 + (index % 7) * 500,
        output_bytes=10 + (index % 5) * 30,
        producing_job_time=1.0 + (index % 11),
    )
    return RepositoryEntry(plan, f"/stored/s{index}", stats)


def entry_fingerprints(repository):
    return [(entry.output_path, entry.fingerprint,
             entry.stats.use_count, entry.stats.last_used_tick)
            for entry in repository.scan()]


def pigmix_system():
    from repro import PigSystem

    system = PigSystem()
    seed_page_views(system.dfs)
    seed_users(system.dfs, include=range(6))
    return system


class TestChangeEventChannel:
    def test_insert_remove_use_events(self):
        repo = Repository()
        events = []
        repo.add_listener(lambda op, entry: events.append((op, entry)))
        first = repo.insert(fabricated_entry(0))
        repo.record_use(first, tick=3)
        repo.remove(first)
        assert [(op, e.output_path) for op, e in events] == [
            ("insert", "/stored/s0"),
            ("use", "/stored/s0"),
            ("remove", "/stored/s0"),
        ]
        assert first.stats.use_count == 1
        assert first.stats.last_used_tick == 3

    def test_remove_listener(self):
        repo = Repository()
        events = []
        listener = lambda op, entry: events.append(op)
        repo.add_listener(listener)
        repo.remove_listener(listener)
        repo.remove_listener(listener)  # absent: no-op
        repo.insert(fabricated_entry(0))
        assert events == []

    def test_shard_id_resolvable_during_events(self):
        repo = ShardedRepository(num_shards=4)
        shard_ids = []
        repo.add_listener(
            lambda op, entry: shard_ids.append((op, repo.shard_id_of(entry))))
        entry = repo.insert(fabricated_entry(1))
        owned = repo.shard_id_of(entry)
        repo.remove(entry)
        assert shard_ids == [("insert", owned), ("remove", owned)]
        assert owned is not None
        # After removal the ownership is gone.
        assert repo.shard_id_of(entry) is None

    def test_plain_repository_has_no_shard_ids(self):
        repo = Repository()
        entry = repo.insert(fabricated_entry(0))
        assert repo.shard_id_of(entry) is None

    def test_catchall_shard_id(self):
        repo = ShardedRepository(num_shards=2)
        # A store of a bare chain with an unkeyable load signature goes
        # to the catch-all.
        chain = SkeletonOp("filter", "FILTER[x]", None,
                           [SkeletonOp("load", "opaque-load", None, [])])
        plan = PhysicalPlan([POStore(chain, "/stored/odd")])
        entry = repo.insert(RepositoryEntry(plan, "/stored/odd",
                                            EntryStats(100, 10, 1.0)))
        assert repo.shard_id_of(entry) == CATCHALL_SHARD


class TestRepositoryLogBasics:
    def test_attach_writes_initial_snapshot(self):
        dfs = DistributedFileSystem()
        repo = Repository()
        repo.insert(fabricated_entry(0))
        RepositoryLog(dfs).attach(repo)
        manifest = json.loads(dfs.read_lines(SNAPSHOT)[0])
        assert manifest[MANIFEST_KEY] == LOG_MANIFEST_VERSION
        assert manifest["log"] == LOG
        assert dfs.read_lines(LOG) == []

    def test_flush_appends_one_record_per_mutation(self):
        dfs = DistributedFileSystem()
        repo = Repository()
        log = RepositoryLog(dfs).attach(repo)
        first = repo.insert(fabricated_entry(0))
        repo.record_use(first, tick=1)
        repo.remove(first)
        assert log.pending_records == 3
        assert log.flush() == 3
        records = [json.loads(line) for line in dfs.read_lines(LOG)]
        assert [r["op"] for r in records] == ["insert", "use", "remove"]
        assert [r["seq"] for r in records] == [1, 2, 3]
        # Insert records carry the serialized entry; the others only the
        # stable key.
        assert "entry" in records[0]
        assert records[1]["key"] == records[2]["key"] == records[0]["key"]
        assert records[1]["use_count"] == 1
        assert records[1]["last_used_tick"] == 1

    def test_records_tagged_with_shard_ids(self):
        dfs = DistributedFileSystem()
        repo = ShardedRepository(num_shards=4)
        log = RepositoryLog(dfs).attach(repo)
        entry = repo.insert(fabricated_entry(2))
        log.flush()
        record = json.loads(dfs.read_lines(LOG)[0])
        assert record["shard"] == repo.shard_id_of(entry)

    def test_checkpoint_appends_until_ratio_then_compacts(self):
        dfs = DistributedFileSystem()
        repo = Repository()
        for index in range(4):
            repo.insert(fabricated_entry(index))
        log = RepositoryLog(dfs, compact_ratio=0.25).attach(repo)
        repo.insert(fabricated_entry(10))
        assert log.checkpoint() == {"appended": 1, "compacted": False}
        assert log.log_records == 1
        repo.insert(fabricated_entry(11))
        repo.insert(fabricated_entry(12))
        # 3 log records over 7 entries crosses 0.25 -> compaction: the
        # snapshot is rewritten and the log truncated.
        outcome = log.checkpoint()
        assert outcome["compacted"] is True
        assert log.log_records == 0
        assert dfs.read_lines(LOG) == []
        assert json.loads(dfs.read_lines(SNAPSHOT)[0])["entries"] == 7

    def test_invalid_compact_ratio_rejected(self):
        with pytest.raises(ValueError):
            RepositoryLog(DistributedFileSystem(), compact_ratio=0)

    def test_double_attach_rejected(self):
        dfs = DistributedFileSystem()
        log = RepositoryLog(dfs).attach(Repository())
        with pytest.raises(RepositoryError):
            log.attach(Repository())

    def test_baseline_repository_rejected_cleanly(self):
        """The frozen seed baseline has no change-event channel; a
        failed attach must not leave the log half-attached."""
        from repro.restore import LinearScanRepository

        dfs = DistributedFileSystem()
        log = RepositoryLog(dfs)
        with pytest.raises(RepositoryError, match="change-event"):
            log.attach(LinearScanRepository())
        assert log.repository is None
        log.attach(Repository())  # still usable afterwards

    def test_attach_discards_stale_pending_from_previous_binding(self):
        """Regression: records buffered for a previously attached
        repository (detached without flushing) must not leak into the
        log of the next attachment — they would replay ghost mutations
        and reuse sequence numbers."""
        dfs = DistributedFileSystem()
        first_repo = Repository()
        log = RepositoryLog(dfs).attach(first_repo)
        for index in range(3):
            first_repo.insert(fabricated_entry(index))
        log.flush()
        log.close()

        other = RepositoryLog(dfs).attach(load_repository(dfs))
        other.repository.insert(fabricated_entry(9))  # buffered, never flushed
        other.detach()
        assert other.pending_records == 1  # the ghost really was buffered

        reloaded = load_repository(dfs)
        other.attach(reloaded)  # same instance, new repository
        assert other.pending_records == 0  # stale buffer discarded
        reloaded.record_use(reloaded.scan()[0], tick=4)
        other.flush()
        after = load_repository(dfs)
        assert len(after) == 3  # no ghost insert replayed
        assert entry_fingerprints(after) == entry_fingerprints(reloaded)

    def test_attach_refuses_to_wipe_durable_state_with_empty_repository(self):
        """Regression: a restart that forgets load_repository() must not
        silently compact an empty repository over the durable snapshot."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        for index in range(3):
            live.insert(fabricated_entry(index))
        log.checkpoint()
        log.close()

        with pytest.raises(RepositoryError, match="refusing to attach"):
            RepositoryLog(dfs).attach(Repository())  # forgot to load
        assert len(load_repository(dfs)) == 3  # durable state intact
        # The correct restart path still works.
        RepositoryLog(dfs).attach(load_repository(dfs))
        # And a repository genuinely emptied *after* loading from this
        # snapshot is exempt (its loader report vouches for it).
        emptied = load_repository(dfs)
        for entry in list(emptied.scan()):
            emptied.remove(entry)
        RepositoryLog(dfs).attach(emptied)
        assert len(load_repository(dfs)) == 0

    def test_wipe_guard_not_bypassed_by_other_filesystem_load(self):
        """Regression: a loader report from a *different* DFS (same path
        string) must not vouch for this one — an empty repository loaded
        from a fresh filesystem would otherwise slip past the guard and
        compact over real durable state."""
        dfs_a = DistributedFileSystem()
        dfs_b = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs_b).attach(live)
        live.insert(fabricated_entry(0))
        log.checkpoint()
        log.close()

        empty = load_repository(dfs_a)  # wrong filesystem, same path
        with pytest.raises(RepositoryError, match="refusing to attach"):
            RepositoryLog(dfs_b).attach(empty)
        assert len(load_repository(dfs_b)) == 1  # durable state intact

    def test_full_save_subsumes_sibling_log(self):
        """Regression: save_repository writes a v1/v2 file with no log
        pointer, so it must delete the conventional sibling log — the
        checkpointed records it holds are in the full save, and leaving
        them behind would strand them un-replayable. A log recreated by
        checkpoints *after* the full save is flagged loudly on load."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs, compact_ratio=100.0).attach(live)
        live.insert(fabricated_entry(0))
        log.checkpoint()
        save_repository(live, dfs, SNAPSHOT)  # authoritative full save
        assert not dfs.exists(LOG)
        reloaded = load_repository(dfs)
        assert len(reloaded) == 1
        assert reloaded.loader_report.orphaned_log_records == 0
        # Mutations checkpointed after the full save land in a fresh log
        # the v1 snapshot cannot reference: the loss is loud, not silent.
        live.insert(fabricated_entry(1))
        log.checkpoint()
        with pytest.warns(RuntimeWarning, match="NOT replayed"):
            stale = load_repository(dfs)
        assert stale.loader_report.orphaned_log_records > 0

    def test_deleted_snapshot_does_not_let_attach_wipe_the_log(self):
        """Regression: deleting the snapshot while the change log still
        holds records must not turn into a silent wipe — the load warns
        about the un-replayable log, and the empty reload does not vouch
        its way past attach's wipe guard."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs, compact_ratio=100.0).attach(live)
        for index in range(3):
            live.insert(fabricated_entry(index))
        log.checkpoint()
        log.close()
        dfs.delete(SNAPSHOT)  # operator cleanup gone wrong

        with pytest.warns(RuntimeWarning, match="cannot be replayed"):
            empty = load_repository(dfs)
        assert len(empty) == 0
        assert empty.loader_report.orphaned_log_records == 3
        with pytest.raises(RepositoryError, match="refusing to attach"):
            RepositoryLog(dfs).attach(empty)
        assert len(dfs.read_lines(LOG)) == 3  # the log survives

    def test_second_log_on_same_repository_rejected(self):
        """Regression: two RepositoryLogs on one repository would buffer
        every mutation twice (one forever) and interleave independent
        sequence counters into shared files."""
        dfs = DistributedFileSystem()
        repo = Repository()
        first = RepositoryLog(dfs).attach(repo)
        with pytest.raises(RepositoryError, match="already has an attached"):
            RepositoryLog(dfs, "/restore/elsewhere").attach(repo)
        first.close()
        RepositoryLog(dfs).attach(repo)  # fine after detach

    def test_full_save_subsumes_custom_log_path(self):
        """Regression: save_repository must also delete a *custom* log
        path recorded in the v3 manifest it overwrites — pre-save
        records there are subsumed and would otherwise be stranded."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs, log_path="/custom/wal",
                            compact_ratio=100.0).attach(live)
        live.insert(fabricated_entry(0))
        log.checkpoint()
        assert dfs.exists("/custom/wal")
        save_repository(live, dfs, SNAPSHOT)
        assert not dfs.exists("/custom/wal")
        assert len(load_repository(dfs)) == 1

    def test_reattach_same_repository_is_idempotent(self):
        dfs = DistributedFileSystem()
        repo = Repository()
        log = RepositoryLog(dfs).attach(repo)
        assert log.attach(repo) is log
        repo.insert(fabricated_entry(0))
        assert log.pending_records == 1  # exactly one subscription

    def test_describe_mentions_paths_and_ratio(self):
        dfs = DistributedFileSystem()
        log = RepositoryLog(dfs, compact_ratio=2.0)
        # Safe before attach too (debuggers repr freely).
        assert "unattached" in log.describe()
        assert log.log_ratio() == 0.0
        log.attach(Repository())
        text = log.describe()
        assert SNAPSHOT in text and LOG in text and "2.0" in text
        assert repr(log).startswith("<RepositoryLog")

    def test_failed_compaction_keeps_pending_records(self):
        """Regression: compact() must not drop the buffered records
        until the snapshot write actually lands — a caller that catches
        the error and retries must still be able to persist them."""
        dfs = DistributedFileSystem()
        repo = Repository()
        log = RepositoryLog(dfs, compact_ratio=0.01).attach(repo)
        repo.insert(fabricated_entry(0))
        assert log.pending_records == 1
        log.path = "relative-and-invalid"  # snapshot write will raise
        with pytest.raises(DfsError):
            log.checkpoint()
        assert log.pending_records == 1  # nothing lost
        log.path = SNAPSHOT
        assert log.checkpoint()["compacted"] is True
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(repo)

    def test_close_flushes_and_detaches(self):
        dfs = DistributedFileSystem()
        repo = Repository()
        log = RepositoryLog(dfs).attach(repo)
        repo.insert(fabricated_entry(0))
        log.close()
        assert len(dfs.read_lines(LOG)) == 1
        repo.insert(fabricated_entry(1))  # no longer observed
        assert log.pending_records == 0


class TestReplay:
    def _mutate(self, repo, log):
        entries = [repo.insert(fabricated_entry(i)) for i in range(6)]
        repo.record_use(entries[2], tick=5)
        repo.remove(entries[1])
        repo.record_use(entries[2], tick=9)
        log.flush()
        return entries

    @pytest.mark.parametrize("make_repo", [
        Repository, lambda: ShardedRepository(num_shards=4)])
    def test_snapshot_plus_log_replay_is_bit_identical(self, make_repo):
        dfs = DistributedFileSystem()
        live = make_repo()
        log = RepositoryLog(dfs).attach(live)
        self._mutate(live, log)
        reloaded = load_repository(dfs)
        assert type(reloaded) is type(live)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)
        report = reloaded.loader_report
        assert report.format_version == LOG_MANIFEST_VERSION
        assert report.replayed_records == report.log_records == 9
        assert report.torn_tail_dropped == 0

    def test_sharded_layout_survives_replay(self):
        dfs = DistributedFileSystem()
        live = ShardedRepository(num_shards=4)
        log = RepositoryLog(dfs).attach(live)
        self._mutate(live, log)
        reloaded = load_repository(dfs)
        assert [[e.output_path for e in shard] for shard in reloaded.partitions()] \
            == [[e.output_path for e in shard] for shard in live.partitions()]

    def test_torn_final_line_is_dropped_not_fatal(self):
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        self._mutate(live, log)
        # A crash mid-append leaves a partial final line.
        dfs.append_lines(LOG, ['{"seq": 999, "op": "ins'])
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)
        assert reloaded.loader_report.torn_tail_dropped == 1

    def test_torn_middle_line_is_fatal(self):
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        self._mutate(live, log)
        lines = dfs.read_lines(LOG)
        dfs.write_lines(LOG, lines[:2] + ['{"torn'] + lines[2:], overwrite=True)
        with pytest.raises(RepositoryError):
            load_repository(dfs)

    def test_log_referencing_removed_entry_is_skipped(self):
        """A use/remove record whose target was removed earlier in the
        log counts as dangling instead of failing the restart."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        entry = live.insert(fabricated_entry(0))
        live.remove(entry)
        log.flush()
        key = json.loads(dfs.read_lines(LOG)[0])["key"]
        dfs.append_lines(LOG, [
            json.dumps({"seq": 3, "op": "use", "shard": None, "key": key,
                        "use_count": 4, "last_used_tick": 9}),
            json.dumps({"seq": 4, "op": "remove", "shard": None, "key": key}),
            json.dumps({"seq": 5, "op": "frobnicate", "shard": None}),
        ])
        reloaded = load_repository(dfs)
        assert len(reloaded) == 0
        assert reloaded.loader_report.dangling_records == 3
        assert reloaded.loader_report.replayed_records == 2

    def test_tie_break_sequences_survive_replay(self):
        """Regression: the insertion sequence (the scan order's final
        tie-break) must round-trip. A subsumption edge can hold an early
        entry back so the snapshot's scan order inverts metric-tied
        entries relative to insertion order; if reload re-minted
        sequences from scan positions, the next order recompute would
        break the tie differently than the live repository."""
        def chain_entry(signature, path, stats, wrap=None):
            op = SkeletonOp("filter", signature, None,
                            [POLoad("/data/t", None, 0)])
            if wrap is not None:
                op = SkeletonOp("foreach", wrap, None, [op])
            return RepositoryEntry(PhysicalPlan([POStore(op, path)]), path,
                                   stats)

        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        # X and Y tie on every metric; W strictly contains X but has the
        # worst metrics, so the greedy order is [Y, W, X] — X (inserted
        # first) scans after Y.
        x = live.insert(chain_entry("FILTER[x]", "/s/x",
                                    EntryStats(1000, 10, 5.0)))
        y = live.insert(chain_entry("FILTER[y]", "/s/y",
                                    EntryStats(1000, 10, 5.0)))
        w = live.insert(chain_entry("FILTER[x]", "/s/w",
                                    EntryStats(1000, 1000, 1.0),
                                    wrap="FOREACH[w]"))
        assert [e.output_path for e in live.scan()] == ["/s/y", "/s/w", "/s/x"]
        log.compact()
        # Removing W frees X; the insert of Z recomputes the order, and
        # the X-vs-Y tie resolves by insertion sequence: X first.
        live.remove(w)
        live.insert(chain_entry("FILTER[z]", "/s/z",
                                EntryStats(1000, 20, 1.0)))
        log.flush()
        assert [e.output_path for e in live.scan()] == ["/s/x", "/s/y", "/s/z"]
        reloaded = load_repository(dfs)
        assert [e.output_path for e in reloaded.scan()] == \
            [e.output_path for e in live.scan()]

    def test_force_scan_order_rejects_non_permutations(self):
        repo = Repository()
        a = repo.insert(fabricated_entry(0))
        b = repo.insert(fabricated_entry(1))
        with pytest.raises(RepositoryError):
            repo.force_scan_order([a, a, b])  # duplicate
        with pytest.raises(RepositoryError):
            repo.force_scan_order([a])  # missing
        with pytest.raises(RepositoryError):
            repo.force_scan_order([a, a])  # duplicate shadowing b
        repo.force_scan_order([b, a])  # a genuine permutation is fine
        assert [e.output_path for e in repo.scan()] == \
            [b.output_path, a.output_path]

    def test_compaction_mid_stream(self):
        """Mutations → compaction → more mutations → reload: replay
        starts from the compacted snapshot, not the full history."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        before = [live.insert(fabricated_entry(i)) for i in range(4)]
        live.remove(before[0])
        log.compact()
        assert dfs.read_lines(LOG) == []
        live.insert(fabricated_entry(10))
        live.record_use(before[2], tick=7)
        log.flush()
        assert log.log_records == 2
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)
        assert reloaded.loader_report.replayed_records == 2

    def test_crash_between_snapshot_and_truncation(self):
        """Compaction writes the snapshot before truncating the log; a
        crash in between leaves pre-compaction records, which replay
        must skip as stale (their seq is covered by base_seq)."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        entries = [live.insert(fabricated_entry(i)) for i in range(3)]
        live.record_use(entries[0], tick=2)
        log.flush()
        old_log = dfs.read_lines(LOG)
        log.compact()
        # Simulate the crash: the old log contents come back.
        dfs.write_lines(LOG, old_log, overwrite=True)
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)
        assert reloaded.loader_report.stale_records == len(old_log)
        assert reloaded.loader_report.replayed_records == 0

    def test_nonresumable_attach_compaction_crash_leaves_no_fresh_ghosts(self):
        """Regression: a non-resumable attach over existing durable
        state must compact with a base_seq above every sequence already
        in the old log — otherwise a crash between the snapshot write
        and the log truncation leaves the era-1 records replaying as
        fresh mutations on top of a snapshot that never saw them."""
        dfs = DistributedFileSystem()
        era1 = Repository()
        log1 = RepositoryLog(dfs).attach(era1)
        for index in range(3):
            era1.insert(fabricated_entry(index))
        log1.flush()  # log holds seqs 1..3
        log1.close()
        old_log = dfs.read_lines(LOG)

        # A new process attaches a *non-empty* in-memory repository at
        # the same path (bypassing the empty-repo wipe guard); attach
        # compacts. Simulate a crash between the snapshot write and the
        # log truncation by restoring the era-1 log afterwards.
        era2 = Repository()
        era2.insert(fabricated_entry(10))
        RepositoryLog(dfs).attach(era2)
        dfs.write_lines(LOG, old_log, overwrite=True)

        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(era2)
        assert len(reloaded) == 1  # the era-1 records were stale, not fresh
        assert reloaded.loader_report.stale_records == len(old_log)

    def test_missing_log_file_loads_snapshot_alone(self):
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        live.insert(fabricated_entry(0))
        log.compact()
        dfs.delete(LOG)
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)

    def test_direct_save_snapshot_subsumes_existing_log(self):
        """Regression: a bare save_snapshot() call next to a non-empty
        change log must not leave the log behind — its records are
        already in the snapshot and would replay as duplicates."""
        from repro.restore import save_snapshot

        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        live.insert(fabricated_entry(0))
        log.checkpoint()  # the insert is now in the log
        save_snapshot(live, dfs)  # defaults: base_seq=0, fresh keys
        reloaded = load_repository(dfs)
        assert len(reloaded) == 1
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)

    def test_truncated_snapshot_rejected(self):
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        for i in range(3):
            live.insert(fabricated_entry(i))
        log.compact()
        dfs.write_lines(SNAPSHOT, dfs.read_lines(SNAPSHOT)[:-1],
                        overwrite=True)
        with pytest.raises(RepositoryError):
            load_repository(dfs)


class TestResume:
    def test_reattach_resumes_sequence_and_keys(self):
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        entries = [live.insert(fabricated_entry(i)) for i in range(3)]
        live.record_use(entries[1], tick=4)
        log.flush()
        log.close()

        reloaded = load_repository(dfs)
        snapshot_version = dfs.status(SNAPSHOT).version
        resumed = RepositoryLog(dfs).attach(reloaded)
        # Clean resume: no snapshot rewrite, appending continues.
        assert dfs.status(SNAPSHOT).version == snapshot_version
        target = next(e for e in reloaded.scan()
                      if e.output_path == entries[1].output_path)
        reloaded.record_use(target, tick=8)
        reloaded.insert(fabricated_entry(20))
        resumed.flush()
        second = load_repository(dfs)
        assert entry_fingerprints(second) == entry_fingerprints(reloaded)
        # The resumed records extend the original sequence numbers.
        seqs = [json.loads(line)["seq"] for line in dfs.read_lines(LOG)]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_replay_state_is_single_use(self):
        """Regression: the loader's replay state describes the
        repository *as loaded*. A second attach — after mutations were
        logged and compacted through another RepositoryLog — must not
        rewind the sequence counter to load time, or records appended
        afterwards would sit at or below the on-DFS base_seq and be
        silently skipped as stale on the next reload."""
        dfs = DistributedFileSystem()
        live = Repository()
        first = RepositoryLog(dfs).attach(live)
        entries = [live.insert(fabricated_entry(i)) for i in range(3)]
        first.flush()
        first.close()

        reloaded = load_repository(dfs)
        second = RepositoryLog(dfs).attach(reloaded)
        # Mutate and compact: the on-DFS base_seq moves past load time.
        for tick in range(4, 8):
            reloaded.record_use(reloaded.scan()[0], tick)
        second.compact()
        second.detach()

        third = RepositoryLog(dfs).attach(reloaded)
        reloaded.record_use(reloaded.scan()[0], 9)
        third.flush()
        after_crash = load_repository(dfs)
        assert entry_fingerprints(after_crash) == entry_fingerprints(reloaded)
        assert after_crash.loader_report.stale_records == 0
        assert after_crash.scan()[0].stats.last_used_tick == 9

    def test_mutations_between_load_and_attach_are_persisted(self):
        """Regression: removals and use-stamps applied to a reloaded
        repository *before* a RepositoryLog attaches happen outside the
        listener, so the clean-resume path must notice them and compact
        — otherwise a later reload resurrects the removed entry and
        drops the stamp."""
        dfs = DistributedFileSystem()
        live = Repository()
        first = RepositoryLog(dfs).attach(live)
        for index in range(3):
            live.insert(fabricated_entry(index))
        first.flush()
        first.close()

        reloaded = load_repository(dfs)
        reloaded.remove(reloaded.scan()[0])
        reloaded.record_use(reloaded.scan()[0], tick=5)
        RepositoryLog(dfs).attach(reloaded).checkpoint()

        after = load_repository(dfs)
        assert entry_fingerprints(after) == entry_fingerprints(reloaded)
        assert len(after) == 2
        assert after.scan()[0].stats.use_count == 1

    def test_reattach_after_torn_tail_heals_the_log(self):
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        live.insert(fabricated_entry(0))
        log.flush()
        dfs.append_lines(LOG, ['{"seq": 99, "op'])
        reloaded = load_repository(dfs)
        assert reloaded.loader_report.torn_tail_dropped == 1
        RepositoryLog(dfs).attach(reloaded)
        # The torn garbage is gone: attach compacted snapshot + log.
        assert dfs.read_lines(LOG) == []
        healed = load_repository(dfs)
        assert entry_fingerprints(healed) == entry_fingerprints(live)


class TestMigration:
    def _entries(self, repo, count=5):
        for index in range(count):
            repo.insert(fabricated_entry(index))
        return repo

    def test_v1_to_v3_migration(self):
        dfs = DistributedFileSystem()
        plain = self._entries(Repository())
        save_repository(plain, dfs, SNAPSHOT)  # v1: no manifest line
        reloaded = load_repository(dfs)
        assert reloaded.loader_report.format_version == 1
        RepositoryLog(dfs).attach(reloaded)
        # Attach upgraded the file to a v3 snapshot + empty log.
        manifest = json.loads(dfs.read_lines(SNAPSHOT)[0])
        assert manifest[MANIFEST_KEY] == LOG_MANIFEST_VERSION
        assert manifest["num_shards"] == 0
        migrated = load_repository(dfs)
        assert type(migrated) is Repository
        assert entry_fingerprints(migrated) == entry_fingerprints(plain)

    def test_v2_to_v3_migration(self):
        dfs = DistributedFileSystem()
        sharded = self._entries(ShardedRepository(num_shards=4))
        save_repository(sharded, dfs, SNAPSHOT)  # v2 manifest
        reloaded = load_repository(dfs)
        assert reloaded.loader_report.format_version == 2
        log = RepositoryLog(dfs).attach(reloaded)
        manifest = json.loads(dfs.read_lines(SNAPSHOT)[0])
        assert manifest[MANIFEST_KEY] == LOG_MANIFEST_VERSION
        assert manifest["num_shards"] == 4
        # Mutations after the migration land in the log and replay.
        reloaded.insert(fabricated_entry(30))
        log.flush()
        migrated = load_repository(dfs)
        assert isinstance(migrated, ShardedRepository)
        assert migrated.num_shards == 4
        assert entry_fingerprints(migrated) == entry_fingerprints(reloaded)

    def test_v3_loads_into_explicit_target(self):
        """Cross-format migration works for v3 too: a v3 file written by
        a plain repository loads into a sharded target."""
        dfs = DistributedFileSystem()
        plain = self._entries(Repository())
        log = RepositoryLog(dfs).attach(plain)
        plain.insert(fabricated_entry(9))
        log.flush()
        migrated = load_repository(
            dfs, repository=ShardedRepository(num_shards=8))
        assert isinstance(migrated, ShardedRepository)
        assert [e.output_path for e in migrated.scan()] == \
            [e.output_path for e in plain.scan()]


class TestManagerIntegration:
    def test_manager_checkpoints_every_submit(self):
        system = pigmix_system()
        log = RepositoryLog(system.dfs, compact_ratio=100.0)
        restore = system.restore(persistence=log)
        restore.submit(system.compile(Q1_TEXT))
        assert restore.last_report.checkpoint is not None
        assert restore.last_report.checkpoint["appended"] >= 1
        reloaded = load_repository(system.dfs)
        assert entry_fingerprints(reloaded) == \
            entry_fingerprints(restore.repository)

    def test_checkpoint_every_knob(self):
        system = pigmix_system()
        log = RepositoryLog(system.dfs, compact_ratio=100.0)
        restore = system.restore(persistence=log, checkpoint_every=2)
        restore.submit(system.compile(Q1_TEXT))
        assert restore.last_report.checkpoint is None
        assert log.pending_records >= 1
        restore.submit(system.compile(Q2_TEXT))
        assert restore.last_report.checkpoint is not None
        assert log.pending_records == 0

    def test_reloaded_manager_still_reuses(self):
        """Restart from snapshot+log: Q2 is still rewritten from Q1's
        logged registrations."""
        system = pigmix_system()
        log = RepositoryLog(system.dfs)
        restore = system.restore(persistence=log)
        restore.submit(system.compile(Q1_TEXT))

        reloaded = load_repository(system.dfs)
        fresh = system.restore(repository=reloaded,
                               enable_registration=False, heuristic=None)
        fresh.submit(system.compile(Q2_TEXT))
        assert fresh.last_report.num_rewrites >= 1

    def test_eviction_removals_survive_restart(self):
        """Rule 3/4 sweeps append remove records, so a restart does not
        resurrect evicted entries."""
        system = pigmix_system()
        log = RepositoryLog(system.dfs, compact_ratio=1000.0)
        restore = system.restore(
            persistence=log,
            retention=HeuristicRetentionPolicy(window_ticks=100))
        restore.submit(system.compile(Q1_TEXT))
        assert len(restore.repository) >= 1
        # Rule 4: modify the users dataset; the next sweep evicts every
        # entry that read the old version.
        seed_users(system.dfs, include=range(4))
        probe = ("A = load '/data/page_views' as (user:chararray, "
                 "timestamp:int, est_revenue:double, page_info:chararray, "
                 "page_links:chararray);\n"
                 "B = filter A by timestamp > 10;\n"
                 "store B into '/out/probe';")
        restore.submit(system.compile(probe, "probe"))
        assert restore.last_report.evicted_entries
        reloaded = load_repository(system.dfs)
        assert entry_fingerprints(reloaded) == \
            entry_fingerprints(restore.repository)
        # No compaction happened: the evictions really came from replay.
        assert reloaded.loader_report.replayed_records > 0
        assert any(json.loads(line)["op"] == "remove"
                   for line in system.dfs.read_lines(LOG))

    def test_manager_ranker_recorded_in_snapshot_manifest(self):
        """The v3 manifest carries the same ranker provenance that
        save_repository(..., ranker=) records — without requiring the
        caller to duplicate it into the RepositoryLog constructor."""
        system = pigmix_system()
        log = RepositoryLog(system.dfs, compact_ratio=0.01)  # compact always
        restore = system.restore(ranker="savings", persistence=log)
        restore.submit(system.compile(Q1_TEXT))
        assert restore.last_report.checkpoint["compacted"]
        reloaded = load_repository(system.dfs)
        assert reloaded.manifest_metadata["ranker"] == "savings"
        # An explicitly configured log keeps its own setting.
        explicit = RepositoryLog(system.dfs, ranker="structural")
        system.restore(ranker="savings", persistence=explicit,
                       repository=reloaded)
        assert explicit.ranker == "structural"

    def test_use_stamps_survive_restart(self):
        system = pigmix_system()
        log = RepositoryLog(system.dfs)
        restore = system.restore(persistence=log)
        restore.submit(system.compile(Q1_TEXT))
        restore.submit(system.compile(Q2_TEXT))
        assert restore.last_report.num_rewrites >= 1
        reloaded = load_repository(system.dfs)
        live_stats = [(e.output_path, e.stats.use_count, e.stats.last_used_tick)
                      for e in restore.repository.scan()]
        reloaded_stats = [(e.output_path, e.stats.use_count, e.stats.last_used_tick)
                          for e in reloaded.scan()]
        assert reloaded_stats == live_stats
        assert any(count > 0 for _, count, _ in reloaded_stats)
