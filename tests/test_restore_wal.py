"""Incremental persistence: the change-event channel, the segmented
repository log (per-shard segments + dirty-only compaction), and
crash-safe replay (PR 4, segmented in PR 5)."""

import json
import threading

import pytest

from repro.common import LogicalClock
from repro.common.errors import DfsError, RepositoryError
from repro.dfs import DistributedFileSystem
from repro.physical.operators import POLoad, POStore
from repro.physical.plan import PhysicalPlan
from repro.restore import (
    HeuristicRetentionPolicy,
    load_repository,
    Repository,
    RepositoryEntry,
    RepositoryLog,
    save_repository,
    ShardedRepository,
)
from repro.restore.persistence import (
    CATCHALL_LABEL,
    DELTA_MANIFEST_VERSION,
    entry_to_json,
    LOG_MANIFEST_VERSION,
    MANIFEST_KEY,
    order_log_prefix,
    SEGMENT_MANIFEST_VERSION,
    segment_file_path,
    shard_label,
    SkeletonOp,
)
from repro.restore.sharding import CATCHALL_SHARD
from repro.restore.stats import EntryStats

from tests.helpers import Q1_TEXT, Q2_TEXT, seed_page_views, seed_users

SNAPSHOT = "/restore/repository.jsonl"
LOG_BASE = "/restore/repository.jsonl.log"
#: a plain repository's single partition is the catch-all segment
SEG = f"{LOG_BASE}.{CATCHALL_LABEL}"


def fabricated_entry(index, pool=4):
    """A cheap single-chain entry over a small pool of load paths."""
    load = POLoad(f"/data/d{index % pool}", None, 0)
    chain = SkeletonOp("filter", f"FILTER[a>{index}]", None, [load])
    plan = PhysicalPlan([POStore(chain, f"/stored/s{index}")])
    stats = EntryStats(
        input_bytes=1000 + (index % 7) * 500,
        output_bytes=10 + (index % 5) * 30,
        producing_job_time=1.0 + (index % 11),
    )
    return RepositoryEntry(plan, f"/stored/s{index}", stats)


def entry_fingerprints(repository):
    return [(entry.output_path, entry.fingerprint,
             entry.stats.use_count, entry.stats.last_used_tick)
            for entry in repository.scan()]


def manifest_of(dfs, path=SNAPSHOT):
    return json.loads(dfs.read_lines(path)[0])


def segment_files(dfs, base=LOG_BASE):
    return dfs.list_files(prefix=f"{base}.")


def segment_lines(dfs, path=SEG):
    """A segment's lines, with a never-created segment (its pending
    records were subsumed by compaction before any flush) reading as
    empty — same as a truncated one."""
    return dfs.read_lines(path) if dfs.exists(path) else []


def order_log_of(dfs, path=SNAPSHOT):
    """``(order_log_path, parsed records)`` of the manifest's v5 order
    log."""
    manifest = manifest_of(dfs, path)
    order_log = manifest["order_log"]
    return order_log, [json.loads(line) for line in dfs.read_lines(order_log)]


def recorded_order_of(dfs, path=SNAPSHOT):
    """The recorded global scan order reconstructed from the v5 order
    log (full base + deltas), as the loader would see it."""
    from repro.restore.persistence import apply_order_delta
    manifest = manifest_of(dfs, path)
    _, records = order_log_of(dfs, path)
    order = []
    for record in records:
        if record["gen"] > manifest["order_gen"]:
            continue
        if "full" in record:
            order = [list(pair) for pair in record["full"]]
        else:
            order = apply_order_delta(order, record)
    return order


def all_segment_records(dfs, base=LOG_BASE):
    """Every parseable record across all segments, in sequence order."""
    records = []
    for file in segment_files(dfs, base):
        for line in dfs.read_lines(file):
            try:
                records.append(json.loads(line))
            except ValueError:
                pass
    return sorted(records, key=lambda record: record.get("seq", 0))


def pigmix_system():
    from repro import PigSystem

    system = PigSystem()
    seed_page_views(system.dfs)
    seed_users(system.dfs, include=range(6))
    return system


class TestChangeEventChannel:
    def test_insert_remove_use_events(self):
        repo = Repository()
        events = []
        repo.add_listener(lambda op, entry: events.append((op, entry)))
        first = repo.insert(fabricated_entry(0))
        repo.record_use(first, tick=3)
        repo.remove(first)
        assert [(op, e.output_path) for op, e in events] == [
            ("insert", "/stored/s0"),
            ("use", "/stored/s0"),
            ("remove", "/stored/s0"),
        ]
        assert first.stats.use_count == 1
        assert first.stats.last_used_tick == 3

    def test_remove_listener(self):
        repo = Repository()
        events = []
        listener = lambda op, entry: events.append(op)
        repo.add_listener(listener)
        repo.remove_listener(listener)
        repo.remove_listener(listener)  # absent: no-op
        repo.insert(fabricated_entry(0))
        assert events == []

    def test_shard_id_resolvable_during_events(self):
        repo = ShardedRepository(num_shards=4)
        shard_ids = []
        repo.add_listener(
            lambda op, entry: shard_ids.append((op, repo.shard_id_of(entry))))
        entry = repo.insert(fabricated_entry(1))
        owned = repo.shard_id_of(entry)
        repo.remove(entry)
        assert shard_ids == [("insert", owned), ("remove", owned)]
        assert owned is not None
        # After removal the ownership is gone.
        assert repo.shard_id_of(entry) is None

    def test_plain_repository_has_no_shard_ids(self):
        repo = Repository()
        entry = repo.insert(fabricated_entry(0))
        assert repo.shard_id_of(entry) is None

    def test_catchall_shard_id(self):
        repo = ShardedRepository(num_shards=2)
        # A store of a bare chain with an unkeyable load signature goes
        # to the catch-all.
        chain = SkeletonOp("filter", "FILTER[x]", None,
                           [SkeletonOp("load", "opaque-load", None, [])])
        plan = PhysicalPlan([POStore(chain, "/stored/odd")])
        entry = repo.insert(RepositoryEntry(plan, "/stored/odd",
                                            EntryStats(100, 10, 1.0)))
        assert repo.shard_id_of(entry) == CATCHALL_SHARD

    def test_shard_sizes_and_members(self):
        plain = Repository()
        entry = plain.insert(fabricated_entry(0))
        assert plain.shard_sizes() == {None: 1}
        assert plain.shard_members(None) == (entry,)
        with pytest.raises(RepositoryError):
            plain.shard_members(0)
        sharded = ShardedRepository(num_shards=2)
        entry = sharded.insert(fabricated_entry(1))
        sizes = sharded.shard_sizes()
        assert set(sizes) == {0, 1, CATCHALL_SHARD}
        assert sum(sizes.values()) == 1
        owned = sharded.shard_id_of(entry)
        assert sharded.shard_members(owned) == (entry,)
        with pytest.raises(RepositoryError):
            sharded.shard_members(99)


class TestRepositoryLogBasics:
    def test_attach_writes_initial_v5_manifest(self):
        dfs = DistributedFileSystem()
        repo = Repository()
        repo.insert(fabricated_entry(0))
        log = RepositoryLog(dfs).attach(repo)
        manifest = manifest_of(dfs)
        assert manifest[MANIFEST_KEY] == DELTA_MANIFEST_VERSION
        assert manifest["log"] == LOG_BASE
        assert manifest["num_shards"] == 0
        assert manifest["entries"] == 1
        # One catch-all section + segment slot; the global scan order
        # lives in the order log as [key, sequence] pairs — the v5
        # manifest no longer embeds it.
        [section] = manifest["sections"]
        assert section["shard"] is None
        assert section["segment"] == SEG
        assert "order" not in manifest
        order_log, records = order_log_of(dfs)
        assert manifest["order_log"] == order_log
        assert records == [{"gen": manifest["order_gen"],
                            "full": [["k0", 0]]}]
        assert log.segment_path(None) == SEG

    def test_flush_appends_one_record_per_mutation(self):
        dfs = DistributedFileSystem()
        repo = Repository()
        log = RepositoryLog(dfs).attach(repo)
        first = repo.insert(fabricated_entry(0))
        repo.record_use(first, tick=1)
        repo.remove(first)
        assert log.pending_records == 3
        assert log.flush() == 3
        records = [json.loads(line) for line in dfs.read_lines(SEG)]
        assert [r["op"] for r in records] == ["insert", "use", "remove"]
        assert [r["seq"] for r in records] == [1, 2, 3]
        # Insert records carry the serialized entry; the others only the
        # stable key.
        assert "entry" in records[0]
        assert records[1]["key"] == records[2]["key"] == records[0]["key"]
        assert records[1]["use_count"] == 1
        assert records[1]["last_used_tick"] == 1

    def test_unattached_operations_raise_repository_error(self):
        # Regression: checkpoint()/compact() on a never-attached log
        # used to die with a bare AttributeError deep in the writer.
        log = RepositoryLog(DistributedFileSystem())
        with pytest.raises(RepositoryError, match="not attached"):
            log.checkpoint()
        with pytest.raises(RepositoryError, match="not attached"):
            log.compact()
        with pytest.raises(RepositoryError, match="not attached"):
            log.partition_snapshot(None)

    def test_unkeyed_events_write_no_record_and_burn_no_seq(self):
        dfs = DistributedFileSystem()
        repo = Repository()
        log = RepositoryLog(dfs).attach(repo)
        repo.insert(fabricated_entry(0))
        # Events for an entry the log never keyed (e.g. raced past a
        # detach) must not append a useless {"key": null} record — and
        # must not consume a sequence number either.
        stranger = fabricated_entry(99)
        log._on_event("remove", stranger)
        log._on_event("use", stranger)
        assert log.pending_records == 1  # just the tracked insert
        repo.insert(fabricated_entry(1))
        log.flush()
        records = [json.loads(line) for line in dfs.read_lines(SEG)]
        assert [r["seq"] for r in records] == [1, 2]  # no phantom gap

    def test_records_routed_to_owning_segments(self):
        dfs = DistributedFileSystem()
        repo = ShardedRepository(num_shards=4)
        log = RepositoryLog(dfs).attach(repo)
        entries = [repo.insert(fabricated_entry(index)) for index in range(8)]
        repo.record_use(entries[0], tick=1)
        log.flush()
        seen_shards = set()
        for file in segment_files(dfs):
            for line in dfs.read_lines(file):
                record = json.loads(line)
                seen_shards.add(record["shard"])
                # Every record sits in the segment of its own shard.
                assert file == segment_file_path(
                    LOG_BASE, shard_label(record["shard"]))
        assert seen_shards == {repo.shard_id_of(e) for e in entries}

    def test_checkpoint_appends_until_ratio_then_compacts(self):
        dfs = DistributedFileSystem()
        repo = Repository()
        for index in range(4):
            repo.insert(fabricated_entry(index))
        log = RepositoryLog(dfs, compact_ratio=0.25).attach(repo)
        repo.insert(fabricated_entry(10))
        outcome = log.checkpoint()
        assert outcome["appended"] == 1 and outcome["compacted"] is False
        assert log.log_records == 1
        repo.insert(fabricated_entry(11))
        repo.insert(fabricated_entry(12))
        # 3 log records over 7 entries crosses 0.25 -> compaction: the
        # catch-all section is rewritten and its segment truncated.
        outcome = log.checkpoint()
        assert outcome["compacted"] is True
        assert outcome["compacted_shards"] == [CATCHALL_LABEL]
        assert log.log_records == 0
        assert dfs.read_lines(SEG) == []
        assert manifest_of(dfs)["entries"] == 7

    def test_invalid_compact_ratio_rejected(self):
        with pytest.raises(ValueError):
            RepositoryLog(DistributedFileSystem(), compact_ratio=0)

    def test_double_attach_rejected(self):
        dfs = DistributedFileSystem()
        log = RepositoryLog(dfs).attach(Repository())
        with pytest.raises(RepositoryError):
            log.attach(Repository())

    def test_baseline_repository_rejected_cleanly(self):
        """The frozen seed baseline has no change-event channel; a
        failed attach must not leave the log half-attached."""
        from repro.restore import LinearScanRepository

        dfs = DistributedFileSystem()
        log = RepositoryLog(dfs)
        with pytest.raises(RepositoryError, match="change-event"):
            log.attach(LinearScanRepository())
        assert log.repository is None
        log.attach(Repository())  # still usable afterwards

    def test_attach_discards_stale_pending_from_previous_binding(self):
        """Regression: records buffered for a previously attached
        repository (detached without flushing) must not leak into the
        segments of the next attachment — they would replay ghost
        mutations and reuse sequence numbers."""
        dfs = DistributedFileSystem()
        first_repo = Repository()
        log = RepositoryLog(dfs).attach(first_repo)
        for index in range(3):
            first_repo.insert(fabricated_entry(index))
        log.flush()
        log.close()

        other = RepositoryLog(dfs).attach(load_repository(dfs))
        other.repository.insert(fabricated_entry(9))  # buffered, never flushed
        other.detach()
        assert other.pending_records == 1  # the ghost really was buffered

        reloaded = load_repository(dfs)
        other.attach(reloaded)  # same instance, new repository
        assert other.pending_records == 0  # stale buffer discarded
        reloaded.record_use(reloaded.scan()[0], tick=4)
        other.flush()
        after = load_repository(dfs)
        assert len(after) == 3  # no ghost insert replayed
        assert entry_fingerprints(after) == entry_fingerprints(reloaded)

    def test_attach_refuses_to_wipe_durable_state_with_empty_repository(self):
        """Regression: a restart that forgets load_repository() must not
        silently compact an empty repository over the durable snapshot."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        for index in range(3):
            live.insert(fabricated_entry(index))
        log.checkpoint()
        log.close()

        with pytest.raises(RepositoryError, match="refusing to attach"):
            RepositoryLog(dfs).attach(Repository())  # forgot to load
        assert len(load_repository(dfs)) == 3  # durable state intact
        # The correct restart path still works.
        RepositoryLog(dfs).attach(load_repository(dfs))
        # And a repository genuinely emptied *after* loading from this
        # snapshot is exempt (its loader report vouches for it).
        emptied = load_repository(dfs)
        for entry in list(emptied.scan()):
            emptied.remove(entry)
        RepositoryLog(dfs).attach(emptied)
        assert len(load_repository(dfs)) == 0

    def test_wipe_guard_not_bypassed_by_other_filesystem_load(self):
        """Regression: a loader report from a *different* DFS (same path
        string) must not vouch for this one — an empty repository loaded
        from a fresh filesystem would otherwise slip past the guard and
        compact over real durable state."""
        dfs_a = DistributedFileSystem()
        dfs_b = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs_b).attach(live)
        live.insert(fabricated_entry(0))
        log.checkpoint()
        log.close()

        empty = load_repository(dfs_a)  # wrong filesystem, same path
        with pytest.raises(RepositoryError, match="refusing to attach"):
            RepositoryLog(dfs_b).attach(empty)
        assert len(load_repository(dfs_b)) == 1  # durable state intact

    def test_full_save_subsumes_segments(self):
        """Regression: save_repository writes a v1/v2 file with no log
        pointer, so it must delete the section and segment files it
        supersedes — the checkpointed records are in the full save, and
        leaving them behind would strand them un-replayable. Segments
        recreated by checkpoints *after* the full save are flagged
        loudly on load."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs, compact_ratio=100.0).attach(live)
        live.insert(fabricated_entry(0))
        log.checkpoint()
        assert dfs.exists(SEG)
        save_repository(live, dfs, SNAPSHOT)  # authoritative full save
        assert not dfs.exists(SEG)
        assert segment_files(dfs) == []
        reloaded = load_repository(dfs)
        assert len(reloaded) == 1
        assert reloaded.loader_report.orphaned_log_records == 0
        # Mutations checkpointed after the full save land in fresh
        # segments the v1 snapshot cannot reference: the loss is loud,
        # not silent.
        live.insert(fabricated_entry(1))
        log.checkpoint()
        with pytest.warns(RuntimeWarning, match="NOT replayed"):
            stale = load_repository(dfs)
        assert stale.loader_report.orphaned_log_records > 0

    def test_deleted_snapshot_does_not_let_attach_wipe_the_segments(self):
        """Regression: deleting the manifest while the segments still
        hold records must not turn into a silent wipe — the load warns
        about the un-replayable segments, and the empty reload does not
        vouch its way past attach's wipe guard."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs, compact_ratio=100.0).attach(live)
        for index in range(3):
            live.insert(fabricated_entry(index))
        log.checkpoint()
        log.close()
        dfs.delete(SNAPSHOT)  # operator cleanup gone wrong

        with pytest.warns(RuntimeWarning, match="cannot be replayed"):
            empty = load_repository(dfs)
        assert len(empty) == 0
        assert empty.loader_report.orphaned_log_records == 3
        with pytest.raises(RepositoryError, match="refusing to attach"):
            RepositoryLog(dfs).attach(empty)
        assert len(dfs.read_lines(SEG)) == 3  # the segment survives

    def test_second_log_on_same_repository_rejected(self):
        """Regression: two RepositoryLogs on one repository would buffer
        every mutation twice (one forever) and interleave independent
        sequence counters into shared files."""
        dfs = DistributedFileSystem()
        repo = Repository()
        first = RepositoryLog(dfs).attach(repo)
        with pytest.raises(RepositoryError, match="already has an attached"):
            RepositoryLog(dfs, "/restore/elsewhere").attach(repo)
        first.close()
        RepositoryLog(dfs).attach(repo)  # fine after detach

    def test_full_save_subsumes_custom_log_path(self):
        """Regression: save_repository must also delete *custom-path*
        segment files recorded in the v4 manifest it overwrites —
        pre-save records there are subsumed and would otherwise be
        stranded."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs, log_path="/custom/wal",
                            compact_ratio=100.0).attach(live)
        live.insert(fabricated_entry(0))
        log.checkpoint()
        assert dfs.exists(f"/custom/wal.{CATCHALL_LABEL}")
        save_repository(live, dfs, SNAPSHOT)
        assert not dfs.exists(f"/custom/wal.{CATCHALL_LABEL}")
        assert len(load_repository(dfs)) == 1

    def test_reattach_same_repository_is_idempotent(self):
        dfs = DistributedFileSystem()
        repo = Repository()
        log = RepositoryLog(dfs).attach(repo)
        assert log.attach(repo) is log
        repo.insert(fabricated_entry(0))
        assert log.pending_records == 1  # exactly one subscription

    def test_describe_mentions_paths_and_ratio(self):
        dfs = DistributedFileSystem()
        log = RepositoryLog(dfs, compact_ratio=2.0)
        # Safe before attach too (debuggers repr freely).
        assert "unattached" in log.describe()
        assert log.log_ratio() == 0.0
        log.attach(Repository())
        text = log.describe()
        assert SNAPSHOT in text and LOG_BASE in text and "2.0" in text
        assert repr(log).startswith("<RepositoryLog")

    def test_failed_compaction_keeps_pending_records(self):
        """Regression: compact() must not drop the buffered records
        until the section writes actually land — a caller that catches
        the error and retries must still be able to persist them."""
        dfs = DistributedFileSystem()
        repo = Repository()
        log = RepositoryLog(dfs, compact_ratio=0.01).attach(repo)
        repo.insert(fabricated_entry(0))
        assert log.pending_records == 1
        log.path = "relative-and-invalid"  # section write will raise
        with pytest.raises(DfsError):
            log.checkpoint()
        assert log.pending_records == 1  # nothing lost
        log.path = SNAPSHOT
        assert log.checkpoint()["compacted"] is True
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(repo)

    def test_close_flushes_and_detaches(self):
        dfs = DistributedFileSystem()
        repo = Repository()
        log = RepositoryLog(dfs).attach(repo)
        repo.insert(fabricated_entry(0))
        log.close()
        assert len(dfs.read_lines(SEG)) == 1
        repo.insert(fabricated_entry(1))  # no longer observed
        assert log.pending_records == 0


class TestDirtyOnlyCompaction:
    def _sharded_state(self, num_entries=24, num_shards=4):
        dfs = DistributedFileSystem()
        live = ShardedRepository(num_shards=num_shards)
        for index in range(num_entries):
            live.insert(fabricated_entry(index, pool=num_entries // 2))
        log = RepositoryLog(dfs).attach(live)  # initial full compaction
        return dfs, live, log

    def _stamp_shard(self, live, shard_id, count, start_tick=1):
        victims = [e for e in live.scan() if live.shard_id_of(e) == shard_id]
        for tick in range(start_tick, start_tick + count):
            live.record_use(victims[tick % len(victims)], tick)

    def test_compact_rewrites_only_dirty_sections(self):
        dfs, live, log = self._sharded_state()
        target = live.shard_id_of(live.scan()[0])
        label = shard_label(target)
        before = {file: dfs.status(file).version
                  for file in dfs.list_files(prefix=f"{SNAPSHOT}.sec-")}
        # Mutations confined to one shard dirty only that shard.
        self._stamp_shard(live, target, count=2 * len(live))
        assert log.dirty_shards() == [label]
        outcome = log.checkpoint()
        assert outcome["compacted"] is True
        assert outcome["compacted_shards"] == [label]
        after = {file: dfs.status(file).version
                 for file in dfs.list_files(prefix=f"{SNAPSHOT}.sec-")}
        # Exactly one section changed: the dirty shard got a fresh
        # generation file, every clean section is byte-for-byte the same
        # file (same name, same version — reused, not rewritten).
        changed_out = set(before) - set(after)
        changed_in = set(after) - set(before)
        assert {file.split(".sec-")[1].split(".g")[0]
                for file in changed_out | changed_in} == {label}
        for file in set(before) & set(after):
            assert before[file] == after[file]
        # Only the dirty shard's segment was truncated.
        assert segment_lines(dfs, log.segment_path(target)) == []
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)

    def test_clean_segments_untouched_by_dirty_compaction(self):
        dfs, live, log = self._sharded_state()
        target = live.shard_id_of(live.scan()[0])
        other = next(live.shard_id_of(e) for e in live.scan()
                     if live.shard_id_of(e) != target)
        # One record in the clean shard, many in the dirty one.
        self._stamp_shard(live, other, count=1)
        self._stamp_shard(live, target, count=2 * len(live), start_tick=50)
        log.flush()
        clean_version = dfs.status(log.segment_path(other)).version
        assert log.dirty_shards() == [shard_label(target)]
        log.checkpoint()
        assert dfs.status(log.segment_path(other)).version == clean_version
        assert len(dfs.read_lines(log.segment_path(other))) == 1
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)

    def test_full_compact_truncates_every_segment(self):
        dfs, live, log = self._sharded_state()
        self._stamp_shard(live, live.shard_id_of(live.scan()[0]), count=3)
        log.flush()
        compacted = log.compact()
        sizes = {shard_label(s) for s in live.shard_sizes()}
        assert set(compacted) == sizes
        assert log.log_records == 0
        for file in segment_files(dfs):
            assert dfs.read_lines(file) == []

    def test_compact_unknown_shard_rejected(self):
        dfs, live, log = self._sharded_state()
        with pytest.raises(RepositoryError, match="unknown partition"):
            log.compact(["nope"])

    def test_segment_record_counts_track_per_shard(self):
        dfs, live, log = self._sharded_state()
        target = live.shard_id_of(live.scan()[0])
        self._stamp_shard(live, target, count=3)
        log.flush()
        assert log.segment_record_counts() == {shard_label(target): 3}

    def test_superseded_generations_are_collected(self):
        dfs, live, log = self._sharded_state()
        target = live.shard_id_of(live.scan()[0])
        self._stamp_shard(live, target, count=2 * len(live))
        log.checkpoint()
        manifest = manifest_of(dfs)
        referenced = {section["file"] for section in manifest["sections"]
                      if section["file"] is not None}
        on_disk = set(dfs.list_files(prefix=f"{SNAPSHOT}.sec-"))
        assert on_disk == referenced  # no orphan generations left behind


class TestSnapshotCompactionBarrier:
    def test_concurrent_snapshot_during_compact(self):
        """``partition_snapshot`` holds the log mutex for its whole read
        — the mutex *is* the compaction barrier (worker re-seeds race
        checkpoints in the process-backed pools). A barrier-less read
        could catch compaction's window between the manifest swap and
        the segment truncation/GC: a superseded section file already
        deleted (keys vanish) or a pending buffer popped before its
        records are subsumed durably (use counts regress). Hammer
        snapshots from a thread through many use-stamp/compact rounds:
        every observed snapshot must hold the full key set with
        monotonically non-decreasing use counts."""
        dfs = DistributedFileSystem()
        live = ShardedRepository(num_shards=2)
        entries = [fabricated_entry(index) for index in range(10)]
        for entry in entries:
            live.insert(entry)
        log = RepositoryLog(dfs).attach(live)
        try:
            sizes = live.shard_sizes()
            shard_id = max(sizes, key=lambda sid: sizes[sid])
            expected_keys = set(log.partition_snapshot(shard_id))
            assert expected_keys
            failures = []
            stop = threading.Event()

            def hammer():
                last_counts = {}
                while not stop.is_set():
                    try:
                        snapshot = log.partition_snapshot(shard_id)
                    except Exception as error:
                        failures.append(("raised", repr(error)))
                        return
                    if set(snapshot) != expected_keys:
                        failures.append(("keys", set(snapshot)))
                        return
                    for key, entry_json in snapshot.items():
                        count = entry_json["stats"]["use_count"]
                        if count < last_counts.get(key, 0):
                            failures.append(("regressed", key, count,
                                             last_counts[key]))
                            return
                        last_counts[key] = count

            thread = threading.Thread(target=hammer)
            thread.start()
            tick = 0
            rounds = 30
            try:
                for _ in range(rounds):
                    for entry in entries:
                        tick += 1
                        live.record_use(entry, tick)
                    log.compact()
            finally:
                stop.set()
                thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert not failures, failures[0]
            final = log.partition_snapshot(shard_id)
            assert set(final) == expected_keys
            assert all(entry_json["stats"]["use_count"] == rounds
                       for entry_json in final.values())
        finally:
            log.close()
            live.close()


class TestOrderDeltaManifests:
    """The v5 enabler: dirty-only compaction records a scan-order
    *delta* in the order log instead of rewriting the full global order
    — the manifest write cost is O(dirty shards), and the last
    cross-shard write is gone."""

    def _sharded_state(self, num_entries=24, num_shards=4):
        dfs = DistributedFileSystem()
        live = ShardedRepository(num_shards=num_shards)
        for index in range(num_entries):
            live.insert(fabricated_entry(index, pool=num_entries // 2))
        log = RepositoryLog(dfs).attach(live)  # initial full compaction
        return dfs, live, log

    def test_dirty_compaction_appends_one_delta_record(self):
        dfs, live, log = self._sharded_state()
        path_before, records_before = order_log_of(dfs)
        assert len(records_before) == 1 and "full" in records_before[0]
        inserted = live.insert(fabricated_entry(100, pool=2))
        target = live.shard_id_of(inserted)
        log.compact([shard_label(target)])
        path_after, records_after = order_log_of(dfs)
        # Same file, one appended record: the full order (24 entries)
        # was NOT rewritten — the delta names only the one change.
        assert path_after == path_before
        assert len(records_after) == 2
        delta = records_after[-1]
        assert "full" not in delta
        assert delta["removed"] == []
        new_key = log.stable_keys()[inserted.entry_id]
        assert [item[0] for item in delta["inserted"]] == [new_key]
        # The reconstructed lineage equals the live scan order exactly.
        assert [key for key, _ in recorded_order_of(dfs)] == \
            [log.stable_keys()[e.entry_id] for e in live.scan()]
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)

    def test_removal_expressed_as_delta(self):
        dfs, live, log = self._sharded_state()
        victim = live.scan()[3]
        victim_key = log.stable_keys()[victim.entry_id]
        target = live.shard_id_of(victim)
        live.remove(victim)
        log.compact([shard_label(target)])
        _, records = order_log_of(dfs)
        delta = records[-1]
        assert delta["removed"] == [victim_key]
        assert delta["inserted"] == []
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)

    def test_full_compaction_rebases_into_fresh_order_log(self):
        dfs, live, log = self._sharded_state()
        path_before, _ = order_log_of(dfs)
        live.insert(fabricated_entry(101, pool=2))
        log.compact()  # all partitions: a rebase, not a delta
        path_after, records = order_log_of(dfs)
        assert path_after != path_before
        assert not dfs.exists(path_before)  # superseded file collected
        assert dfs.list_files(prefix=order_log_prefix(SNAPSHOT)) \
            == [path_after]
        assert len(records) == 1 and "full" in records[0]
        assert len(records[0]["full"]) == len(live)

    def test_rebase_after_record_limit(self, monkeypatch):
        monkeypatch.setattr("repro.restore.wal.ORDER_REBASE_RECORDS", 2)
        dfs, live, log = self._sharded_state()
        paths = []
        for index in range(4):
            entry = live.insert(fabricated_entry(200 + index, pool=2))
            log.compact([shard_label(live.shard_id_of(entry))])
            paths.append(order_log_of(dfs)[0])
        # Records 2 and 4 hit the cap and rebased into fresh files; the
        # lineage never grows unboundedly.
        assert paths[0] != paths[1]
        assert paths[1] == paths[2]
        assert paths[2] != paths[3]
        _, records = order_log_of(dfs)
        assert "full" in records[0]
        assert len(records) <= 2
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)

    def test_orphan_order_records_ignored_and_healed(self):
        dfs, live, log = self._sharded_state(num_entries=6)
        order_log, _ = order_log_of(dfs)
        manifest = manifest_of(dfs)
        # Crash window: an order record hit the disk but the manifest
        # swap never happened. Its generation is above the manifest's.
        dfs.append_lines(order_log, [json.dumps(
            {"gen": manifest["order_gen"] + 5,
             "removed": ["k0"], "inserted": []})])
        reloaded = load_repository(dfs)
        assert reloaded.loader_report.orphan_order_records == 1
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)
        # Attach treats the orphan as crash damage: the healing
        # compaction rebases into a clean lineage.
        healed_log = RepositoryLog(dfs).attach(reloaded)
        _, records = order_log_of(dfs)
        assert len(records) == 1 and "full" in records[0]
        assert load_repository(dfs).loader_report.orphan_order_records == 0
        healed_log.close()

    def test_torn_order_log_tail_dropped(self):
        dfs, live, log = self._sharded_state(num_entries=6)
        order_log, _ = order_log_of(dfs)
        dfs.append_lines(order_log, ['{"gen": 99, "remo'])  # torn write
        reloaded = load_repository(dfs)
        assert reloaded.loader_report.torn_tail_dropped >= 1
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)

    def test_v4_manifest_with_embedded_order_migrates_to_v5(self):
        # Downgrade a live v5 state to the v4 shape by hand: embed the
        # full order in the manifest, drop the order log. Loading must
        # accept it; attaching must migrate it to v5 losslessly.
        dfs, live, log = self._sharded_state(num_entries=8)
        manifest = manifest_of(dfs)
        order = recorded_order_of(dfs)
        for old in dfs.list_files(prefix=order_log_prefix(SNAPSHOT)):
            dfs.delete_if_exists(old)
        manifest.pop("order_log")
        manifest.pop("order_gen")
        manifest["order"] = order
        manifest[MANIFEST_KEY] = SEGMENT_MANIFEST_VERSION
        dfs.write_lines(SNAPSHOT, [json.dumps(manifest, sort_keys=True)],
                        overwrite=True)
        reloaded = load_repository(dfs)
        assert reloaded.loader_report.format_version \
            == SEGMENT_MANIFEST_VERSION
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)
        # v4 is legacy, not resumable: attach heals it into v5.
        migrated_log = RepositoryLog(dfs).attach(reloaded)
        assert manifest_of(dfs)[MANIFEST_KEY] == DELTA_MANIFEST_VERSION
        again = load_repository(dfs)
        assert again.loader_report.format_version == DELTA_MANIFEST_VERSION
        assert entry_fingerprints(again) == entry_fingerprints(live)
        migrated_log.close()


class TestReplay:
    def _mutate(self, repo, log):
        entries = [repo.insert(fabricated_entry(i)) for i in range(6)]
        repo.record_use(entries[2], tick=5)
        repo.remove(entries[1])
        repo.record_use(entries[2], tick=9)
        log.flush()
        return entries

    def test_legacy_null_key_records_are_noops_not_dangling(self):
        # A pre-fix writer could leave {"key": null} remove/use records
        # in a segment. The loader must treat them as no-ops referencing
        # nothing durable — not count them as dangling removes.
        dfs = DistributedFileSystem()
        repo = Repository()
        log = RepositoryLog(dfs).attach(repo)
        for index in range(3):
            repo.insert(fabricated_entry(index))
        log.flush()
        dfs.append_lines(SEG, [
            json.dumps({"op": "remove", "shard": None, "seq": 90,
                        "key": None}),
            json.dumps({"op": "use", "shard": None, "seq": 91, "key": None,
                        "use_count": 3, "last_used_tick": 7}),
        ])
        reloaded = load_repository(dfs)
        assert len(reloaded) == 3
        assert reloaded.loader_report.dangling_records == 0
        assert entry_fingerprints(reloaded) == entry_fingerprints(repo)

    @pytest.mark.parametrize("make_repo", [
        Repository, lambda: ShardedRepository(num_shards=4)])
    def test_sections_plus_segments_replay_is_bit_identical(self, make_repo):
        dfs = DistributedFileSystem()
        live = make_repo()
        log = RepositoryLog(dfs).attach(live)
        self._mutate(live, log)
        reloaded = load_repository(dfs)
        assert type(reloaded) is type(live)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)
        report = reloaded.loader_report
        assert report.format_version == DELTA_MANIFEST_VERSION
        assert report.replayed_records == report.log_records == 9
        assert report.torn_tail_dropped == 0

    def test_sharded_layout_survives_replay(self):
        dfs = DistributedFileSystem()
        live = ShardedRepository(num_shards=4)
        log = RepositoryLog(dfs).attach(live)
        self._mutate(live, log)
        reloaded = load_repository(dfs)
        assert [[e.output_path for e in shard] for shard in reloaded.partitions()] \
            == [[e.output_path for e in shard] for shard in live.partitions()]

    def test_torn_final_line_is_dropped_not_fatal(self):
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        self._mutate(live, log)
        # A crash mid-append leaves a partial final line.
        dfs.append_lines(SEG, ['{"seq": 999, "op": "ins'])
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)
        assert reloaded.loader_report.torn_tail_dropped == 1

    def test_torn_tails_tolerated_per_segment(self):
        """Each segment independently tolerates its own torn final line
        — a crash mid-flush can leave several (one per appended file)."""
        dfs = DistributedFileSystem()
        live = ShardedRepository(num_shards=4)
        log = RepositoryLog(dfs).attach(live)
        self._mutate(live, log)
        torn = 0
        for file in segment_files(dfs):
            if dfs.read_lines(file):
                dfs.append_lines(file, ['{"seq": 999, "op'])
                torn += 1
        assert torn >= 2  # the mutations really did span shards
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)
        assert reloaded.loader_report.torn_tail_dropped == torn

    def test_torn_middle_line_is_fatal(self):
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        self._mutate(live, log)
        lines = dfs.read_lines(SEG)
        dfs.write_lines(SEG, lines[:2] + ['{"torn'] + lines[2:], overwrite=True)
        with pytest.raises(RepositoryError):
            load_repository(dfs)

    def test_log_referencing_removed_entry_is_skipped(self):
        """A use/remove record whose target was removed earlier in the
        segment counts as dangling instead of failing the restart."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        entry = live.insert(fabricated_entry(0))
        live.remove(entry)
        log.flush()
        key = json.loads(dfs.read_lines(SEG)[0])["key"]
        dfs.append_lines(SEG, [
            json.dumps({"seq": 3, "op": "use", "shard": None, "key": key,
                        "use_count": 4, "last_used_tick": 9}),
            json.dumps({"seq": 4, "op": "remove", "shard": None, "key": key}),
            json.dumps({"seq": 5, "op": "frobnicate", "shard": None}),
        ])
        reloaded = load_repository(dfs)
        assert len(reloaded) == 0
        assert reloaded.loader_report.dangling_records == 3
        assert reloaded.loader_report.replayed_records == 2

    def test_tie_break_sequences_survive_replay(self):
        """Regression: the insertion sequence (the scan order's final
        tie-break) must round-trip. A subsumption edge can hold an early
        entry back so the snapshot's scan order inverts metric-tied
        entries relative to insertion order; if reload re-minted
        sequences from scan positions, the next order recompute would
        break the tie differently than the live repository."""
        def chain_entry(signature, path, stats, wrap=None):
            op = SkeletonOp("filter", signature, None,
                            [POLoad("/data/t", None, 0)])
            if wrap is not None:
                op = SkeletonOp("foreach", wrap, None, [op])
            return RepositoryEntry(PhysicalPlan([POStore(op, path)]), path,
                                   stats)

        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        # X and Y tie on every metric; W strictly contains X but has the
        # worst metrics, so the greedy order is [Y, W, X] — X (inserted
        # first) scans after Y.
        x = live.insert(chain_entry("FILTER[x]", "/s/x",
                                    EntryStats(1000, 10, 5.0)))
        y = live.insert(chain_entry("FILTER[y]", "/s/y",
                                    EntryStats(1000, 10, 5.0)))
        w = live.insert(chain_entry("FILTER[x]", "/s/w",
                                    EntryStats(1000, 1000, 1.0),
                                    wrap="FOREACH[w]"))
        assert [e.output_path for e in live.scan()] == ["/s/y", "/s/w", "/s/x"]
        log.compact()
        # Removing W frees X; the insert of Z recomputes the order, and
        # the X-vs-Y tie resolves by insertion sequence: X first.
        live.remove(w)
        live.insert(chain_entry("FILTER[z]", "/s/z",
                                EntryStats(1000, 20, 1.0)))
        log.flush()
        assert [e.output_path for e in live.scan()] == ["/s/x", "/s/y", "/s/z"]
        reloaded = load_repository(dfs)
        assert [e.output_path for e in reloaded.scan()] == \
            [e.output_path for e in live.scan()]

    def test_force_scan_order_rejects_non_permutations(self):
        repo = Repository()
        a = repo.insert(fabricated_entry(0))
        b = repo.insert(fabricated_entry(1))
        with pytest.raises(RepositoryError):
            repo.force_scan_order([a, a, b])  # duplicate
        with pytest.raises(RepositoryError):
            repo.force_scan_order([a])  # missing
        with pytest.raises(RepositoryError):
            repo.force_scan_order([a, a])  # duplicate shadowing b
        repo.force_scan_order([b, a])  # a genuine permutation is fine
        assert [e.output_path for e in repo.scan()] == \
            [b.output_path, a.output_path]

    def test_compaction_mid_stream(self):
        """Mutations → compaction → more mutations → reload: replay
        starts from the compacted sections, not the full history."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        before = [live.insert(fabricated_entry(i)) for i in range(4)]
        live.remove(before[0])
        log.compact()
        assert segment_lines(dfs) == []
        live.insert(fabricated_entry(10))
        live.record_use(before[2], tick=7)
        log.flush()
        assert log.log_records == 2
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)
        assert reloaded.loader_report.replayed_records == 2

    def test_crash_between_section_rewrite_and_truncation(self):
        """Compaction re-points the manifest before truncating the dirty
        segments; a crash in between leaves pre-compaction records,
        which replay must skip as stale (their seq is covered by the new
        section's base_seq watermark)."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        entries = [live.insert(fabricated_entry(i)) for i in range(3)]
        live.record_use(entries[0], tick=2)
        log.flush()
        old_segment = dfs.read_lines(SEG)
        log.compact()
        # Simulate the crash: the old segment contents come back.
        dfs.write_lines(SEG, old_segment, overwrite=True)
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)
        assert reloaded.loader_report.stale_records == len(old_segment)
        assert reloaded.loader_report.replayed_records == 0

    def test_crash_between_one_shards_rewrite_and_truncation(self):
        """The same crash window, per shard: only the compacted shard's
        segment reverts, and only its records are stale — the clean
        shards' records still replay."""
        dfs = DistributedFileSystem()
        live = ShardedRepository(num_shards=4)
        log = RepositoryLog(dfs).attach(live)
        for index in range(12):
            live.insert(fabricated_entry(index, pool=8))
        target = live.shard_id_of(live.scan()[0])
        log.flush()
        old_segment = dfs.read_lines(log.segment_path(target))
        assert old_segment  # the target shard really has records
        log.compact([shard_label(target)])
        dfs.write_lines(log.segment_path(target), old_segment, overwrite=True)
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)
        assert reloaded.loader_report.stale_records == len(old_segment)
        assert reloaded.loader_report.replayed_records > 0  # clean shards

    def test_unreferenced_section_generation_is_ignored(self):
        """A crash between writing a new section file and the manifest
        swap leaves an unreferenced generation on disk: the loader must
        ignore it, and the next compaction collects it."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        entries = [live.insert(fabricated_entry(i)) for i in range(3)]
        log.compact()
        orphan = f"{SNAPSHOT}.sec-{CATCHALL_LABEL}.g999"
        dfs.write_lines(orphan, ["{bogus"])
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)
        live.record_use(entries[0], tick=3)
        log.compact()
        assert not dfs.exists(orphan)  # collected

    def test_nonresumable_attach_compaction_crash_leaves_no_fresh_ghosts(self):
        """Regression: a non-resumable attach over existing durable
        state must compact with watermarks above every sequence already
        in the old segments — otherwise a crash between the manifest
        swap and the segment truncation leaves the era-1 records
        replaying as fresh mutations on top of sections that never saw
        them."""
        dfs = DistributedFileSystem()
        era1 = Repository()
        log1 = RepositoryLog(dfs).attach(era1)
        for index in range(3):
            era1.insert(fabricated_entry(index))
        log1.flush()  # the catch-all segment holds seqs 1..3
        log1.close()
        old_segment = dfs.read_lines(SEG)

        # A new process attaches a *non-empty* in-memory repository at
        # the same path (bypassing the empty-repo wipe guard); attach
        # compacts. Simulate a crash between the manifest swap and the
        # segment truncation by restoring the era-1 segment afterwards.
        era2 = Repository()
        era2.insert(fabricated_entry(10))
        RepositoryLog(dfs).attach(era2)
        dfs.write_lines(SEG, old_segment, overwrite=True)

        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(era2)
        assert len(reloaded) == 1  # the era-1 records were stale, not fresh
        assert reloaded.loader_report.stale_records == len(old_segment)

    def test_missing_segment_file_loads_sections_alone(self):
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        live.insert(fabricated_entry(0))
        log.compact()
        dfs.delete_if_exists(SEG)
        reloaded = load_repository(dfs)
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)

    def test_direct_save_snapshot_subsumes_segments(self):
        """Regression: a bare save_snapshot() call (the legacy v3
        writer) next to non-empty v4 segments must not leave them behind
        — their records are already in the snapshot and the v3 loader
        would never see them."""
        from repro.restore import save_snapshot

        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        live.insert(fabricated_entry(0))
        log.checkpoint()  # the insert is now in the catch-all segment
        save_snapshot(live, dfs)  # defaults: base_seq=0, fresh keys
        assert segment_files(dfs) == []
        assert dfs.list_files(prefix=f"{SNAPSHOT}.sec-") == []
        reloaded = load_repository(dfs)
        assert reloaded.loader_report.format_version == LOG_MANIFEST_VERSION
        assert len(reloaded) == 1
        assert entry_fingerprints(reloaded) == entry_fingerprints(live)

    def test_truncated_section_rejected(self):
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        for i in range(3):
            live.insert(fabricated_entry(i))
        log.compact()
        [section_file] = dfs.list_files(prefix=f"{SNAPSHOT}.sec-")
        dfs.write_lines(section_file, dfs.read_lines(section_file)[:-1],
                        overwrite=True)
        with pytest.raises(RepositoryError, match="truncated"):
            load_repository(dfs)

    def test_recorded_order_referencing_unknown_key_rejected(self):
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        live.insert(fabricated_entry(0))
        log.compact()
        manifest = manifest_of(dfs)
        order_log = manifest["order_log"]
        dfs.write_lines(order_log, [json.dumps(
            {"gen": manifest["order_gen"], "full": [["k999", 0]]})],
            overwrite=True)
        with pytest.raises(RepositoryError, match="scan order references"):
            load_repository(dfs)


class TestResume:
    def test_reattach_resumes_sequence_and_keys(self):
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        entries = [live.insert(fabricated_entry(i)) for i in range(3)]
        live.record_use(entries[1], tick=4)
        log.flush()
        log.close()

        reloaded = load_repository(dfs)
        snapshot_version = dfs.status(SNAPSHOT).version
        resumed = RepositoryLog(dfs).attach(reloaded)
        # Clean resume: no snapshot rewrite, appending continues.
        assert dfs.status(SNAPSHOT).version == snapshot_version
        target = next(e for e in reloaded.scan()
                      if e.output_path == entries[1].output_path)
        reloaded.record_use(target, tick=8)
        reloaded.insert(fabricated_entry(20))
        resumed.flush()
        second = load_repository(dfs)
        assert entry_fingerprints(second) == entry_fingerprints(reloaded)
        # The resumed records extend the original sequence numbers.
        seqs = [record["seq"] for record in all_segment_records(dfs)]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_replay_state_is_single_use(self):
        """Regression: the loader's replay state describes the
        repository *as loaded*. A second attach — after mutations were
        logged and compacted through another RepositoryLog — must not
        rewind the sequence counter to load time, or records appended
        afterwards would sit at or below the on-DFS watermarks and be
        silently skipped as stale on the next reload."""
        dfs = DistributedFileSystem()
        live = Repository()
        first = RepositoryLog(dfs).attach(live)
        entries = [live.insert(fabricated_entry(i)) for i in range(3)]
        first.flush()
        first.close()

        reloaded = load_repository(dfs)
        second = RepositoryLog(dfs).attach(reloaded)
        # Mutate and compact: the on-DFS watermarks move past load time.
        for tick in range(4, 8):
            reloaded.record_use(reloaded.scan()[0], tick)
        second.compact()
        second.detach()

        third = RepositoryLog(dfs).attach(reloaded)
        reloaded.record_use(reloaded.scan()[0], 9)
        third.flush()
        after_crash = load_repository(dfs)
        assert entry_fingerprints(after_crash) == entry_fingerprints(reloaded)
        assert after_crash.loader_report.stale_records == 0
        assert after_crash.scan()[0].stats.last_used_tick == 9

    def test_mutations_between_load_and_attach_are_persisted(self):
        """Regression: removals and use-stamps applied to a reloaded
        repository *before* a RepositoryLog attaches happen outside the
        listener, so the clean-resume path must notice them and compact
        — otherwise a later reload resurrects the removed entry and
        drops the stamp."""
        dfs = DistributedFileSystem()
        live = Repository()
        first = RepositoryLog(dfs).attach(live)
        for index in range(3):
            live.insert(fabricated_entry(index))
        first.flush()
        first.close()

        reloaded = load_repository(dfs)
        reloaded.remove(reloaded.scan()[0])
        reloaded.record_use(reloaded.scan()[0], tick=5)
        RepositoryLog(dfs).attach(reloaded).checkpoint()

        after = load_repository(dfs)
        assert entry_fingerprints(after) == entry_fingerprints(reloaded)
        assert len(after) == 2
        assert after.scan()[0].stats.use_count == 1

    def test_attach_into_different_shard_count_heals(self):
        """A v4 file loaded into an explicit target with a different
        shard layout cannot resume the old sections — attach must
        rewrite the snapshot under the live layout instead of appending
        records the old manifest's sections cannot cover."""
        dfs = DistributedFileSystem()
        live = ShardedRepository(num_shards=2)
        log = RepositoryLog(dfs).attach(live)
        for index in range(4):
            live.insert(fabricated_entry(index))
        log.checkpoint()
        log.close()

        migrated = load_repository(
            dfs, repository=ShardedRepository(num_shards=8))
        RepositoryLog(dfs).attach(migrated)
        manifest = manifest_of(dfs)
        assert manifest["num_shards"] == 8
        reloaded = load_repository(dfs)
        assert isinstance(reloaded, ShardedRepository)
        assert reloaded.num_shards == 8
        assert entry_fingerprints(reloaded) == entry_fingerprints(migrated)

    def test_reattach_after_torn_tail_heals_the_segments(self):
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        live.insert(fabricated_entry(0))
        log.flush()
        dfs.append_lines(SEG, ['{"seq": 99, "op'])
        reloaded = load_repository(dfs)
        assert reloaded.loader_report.torn_tail_dropped == 1
        RepositoryLog(dfs).attach(reloaded)
        # The torn garbage is gone: attach compacted sections + segments.
        assert dfs.read_lines(SEG) == []
        healed = load_repository(dfs)
        assert entry_fingerprints(healed) == entry_fingerprints(live)


class TestMigration:
    def _entries(self, repo, count=5):
        for index in range(count):
            repo.insert(fabricated_entry(index))
        return repo

    def test_v1_to_v5_migration(self):
        dfs = DistributedFileSystem()
        plain = self._entries(Repository())
        save_repository(plain, dfs, SNAPSHOT)  # v1: no manifest line
        reloaded = load_repository(dfs)
        assert reloaded.loader_report.format_version == 1
        RepositoryLog(dfs).attach(reloaded)
        # Attach upgraded the file to a v5 manifest + sections.
        manifest = manifest_of(dfs)
        assert manifest[MANIFEST_KEY] == DELTA_MANIFEST_VERSION
        assert manifest["num_shards"] == 0
        migrated = load_repository(dfs)
        assert type(migrated) is Repository
        assert entry_fingerprints(migrated) == entry_fingerprints(plain)

    def test_v2_to_v5_migration(self):
        dfs = DistributedFileSystem()
        sharded = self._entries(ShardedRepository(num_shards=4))
        save_repository(sharded, dfs, SNAPSHOT)  # v2 manifest
        reloaded = load_repository(dfs)
        assert reloaded.loader_report.format_version == 2
        log = RepositoryLog(dfs).attach(reloaded)
        manifest = manifest_of(dfs)
        assert manifest[MANIFEST_KEY] == DELTA_MANIFEST_VERSION
        assert manifest["num_shards"] == 4
        # Mutations after the migration land in the segments and replay.
        reloaded.insert(fabricated_entry(30))
        log.flush()
        migrated = load_repository(dfs)
        assert isinstance(migrated, ShardedRepository)
        assert migrated.num_shards == 4
        assert entry_fingerprints(migrated) == entry_fingerprints(reloaded)

    def _v3_state(self, dfs, torn_tail=False):
        """Fabricate a realistic v3 deployment: a snapshot written by
        the legacy writer plus a single change log holding records the
        snapshot does not cover (and optionally a torn final line)."""
        from repro.restore import save_snapshot

        sharded = ShardedRepository(num_shards=4)
        for index in range(6):
            sharded.insert(fabricated_entry(index))
        keys = {entry.entry_id: f"k{position}"
                for position, entry in enumerate(sharded.scan())}
        save_snapshot(sharded, dfs, SNAPSHOT, base_seq=6, keys=keys)
        # Post-snapshot history in the v3 single log: an insert, a
        # use-stamp, and a removal.
        extra = fabricated_entry(40)
        target = sharded.scan()[2]
        victim = sharded.scan()[4]
        log_lines = [
            json.dumps({"seq": 7, "op": "insert", "shard": None, "key": "k9",
                        "entry": entry_to_json(extra)}, sort_keys=True),
            json.dumps({"seq": 8, "op": "use", "shard": None,
                        "key": keys[target.entry_id], "use_count": 3,
                        "last_used_tick": 11}, sort_keys=True),
            json.dumps({"seq": 9, "op": "remove", "shard": None,
                        "key": keys[victim.entry_id]}, sort_keys=True),
        ]
        if torn_tail:
            log_lines.append('{"seq": 10, "op": "ins')
        dfs.write_lines(LOG_BASE, log_lines, overwrite=True)
        # Mirror the log on the in-memory twin for the equality checks.
        sharded.insert(extra)
        target.stats.use_count = 3
        target.stats.last_used_tick = 11
        sharded.remove(victim)
        return sharded

    def test_v3_single_log_splits_into_segments_losslessly(self):
        """The PR 5 migration bar: a v3 snapshot+log attaches to a
        segmented RepositoryLog and splits into per-shard sections and
        segments with scan order, statistics, and match decisions
        bit-identical — and the v3 single log is gone afterwards."""
        dfs = DistributedFileSystem()
        twin = self._v3_state(dfs)
        reloaded = load_repository(dfs)
        assert reloaded.loader_report.format_version == LOG_MANIFEST_VERSION
        assert entry_fingerprints(reloaded) == entry_fingerprints(twin)

        log = RepositoryLog(dfs).attach(reloaded)  # migrates on attach
        assert not dfs.exists(LOG_BASE)  # the single v3 log is subsumed
        manifest = manifest_of(dfs)
        assert manifest[MANIFEST_KEY] == DELTA_MANIFEST_VERSION
        assert manifest["num_shards"] == 4
        migrated = load_repository(dfs)
        assert migrated.loader_report.format_version == \
            DELTA_MANIFEST_VERSION
        assert entry_fingerprints(migrated) == entry_fingerprints(twin)
        assert [[e.output_path for e in shard]
                for shard in migrated.partitions()] == \
            [[e.output_path for e in shard] for shard in twin.partitions()]
        # Match decisions are unchanged: every probe sees the same
        # candidate sequence as the pre-migration twin.
        for index in range(4):
            probe = fabricated_entry(50 + index).plan
            assert [e.output_path for e in migrated.match_candidates(probe)] \
                == [e.output_path for e in twin.match_candidates(probe)]
        # And post-migration mutations keep flowing into the segments
        # (mutate the attached repository, then reload once more).
        reloaded.record_use(reloaded.scan()[0], tick=20)
        log.flush()
        final = load_repository(dfs)
        assert entry_fingerprints(final) == entry_fingerprints(reloaded)

    def test_v3_migration_tolerates_torn_tail(self):
        dfs = DistributedFileSystem()
        twin = self._v3_state(dfs, torn_tail=True)
        reloaded = load_repository(dfs)
        assert reloaded.loader_report.torn_tail_dropped == 1
        assert entry_fingerprints(reloaded) == entry_fingerprints(twin)
        RepositoryLog(dfs).attach(reloaded)  # heals + migrates
        assert not dfs.exists(LOG_BASE)
        migrated = load_repository(dfs)
        assert migrated.loader_report.torn_tail_dropped == 0
        assert entry_fingerprints(migrated) == entry_fingerprints(twin)

    def test_repeat_compaction_never_rewrites_sections_in_place(self):
        """Regression: a healing compaction can run at an *unchanged*
        sequence number (e.g. an untracked mutation between load and
        attach). It must still write fresh section files — overwriting
        the generation the current manifest references would brick the
        restart if the process crashed before the manifest swap."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        for index in range(3):
            live.insert(fabricated_entry(index))
        log.compact()
        [referenced] = dfs.list_files(prefix=f"{SNAPSHOT}.sec-")
        before = dfs.read_lines(referenced)

        reloaded = load_repository(dfs)
        reloaded.insert(fabricated_entry(9))  # untracked: forces healing
        healing = RepositoryLog(dfs)
        # Fail the manifest swap mid-compaction: the crash window the
        # immutability guarantee exists for.
        original_write = dfs.write_lines

        def crashing_write(path, lines, overwrite=False):
            if path == SNAPSHOT:
                raise DfsError("simulated crash before the manifest swap")
            return original_write(path, lines, overwrite=overwrite)

        dfs.write_lines = crashing_write
        with pytest.raises(DfsError):
            healing.attach(reloaded)
        dfs.write_lines = original_write
        # The referenced generation is untouched, so the old manifest
        # still loads exactly the pre-crash state.
        assert dfs.read_lines(referenced) == before
        recovered = load_repository(dfs)
        assert len(recovered) == 3

    def test_v4_partial_load_into_prepopulated_target(self):
        """Parity with the v1-v3 loaders: loading into a pre-populated
        explicit target unions the entries and skips order pinning (the
        recorded order is not a permutation of the union) instead of
        failing as corrupt."""
        dfs = DistributedFileSystem()
        live = Repository()
        log = RepositoryLog(dfs).attach(live)
        for index in range(3):
            live.insert(fabricated_entry(index))
        log.checkpoint()

        target = Repository()
        target.insert(fabricated_entry(30))
        merged = load_repository(dfs, repository=target)
        assert merged is target
        assert len(merged) == 4
        assert {e.output_path for e in merged.scan()} == \
            {e.output_path for e in live.scan()} | {"/stored/s30"}

    def test_v4_loads_into_explicit_target(self):
        """Cross-format migration works for v4 too: a v4 file written by
        a plain repository loads into a sharded target."""
        dfs = DistributedFileSystem()
        plain = self._entries(Repository())
        log = RepositoryLog(dfs).attach(plain)
        plain.insert(fabricated_entry(9))
        log.flush()
        migrated = load_repository(
            dfs, repository=ShardedRepository(num_shards=8))
        assert isinstance(migrated, ShardedRepository)
        assert [e.output_path for e in migrated.scan()] == \
            [e.output_path for e in plain.scan()]


class TestManagerIntegration:
    def test_manager_checkpoints_every_submit(self):
        system = pigmix_system()
        log = RepositoryLog(system.dfs, compact_ratio=100.0)
        restore = system.restore(persistence=log)
        restore.submit(system.compile(Q1_TEXT))
        assert restore.last_report.checkpoint is not None
        assert restore.last_report.checkpoint["appended"] >= 1
        reloaded = load_repository(system.dfs)
        assert entry_fingerprints(reloaded) == \
            entry_fingerprints(restore.repository)

    def test_persistence_true_builds_default_log(self):
        """Knob plumbing: ReStore(persistence=True) wires a
        default-configured segmented RepositoryLog on the manager's
        DFS."""
        system = pigmix_system()
        restore = system.restore(persistence=True)
        assert isinstance(restore.persistence, RepositoryLog)
        restore.submit(system.compile(Q1_TEXT))
        assert restore.last_report.checkpoint is not None
        reloaded = load_repository(system.dfs)
        assert entry_fingerprints(reloaded) == \
            entry_fingerprints(restore.repository)

    def test_manager_close_flushes_pending_records(self):
        # Regression: records buffered between the checkpoint cadence
        # used to be lost when the manager was simply dropped.
        system = pigmix_system()
        log = RepositoryLog(system.dfs, compact_ratio=100.0)
        restore = system.restore(persistence=log, checkpoint_every=1000)
        restore.submit(system.compile(Q1_TEXT))
        assert log.pending_records >= 1  # cadence never fired
        restore.close()
        assert log.pending_records == 0
        reloaded = load_repository(system.dfs)
        assert entry_fingerprints(reloaded) == \
            entry_fingerprints(restore.repository)
        restore.close()  # idempotent

    def test_manager_is_a_context_manager(self):
        system = pigmix_system()
        log = RepositoryLog(system.dfs, compact_ratio=100.0)
        with system.restore(persistence=log,
                            checkpoint_every=1000) as restore:
            restore.submit(system.compile(Q1_TEXT))
            assert log.pending_records >= 1
        assert log.pending_records == 0
        assert entry_fingerprints(load_repository(system.dfs)) == \
            entry_fingerprints(restore.repository)

    def test_manager_close_releases_repository_executor(self):
        system = pigmix_system()
        repository = ShardedRepository(num_shards=4, executor="threads")
        restore = system.restore(repository=repository)
        restore.submit(system.compile(Q1_TEXT))
        restore.submit(system.compile(Q2_TEXT))
        restore.close()
        assert repository._executor._pool is None  # thread pool shut down

    def test_checkpoint_every_knob(self):
        system = pigmix_system()
        log = RepositoryLog(system.dfs, compact_ratio=100.0)
        restore = system.restore(persistence=log, checkpoint_every=2)
        restore.submit(system.compile(Q1_TEXT))
        assert restore.last_report.checkpoint is None
        assert log.pending_records >= 1
        restore.submit(system.compile(Q2_TEXT))
        assert restore.last_report.checkpoint is not None
        assert log.pending_records == 0

    def test_reloaded_manager_still_reuses(self):
        """Restart from manifest+segments: Q2 is still rewritten from
        Q1's logged registrations."""
        system = pigmix_system()
        log = RepositoryLog(system.dfs)
        restore = system.restore(persistence=log)
        restore.submit(system.compile(Q1_TEXT))

        reloaded = load_repository(system.dfs)
        fresh = system.restore(repository=reloaded,
                               enable_registration=False, heuristic=None)
        fresh.submit(system.compile(Q2_TEXT))
        assert fresh.last_report.num_rewrites >= 1

    def test_eviction_removals_survive_restart(self):
        """Rule 3/4 sweeps append remove records, so a restart does not
        resurrect evicted entries."""
        system = pigmix_system()
        log = RepositoryLog(system.dfs, compact_ratio=1000.0)
        restore = system.restore(
            persistence=log,
            retention=HeuristicRetentionPolicy(window_ticks=100))
        restore.submit(system.compile(Q1_TEXT))
        assert len(restore.repository) >= 1
        # Rule 4: modify the users dataset; the next sweep evicts every
        # entry that read the old version.
        seed_users(system.dfs, include=range(4))
        probe = ("A = load '/data/page_views' as (user:chararray, "
                 "timestamp:int, est_revenue:double, page_info:chararray, "
                 "page_links:chararray);\n"
                 "B = filter A by timestamp > 10;\n"
                 "store B into '/out/probe';")
        restore.submit(system.compile(probe, "probe"))
        assert restore.last_report.evicted_entries
        reloaded = load_repository(system.dfs)
        assert entry_fingerprints(reloaded) == \
            entry_fingerprints(restore.repository)
        # No compaction happened: the evictions really came from replay.
        assert reloaded.loader_report.replayed_records > 0
        assert any(record["op"] == "remove"
                   for record in all_segment_records(system.dfs))

    def test_manager_ranker_recorded_in_snapshot_manifest(self):
        """The v4 manifest carries the same ranker provenance that
        save_repository(..., ranker=) records — without requiring the
        caller to duplicate it into the RepositoryLog constructor."""
        system = pigmix_system()
        log = RepositoryLog(system.dfs, compact_ratio=0.01)  # compact always
        restore = system.restore(ranker="savings", persistence=log)
        restore.submit(system.compile(Q1_TEXT))
        assert restore.last_report.checkpoint["compacted"]
        reloaded = load_repository(system.dfs)
        assert reloaded.manifest_metadata["ranker"] == "savings"
        # An explicitly configured log keeps its own setting.
        explicit = RepositoryLog(system.dfs, ranker="structural")
        system.restore(ranker="savings", persistence=explicit,
                       repository=reloaded)
        assert explicit.ranker == "structural"

    def test_use_stamps_survive_restart(self):
        system = pigmix_system()
        log = RepositoryLog(system.dfs)
        restore = system.restore(persistence=log)
        restore.submit(system.compile(Q1_TEXT))
        restore.submit(system.compile(Q2_TEXT))
        assert restore.last_report.num_rewrites >= 1
        reloaded = load_repository(system.dfs)
        live_stats = [(e.output_path, e.stats.use_count, e.stats.last_used_tick)
                      for e in restore.repository.scan()]
        reloaded_stats = [(e.output_path, e.stats.use_count, e.stats.last_used_tick)
                          for e in reloaded.scan()]
        assert reloaded_stats == live_stats
        assert any(count > 0 for _, count, _ in reloaded_stats)
