"""Smoke + shape tests for the experiment harness (tiny profile).

These run the same code paths as the benchmark suite but on the tiny
profile, so CI catches harness regressions quickly. Shape assertions are
looser than the benchmarks' (tiny data is noisier).
"""

import pytest

from repro.harness import (
    fig9_whole_jobs,
    fig10_sub_jobs,
    fig11_overhead,
    fig12_speedup,
    fig13_heuristic_reuse,
    fig14_heuristic_overhead,
    fig15_jobs_vs_subjobs,
    fig16_projection,
    fig17_filter,
    PigMixScenario,
    PROFILES,
    SynthScenario,
    table1_storage,
    table2_synth_data,
)
from repro.harness.reporting import (
    arithmetic_mean,
    ExperimentResult,
    format_table,
    geometric_mean,
)


class TestScenarios:
    def test_pigmix_scenario_calibrates_scale(self):
        scenario = PigMixScenario("150GB", "tiny")
        effective = (scenario.system.dfs.file_size("/data/page_views")
                     * scenario.scale)
        assert effective == pytest.approx(150 * 1024**3)

    def test_instances_differ_10x_in_rows(self):
        small = PigMixScenario("15GB", "tiny")
        large = PigMixScenario("150GB", "tiny")
        small_rows = small.system.dfs.status("/data/page_views").num_lines
        large_rows = large.system.dfs.status("/data/page_views").num_lines
        assert large_rows == 10 * small_rows

    def test_unknown_instance_rejected(self):
        with pytest.raises(ValueError):
            PigMixScenario("1TB", "tiny")

    def test_synth_scenario(self):
        scenario = SynthScenario("tiny")
        assert scenario.system.dfs.exists("/data/synth")
        assert scenario.scale > 1

    def test_profiles_registered(self):
        assert set(PROFILES) >= {"tiny", "default"}


@pytest.mark.slow
class TestExperimentShapes:
    """One pass over every experiment on the tiny profile (memoized
    sweeps make the marginal cost of each additional figure small)."""

    def test_fig9_speedup_positive(self):
        result = fig9_whole_jobs("tiny")
        average = result.row_for("query", "average")
        assert average["speedup"] > 2

    def test_fig10_reuse_wins(self):
        result = fig10_sub_jobs("tiny")
        for row in result.rows:
            assert row["reusing_min"] < row["no_reuse_min"]

    def test_fig11_small_scale_overhead_higher(self):
        result = fig11_overhead("tiny")
        average = result.row_for("query", "average")
        assert average["15GB"] > average["150GB"]

    def test_fig12_large_scale_speedup_higher(self):
        result = fig12_speedup("tiny")
        average = result.row_for("query", "average")
        assert average["150GB"] > average["15GB"]

    def test_fig13_ha_matches_nh(self):
        result = fig13_heuristic_reuse("tiny")
        for row in result.rows:
            assert row["HA_min"] == pytest.approx(row["NH_min"], rel=0.1)

    def test_fig14_nh_never_cheaper_than_ha(self):
        result = fig14_heuristic_overhead("tiny")
        for row in result.rows:
            assert row["NH_min"] >= row["HA_min"] * 0.999

    def test_table1_storage_ordering(self):
        result = table1_storage("tiny")
        for row in result.rows:
            assert row["HC_GB"] <= row["HA_GB"] * 1.001 <= row["NH_GB"] * 1.002

    def test_fig15_whole_jobs_best(self):
        result = fig15_jobs_vs_subjobs("tiny")
        for row in result.rows:
            assert row["whole_jobs_min"] <= row["HA_min"] * 1.001

    def test_table2_cardinalities(self):
        result = table2_synth_data("tiny")
        for row in result.rows:
            expected = 2 if row["cardinality_spec"] == 1.6 else row["cardinality_spec"]
            assert row["cardinality_measured"] == expected

    def test_fig16_monotone(self):
        result = fig16_projection("tiny")
        overheads = result.column("overhead")
        assert overheads == sorted(overheads)

    def test_fig17_first_point_net_win(self):
        result = fig17_filter("tiny")
        first = result.rows[0]
        assert first["speedup"] > first["overhead"]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [{"a": 1, "bb": 2.5}, {"a": 10, "bb": 3.0}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len({len(line) for line in lines}) == 1  # equal widths

    def test_experiment_result_accessors(self):
        result = ExperimentResult("x", "t", ["q", "v"],
                                  [{"q": "a", "v": 1}, {"q": "b", "v": 2}])
        assert result.column("v") == [1, 2]
        assert result.row_for("q", "b") == {"q": "b", "v": 2}
        with pytest.raises(KeyError):
            result.row_for("q", "zzz")

    def test_format_includes_paper_and_notes(self):
        result = ExperimentResult("x", "t", ["q"], [{"q": 1}],
                                  paper={"claim": 9.8}, notes=["scaled"])
        text = result.format()
        assert "claim=9.8" in text
        assert "note: scaled" in text

    def test_means(self):
        assert arithmetic_mean([1, 2, 3]) == 2
        assert arithmetic_mean([]) == 0
        assert geometric_mean([1, 4]) == 2
        assert geometric_mean([]) == 0
