"""Shared fixtures/helpers for integration-style tests.

Builds a tiny in-memory "cluster" (DFS + cost model) and provides the
compile pipeline as one call, so tests read like user code.
"""

from repro.common import DeterministicRng
from repro.data import DataType, encode_row, Field, Schema
from repro.dfs import DistributedFileSystem
from repro.logical import build_logical_plan
from repro.mapreduce import ClusterConfig, CostModel, CostModelConfig
from repro.mrcompiler import compile_to_workflow
from repro.physical import logical_to_physical
from repro.piglatin import parse_query

PAGE_VIEWS_SCHEMA = Schema(
    [
        Field("user", DataType.CHARARRAY),
        Field("timestamp", DataType.INT),
        Field("est_revenue", DataType.DOUBLE),
        Field("page_info", DataType.CHARARRAY),
        Field("page_links", DataType.CHARARRAY),
    ]
)

USERS_SCHEMA = Schema(
    [
        Field("name", DataType.CHARARRAY),
        Field("phone", DataType.CHARARRAY),
        Field("address", DataType.CHARARRAY),
        Field("city", DataType.CHARARRAY),
    ]
)


def make_dfs(**kwargs):
    defaults = dict(block_size=1 << 20, replication=3, num_datanodes=14)
    defaults.update(kwargs)
    return DistributedFileSystem(**defaults)


def make_cost_model(scale=1.0):
    return CostModel(CostModelConfig(scale=scale), ClusterConfig())


def write_rows(dfs, path, rows, schema):
    lines = [encode_row(row, schema) for row in rows]
    return dfs.write_lines(path, lines, overwrite=True)


def seed_page_views(dfs, num_rows=60, num_users=10, path="/data/page_views", seed=7):
    """Small deterministic page_views table; users drawn from u0..u{n-1}."""
    rng = DeterministicRng(seed).substream("page_views")
    rows = []
    for index in range(num_rows):
        user = f"u{rng.randint(0, num_users - 1)}"
        timestamp = rng.randint(0, 86400)
        revenue = round(rng.uniform(0.0, 10.0), 2)
        rows.append((user, timestamp, revenue, f"info{index}", f"links{index}"))
    write_rows(dfs, path, rows, PAGE_VIEWS_SCHEMA)
    return rows


def seed_users(dfs, num_users=10, path="/data/users", include=None, seed=7):
    """Users table covering u0..u{n-1} (optionally only a subset)."""
    rows = []
    for index in range(num_users):
        if include is not None and index not in include:
            continue
        rows.append((f"u{index}", f"555-{index:04d}", f"{index} Main St", "Waterloo"))
    write_rows(dfs, path, rows, USERS_SCHEMA)
    return rows


def compile_query(text, name, dfs=None):
    """Full front-end pipeline: text -> AST -> logical -> physical -> jobs."""
    logical = build_logical_plan(parse_query(text))
    versions = {}
    if dfs is not None:
        for path in {op.path for op in logical.sources()}:
            if dfs.exists(path):
                versions[path] = dfs.status(path).version
    physical = logical_to_physical(logical, versions)
    return compile_to_workflow(physical, name)


Q1_TEXT = """
A = load '/data/page_views' as (user:chararray, timestamp:int,
    est_revenue:double, page_info:chararray, page_links:chararray);
B = foreach A generate user, est_revenue;
alpha = load '/data/users' as (name:chararray, phone:chararray,
    address:chararray, city:chararray);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into '/out/L2_out';
"""

Q2_TEXT = """
A = load '/data/page_views' as (user:chararray, timestamp:int,
    est_revenue:double, page_info:chararray, page_links:chararray);
B = foreach A generate user, est_revenue;
alpha = load '/data/users' as (name:chararray, phone:chararray,
    address:chararray, city:chararray);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into '/out/L3_out';
"""
