"""End-to-end execution tests: parse -> compile -> run on the engine."""

import pytest

from repro.data import decode_row, DataType, Field, Schema
from repro.mapreduce import WorkflowExecutor
from repro.mrcompiler import JobControl

from tests.helpers import (
    compile_query,
    make_cost_model,
    make_dfs,
    Q1_TEXT,
    Q2_TEXT,
    seed_page_views,
    seed_users,
    write_rows,
)


def run_query(text, name, dfs, use_jobcontrol=False):
    workflow = compile_query(text, name, dfs)
    cost_model = make_cost_model()
    if use_jobcontrol:
        return JobControl(dfs, cost_model).run(workflow)
    return WorkflowExecutor(dfs, cost_model).execute(workflow)


def read_output(dfs, path, schema):
    return [decode_row(line, schema) for line in dfs.read_lines(path)]


class TestQ1Q2:
    def setup_method(self):
        self.dfs = make_dfs()
        self.page_views = seed_page_views(self.dfs)
        self.users = seed_users(self.dfs, include=range(6))  # u0..u5 known

    def test_q1_join_results(self):
        run_query(Q1_TEXT, "q1", self.dfs)
        schema = Schema(
            [
                Field("name", DataType.CHARARRAY),
                Field("user", DataType.CHARARRAY),
                Field("est_revenue", DataType.DOUBLE),
            ]
        )
        rows = read_output(self.dfs, "/out/L2_out", schema)
        expected = sorted(
            (user, user, revenue)
            for (user, _, revenue, _, _) in self.page_views
            if int(user[1:]) < 6
        )
        assert sorted(rows) == expected
        # Join output: name always equals user (equi-join key).
        assert all(name == user for name, user, _ in rows)

    def test_q2_grouped_revenue(self):
        run_query(Q2_TEXT, "q2", self.dfs)
        schema = Schema(
            [Field("group", DataType.CHARARRAY), Field("sum", DataType.DOUBLE)]
        )
        rows = read_output(self.dfs, "/out/L3_out", schema)
        expected = {}
        for user, _, revenue, _, _ in self.page_views:
            if int(user[1:]) < 6:
                expected[user] = expected.get(user, 0.0) + revenue
        assert {user: round(total, 6) for user, total in rows} == {
            user: round(total, 6) for user, total in expected.items()
        }

    def test_q2_temp_outputs_deleted_after_run(self):
        # "The current practice is to delete these intermediate results"
        # (paper, abstract) — the plain executor does exactly that.
        workflow = compile_query(Q2_TEXT, "q2tmp", self.dfs)
        WorkflowExecutor(self.dfs, make_cost_model()).execute(workflow)
        for path in workflow.temp_paths:
            assert not self.dfs.exists(path)

    def test_jobcontrol_matches_executor(self):
        run_query(Q2_TEXT, "a", self.dfs)
        first = self.dfs.read_lines("/out/L3_out")
        run_query(Q2_TEXT, "b", self.dfs, use_jobcontrol=True)
        second = self.dfs.read_lines("/out/L3_out")
        assert first == second

    def test_equation1_completion_times(self):
        workflow = compile_query(Q2_TEXT, "eq1", self.dfs)
        result = WorkflowExecutor(self.dfs, make_cost_model()).execute(workflow)
        by_kind = {job.shuffle_op.kind: job for job in workflow.jobs}
        join_id = by_kind["join"].job_id
        group_id = by_kind["group"].job_id
        # Ttotal(group) = ET(group) + Ttotal(join)  (Equation 1)
        assert result.completion_times[group_id] == pytest.approx(
            result.job_results[group_id].execution_time
            + result.completion_times[join_id]
        )
        assert result.total_time == result.completion_times[group_id]


class TestOperatorSemantics:
    def setup_method(self):
        self.dfs = make_dfs()

    def run(self, text, name="t"):
        return run_query(text, name, self.dfs)

    def test_filter_and_projection(self):
        schema = Schema([Field("x", DataType.INT), Field("y", DataType.CHARARRAY)])
        write_rows(self.dfs, "/d", [(1, "a"), (5, "b"), (9, "c")], schema)
        self.run(
            "A = load '/d' as (x:int, y:chararray);"
            "B = filter A by x > 2;"
            "C = foreach B generate y;"
            "store C into '/o';"
        )
        assert self.dfs.read_lines("/o") == ["b", "c"]

    def test_group_all_aggregates(self):
        schema = Schema([Field("x", DataType.INT)])
        write_rows(self.dfs, "/d", [(1,), (2,), (3,), (None,)], schema)
        self.run(
            "A = load '/d' as (x:int);"
            "B = group A all;"
            "C = foreach B generate COUNT(A), SUM(A.x), AVG(A.x);"
            "store C into '/o';"
        )
        out_schema = Schema(
            [Field("c", DataType.INT), Field("s", DataType.INT),
             Field("a", DataType.DOUBLE)]
        )
        (row,) = [decode_row(line, out_schema) for line in self.dfs.read_lines("/o")]
        assert row == (4, 6, 2.0)

    def test_group_composite_key_with_flatten(self):
        schema = Schema([Field("u", DataType.CHARARRAY), Field("q", DataType.CHARARRAY),
                         Field("t", DataType.INT)])
        write_rows(self.dfs, "/d",
                   [("a", "x", 1), ("a", "x", 2), ("a", "y", 4), ("b", "x", 8)],
                   schema)
        self.run(
            "A = load '/d' as (u:chararray, q:chararray, t:int);"
            "B = group A by (u, q);"
            "C = foreach B generate flatten(group), SUM(A.t);"
            "store C into '/o';"
        )
        out_schema = Schema([Field("u", DataType.CHARARRAY),
                             Field("q", DataType.CHARARRAY),
                             Field("s", DataType.INT)])
        rows = sorted(decode_row(line, out_schema) for line in self.dfs.read_lines("/o"))
        assert rows == [("a", "x", 3), ("a", "y", 4), ("b", "x", 8)]

    def test_distinct(self):
        schema = Schema([Field("x", DataType.INT)])
        write_rows(self.dfs, "/d", [(1,), (2,), (1,), (2,), (3,)], schema)
        self.run("A = load '/d' as (x:int); B = distinct A; store B into '/o';")
        assert sorted(self.dfs.read_lines("/o")) == ["1", "2", "3"]

    def test_union_then_distinct(self):
        schema = Schema([Field("x", DataType.INT)])
        write_rows(self.dfs, "/d1", [(1,), (2,)], schema)
        write_rows(self.dfs, "/d2", [(2,), (3,)], schema)
        self.run(
            "A = load '/d1' as (x:int); B = load '/d2' as (x:int);"
            "C = union A, B; D = distinct C; store D into '/o';"
        )
        assert sorted(self.dfs.read_lines("/o")) == ["1", "2", "3"]

    def test_cogroup_anti_join(self):
        # L5-style anti-join: users in A with no match in B.
        left = Schema([Field("u", DataType.CHARARRAY)])
        write_rows(self.dfs, "/a", [("x",), ("y",), ("z",)], left)
        write_rows(self.dfs, "/b", [("x",)], left)
        self.run(
            "A = load '/a' as (u:chararray); B = load '/b' as (u:chararray);"
            "C = cogroup A by u, B by u;"
            "D = filter C by COUNT(B) == 0;"
            "E = foreach D generate group;"
            "store E into '/o';"
        )
        assert sorted(self.dfs.read_lines("/o")) == ["y", "z"]

    def test_order_by_desc_then_limit(self):
        schema = Schema([Field("x", DataType.INT)])
        write_rows(self.dfs, "/d", [(3,), (1,), (4,), (1,), (5,)], schema)
        self.run(
            "A = load '/d' as (x:int);"
            "B = order A by x desc;"
            "C = limit B 3;"
            "store C into '/o';"
        )
        assert self.dfs.read_lines("/o") == ["5", "4", "3"]

    def test_join_drops_null_keys(self):
        schema = Schema([Field("k", DataType.CHARARRAY), Field("v", DataType.INT)])
        write_rows(self.dfs, "/a", [("x", 1), (None, 2)], schema)
        write_rows(self.dfs, "/b", [("x", 10), (None, 20)], schema)
        self.run(
            "A = load '/a' as (k:chararray, v:int);"
            "B = load '/b' as (k:chararray, v:int);"
            "C = join A by k, B by k;"
            "store C into '/o';"
        )
        assert self.dfs.read_lines("/o") == ["x\t1\tx\t10"]

    def test_deterministic_across_runs(self):
        seed_page_views(self.dfs)
        seed_users(self.dfs)
        run_query(Q2_TEXT, "r1", self.dfs)
        first = self.dfs.read_lines("/out/L3_out")
        run_query(Q2_TEXT, "r2", self.dfs)
        assert self.dfs.read_lines("/out/L3_out") == first


class TestStatsCollection:
    def test_counters_populated(self):
        dfs = make_dfs()
        seed_page_views(dfs)
        seed_users(dfs)
        workflow = compile_query(Q2_TEXT, "stats", dfs)
        result = WorkflowExecutor(dfs, make_cost_model()).execute(workflow)
        by_kind = {job.shuffle_op.kind: job for job in workflow.jobs}
        join_stats = result.stats_of(by_kind["join"].job_id)
        assert join_stats.map_input_bytes > 0
        assert join_stats.map_input_records == 70  # 60 page views + 10 users
        assert join_stats.map_output_records > 0
        assert join_stats.num_reducers >= 1
        assert join_stats.output_bytes > 0
        assert ("join", "reduce") in join_stats.op_charges

    def test_execution_time_positive_and_deterministic(self):
        dfs = make_dfs()
        seed_page_views(dfs)
        seed_users(dfs)
        times = []
        for name in ("t1", "t2"):
            workflow = compile_query(Q2_TEXT, name, dfs)
            result = WorkflowExecutor(dfs, make_cost_model()).execute(workflow)
            times.append(result.total_time)
        assert times[0] > 0
        assert times[0] == times[1]
