"""Unit tests for the retention/eviction policies (Section 5, Rules 1-4)."""

import pytest

from repro.common import LogicalClock
from repro.dfs import DistributedFileSystem
from repro.logical import build_logical_plan
from repro.mapreduce import CostModel, CostModelConfig
from repro.physical import logical_to_physical
from repro.piglatin import parse_query
from repro.restore import (
    HeuristicRetentionPolicy,
    KeepEverythingPolicy,
    Repository,
    RepositoryEntry,
)
from repro.restore.stats import EntryStats

PLAN_TEXT = """
A = load '/data/in' as (x:int, y:int);
B = filter A by x > 0;
store B into '/stored/out';
"""


def make_entry(input_bytes=10**9, output_bytes=10**6, time=600.0,
               created_tick=0, versions=None, owns_file=True):
    plan = logical_to_physical(build_logical_plan(parse_query(PLAN_TEXT)))
    stats = EntryStats(input_bytes, output_bytes, time, created_tick=created_tick)
    return RepositoryEntry(plan, "/stored/out", stats,
                           input_versions=versions or {}, owns_file=owns_file)


def cost_model():
    return CostModel(CostModelConfig())


class TestKeepEverything:
    def test_keeps_anything(self):
        policy = KeepEverythingPolicy()
        bad = make_entry(input_bytes=1, output_bytes=10**9, time=0.001)
        assert policy.should_keep(bad, cost_model())

    def test_sweep_evicts_nothing(self):
        repo = Repository()
        repo.insert(make_entry())
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        assert KeepEverythingPolicy().sweep(repo, dfs, LogicalClock(100)) == []
        assert len(repo) == 1


class TestRule1OutputSmallerThanInput:
    def test_accepts_reducing_output(self):
        policy = HeuristicRetentionPolicy()
        assert policy.should_keep(make_entry(), cost_model())

    def test_rejects_expanding_output(self):
        policy = HeuristicRetentionPolicy()
        expanding = make_entry(input_bytes=100, output_bytes=1000)
        assert not policy.should_keep(expanding, cost_model())

    def test_rule_can_be_disabled(self):
        policy = HeuristicRetentionPolicy(require_reduction=False,
                                          require_benefit=False)
        expanding = make_entry(input_bytes=100, output_bytes=1000)
        assert policy.should_keep(expanding, cost_model())


class TestRule2TimeBenefit:
    def test_rejects_when_reload_costs_more_than_recompute(self):
        policy = HeuristicRetentionPolicy()
        # Producing the job took 1 s; reloading its output takes longer
        # than that (startup alone is several seconds).
        cheap = make_entry(time=1.0)
        assert not policy.should_keep(cheap, cost_model())

    def test_accepts_when_recompute_is_expensive(self):
        policy = HeuristicRetentionPolicy()
        expensive = make_entry(time=3600.0, output_bytes=10**6)
        assert policy.should_keep(expensive, cost_model())


class TestRule3ReuseWindow:
    def _repo_with_entry(self, created_tick, versions=None):
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/data/in", ["1\t2"])
        dfs.write_lines("/stored/out", ["1\t2"])
        entry = make_entry(created_tick=created_tick,
                           versions=versions if versions is not None
                           else {"/data/in": 1})
        repo.insert(entry)
        return repo, dfs, entry

    def test_fresh_entry_survives(self):
        repo, dfs, _ = self._repo_with_entry(created_tick=8)
        policy = HeuristicRetentionPolicy(window_ticks=5)
        assert policy.sweep(repo, dfs, LogicalClock(10)) == []

    def test_idle_entry_evicted(self):
        repo, dfs, entry = self._repo_with_entry(created_tick=1)
        policy = HeuristicRetentionPolicy(window_ticks=5)
        evicted = policy.sweep(repo, dfs, LogicalClock(10))
        assert evicted == [entry]
        assert len(repo) == 0
        assert not dfs.exists("/stored/out")  # owned file reclaimed

    def test_recent_use_resets_window(self):
        repo, dfs, entry = self._repo_with_entry(created_tick=1)
        entry.stats.record_use(9)
        policy = HeuristicRetentionPolicy(window_ticks=5)
        assert policy.sweep(repo, dfs, LogicalClock(10)) == []


class TestRule4InputInvalidation:
    def test_deleted_input_evicts(self):
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/stored/out", ["x"])
        entry = make_entry(versions={"/data/in": 1})  # /data/in never written
        repo.insert(entry)
        policy = HeuristicRetentionPolicy(window_ticks=100)
        assert policy.sweep(repo, dfs, LogicalClock(1)) == [entry]

    def test_modified_input_evicts(self):
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/data/in", ["old"])
        dfs.write_lines("/stored/out", ["x"])
        entry = make_entry(versions={"/data/in": 1})
        repo.insert(entry)
        dfs.write_lines("/data/in", ["new"], overwrite=True)  # version 2
        policy = HeuristicRetentionPolicy(window_ticks=100)
        assert policy.sweep(repo, dfs, LogicalClock(1)) == [entry]

    def test_identical_rewrite_does_not_evict(self):
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/data/in", ["same"])
        dfs.write_lines("/stored/out", ["x"])
        entry = make_entry(versions={"/data/in": 1})
        repo.insert(entry)
        dfs.write_lines("/data/in", ["same"], overwrite=True)  # content-stable
        policy = HeuristicRetentionPolicy(window_ticks=100)
        assert policy.sweep(repo, dfs, LogicalClock(1)) == []

    def _entry_for(self, text, output_path, versions, created_tick=0,
                   time=600.0):
        from repro.logical import build_logical_plan as blp
        from repro.physical import logical_to_physical as l2p
        from repro.piglatin import parse_query as pq

        return RepositoryEntry(
            l2p(blp(pq(text))), output_path,
            EntryStats(10**9, 10**3, time, created_tick=created_tick),
            input_versions=versions,
        )

    def test_eviction_cascade(self):
        # Entry B reads entry A's output; evicting A (deleting its file)
        # must cascade to B via Rule 4.
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/data/in", ["1\t2"])
        dfs.write_lines("/stored/out", ["1\t2"])
        dfs.write_lines("/stored/downstream", ["1"])
        stale = make_entry(created_tick=0, versions={"/data/in": 1})

        downstream_text = PLAN_TEXT.replace("/data/in", "/stored/out").replace(
            "'/stored/out';", "'/stored/downstream';")
        from repro.logical import build_logical_plan as blp
        from repro.physical import logical_to_physical as l2p
        from repro.piglatin import parse_query as pq

        downstream = RepositoryEntry(
            l2p(blp(pq(downstream_text))),
            "/stored/downstream",
            EntryStats(10**9, 10**3, 600.0, created_tick=10),
            input_versions={"/stored/out": 1},
        )
        repo.insert(stale)
        repo.insert(downstream)
        policy = HeuristicRetentionPolicy(window_ticks=5)
        evicted = policy.sweep(repo, dfs, LogicalClock(10))
        # `stale` idles out (Rule 3); its file deletion invalidates
        # `downstream` (Rule 4).
        assert set(evicted) == {stale, downstream}
        assert len(repo) == 0

    def test_three_level_cascade_reaches_fixpoint(self):
        # A -> B -> C dependency chain of stored outputs: only A is
        # stale, but deleting its file invalidates B (Rule 4), and
        # deleting B's file invalidates C — the sweep's re-check rounds
        # must follow the chain to the fixpoint, not stop after one.
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/data/in", ["1\t2"])
        for path in ("/stored/a", "/stored/b", "/stored/c"):
            dfs.write_lines(path, ["1\t2"])

        def text(src, dst):
            return PLAN_TEXT.replace("/data/in", src).replace(
                "'/stored/out';", f"'{dst}';")

        a = self._entry_for(text("/data/in", "/stored/a"), "/stored/a",
                            {"/data/in": 1}, created_tick=0)
        b = self._entry_for(text("/stored/a", "/stored/b"), "/stored/b",
                            {"/stored/a": 1}, created_tick=10)
        c = self._entry_for(text("/stored/b", "/stored/c"), "/stored/c",
                            {"/stored/b": 1}, created_tick=10)
        for entry in (a, b, c):
            repo.insert(entry)
        policy = HeuristicRetentionPolicy(window_ticks=5)
        evicted = policy.sweep(repo, dfs, LogicalClock(10))
        assert set(evicted) == {a, b, c}
        assert len(repo) == 0
        for path in ("/stored/a", "/stored/b", "/stored/c"):
            assert not dfs.exists(path)

    def test_evicting_an_entrys_only_subsumption_parent(self):
        # P strictly subsumes Q (same load, P extends Q's plan). Both
        # expire in the same sweep: removing P first prunes its
        # subsumption edge to Q, and the repository must stay coherent —
        # a subsequent insert re-derives the scan order over the pruned
        # edge sets without touching the removed ids.
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/data/in", ["1\t2"])
        dfs.write_lines("/stored/q", ["1\t2"])
        dfs.write_lines("/stored/p", ["1"])
        q_entry = self._entry_for(
            PLAN_TEXT.replace("/stored/out", "/stored/q"),
            "/stored/q", {"/data/in": 1}, created_tick=0)
        p_text = PLAN_TEXT.replace(
            "store B into '/stored/out';",
            "C = distinct B;\nstore C into '/stored/p';")
        p_entry = self._entry_for(p_text, "/stored/p", {"/data/in": 1},
                                  created_tick=0)
        repo.insert(q_entry)
        repo.insert(p_entry)
        # Rule 1: the subsuming plan scans first.
        assert [e.output_path for e in repo.scan()] == \
            ["/stored/p", "/stored/q"]

        policy = HeuristicRetentionPolicy(window_ticks=5)
        evicted = policy.sweep(repo, dfs, LogicalClock(10))
        assert set(evicted) == {p_entry, q_entry}
        assert len(repo) == 0

        # The repository is still consistent after losing both ends of
        # the subsumption edge: inserting fresh twins rebuilds the same
        # order from scratch.
        fresh_q = self._entry_for(
            PLAN_TEXT.replace("/stored/out", "/stored/q2"),
            "/stored/q2", {"/data/in": 1}, created_tick=10)
        fresh_p = self._entry_for(p_text.replace("/stored/p", "/stored/p2"),
                                  "/stored/p2", {"/data/in": 1},
                                  created_tick=10)
        repo.insert(fresh_q)
        repo.insert(fresh_p)
        assert [e.output_path for e in repo.scan()] == \
            ["/stored/p2", "/stored/q2"]

    def test_surviving_dependent_of_evicted_subsumption_parent(self):
        # Only the subsuming parent expires; the contained entry was
        # recently used and must survive the sweep with the edge sets
        # pruned (a follow-up insert exercises the post-removal reorder).
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/data/in", ["1\t2"])
        dfs.write_lines("/stored/q", ["1\t2"])
        dfs.write_lines("/stored/p", ["1"])
        q_entry = self._entry_for(
            PLAN_TEXT.replace("/stored/out", "/stored/q"),
            "/stored/q", {"/data/in": 1}, created_tick=0)
        p_text = PLAN_TEXT.replace(
            "store B into '/stored/out';",
            "C = distinct B;\nstore C into '/stored/p';")
        p_entry = self._entry_for(p_text, "/stored/p", {"/data/in": 1},
                                  created_tick=0)
        repo.insert(q_entry)
        repo.insert(p_entry)
        q_entry.stats.record_use(9)  # still inside the window

        policy = HeuristicRetentionPolicy(window_ticks=5)
        evicted = policy.sweep(repo, dfs, LogicalClock(10))
        assert evicted == [p_entry]
        assert [e.output_path for e in repo.scan()] == ["/stored/q"]
        another = self._entry_for(
            PLAN_TEXT.replace("/stored/out", "/stored/r"),
            "/stored/r", {"/data/in": 1}, created_tick=10)
        repo.insert(another)
        assert set(e.output_path for e in repo.scan()) == \
            {"/stored/q", "/stored/r"}

    def test_recreated_input_path_still_evicts(self):
        # Rule 4's sharp edge: an input that is *deleted and re-created*
        # (rather than overwritten) must not resurrect stale entries.
        # The DFS continues the version sequence across the delete, so
        # the version recorded at registration never matches again.
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/data/in", ["old"])
        dfs.write_lines("/stored/out", ["x"])
        entry = make_entry(versions={"/data/in": 1})
        repo.insert(entry)
        dfs.delete("/data/in")
        dfs.write_lines("/data/in", ["new"])  # re-created, not overwritten
        assert dfs.status("/data/in").version == 2
        policy = HeuristicRetentionPolicy(window_ticks=100)
        assert policy.sweep(repo, dfs, LogicalClock(1)) == [entry]

    def test_recreated_input_with_identical_content_still_evicts(self):
        # Content-stable versioning only applies to in-place overwrites:
        # after an explicit delete the old content is gone, so an
        # identical-looking re-creation is still a new version — the
        # deletion itself was the modification Rule 4 watches for.
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/data/in", ["same"])
        dfs.write_lines("/stored/out", ["x"])
        entry = make_entry(versions={"/data/in": 1})
        repo.insert(entry)
        dfs.delete("/data/in")
        dfs.write_lines("/data/in", ["same"])
        assert dfs.status("/data/in").version == 2
        policy = HeuristicRetentionPolicy(window_ticks=100)
        assert policy.sweep(repo, dfs, LogicalClock(1)) == [entry]
