"""Unit tests for the retention/eviction policies (Section 5, Rules 1-4)."""

import pytest

from repro.common import LogicalClock
from repro.dfs import DistributedFileSystem
from repro.logical import build_logical_plan
from repro.mapreduce import CostModel, CostModelConfig
from repro.physical import logical_to_physical
from repro.piglatin import parse_query
from repro.restore import (
    HeuristicRetentionPolicy,
    KeepEverythingPolicy,
    Repository,
    RepositoryEntry,
)
from repro.restore.stats import EntryStats

PLAN_TEXT = """
A = load '/data/in' as (x:int, y:int);
B = filter A by x > 0;
store B into '/stored/out';
"""


def make_entry(input_bytes=10**9, output_bytes=10**6, time=600.0,
               created_tick=0, versions=None, owns_file=True):
    plan = logical_to_physical(build_logical_plan(parse_query(PLAN_TEXT)))
    stats = EntryStats(input_bytes, output_bytes, time, created_tick=created_tick)
    return RepositoryEntry(plan, "/stored/out", stats,
                           input_versions=versions or {}, owns_file=owns_file)


def cost_model():
    return CostModel(CostModelConfig())


class TestKeepEverything:
    def test_keeps_anything(self):
        policy = KeepEverythingPolicy()
        bad = make_entry(input_bytes=1, output_bytes=10**9, time=0.001)
        assert policy.should_keep(bad, cost_model())

    def test_sweep_evicts_nothing(self):
        repo = Repository()
        repo.insert(make_entry())
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        assert KeepEverythingPolicy().sweep(repo, dfs, LogicalClock(100)) == []
        assert len(repo) == 1


class TestRule1OutputSmallerThanInput:
    def test_accepts_reducing_output(self):
        policy = HeuristicRetentionPolicy()
        assert policy.should_keep(make_entry(), cost_model())

    def test_rejects_expanding_output(self):
        policy = HeuristicRetentionPolicy()
        expanding = make_entry(input_bytes=100, output_bytes=1000)
        assert not policy.should_keep(expanding, cost_model())

    def test_rule_can_be_disabled(self):
        policy = HeuristicRetentionPolicy(require_reduction=False,
                                          require_benefit=False)
        expanding = make_entry(input_bytes=100, output_bytes=1000)
        assert policy.should_keep(expanding, cost_model())


class TestRule2TimeBenefit:
    def test_rejects_when_reload_costs_more_than_recompute(self):
        policy = HeuristicRetentionPolicy()
        # Producing the job took 1 s; reloading its output takes longer
        # than that (startup alone is several seconds).
        cheap = make_entry(time=1.0)
        assert not policy.should_keep(cheap, cost_model())

    def test_accepts_when_recompute_is_expensive(self):
        policy = HeuristicRetentionPolicy()
        expensive = make_entry(time=3600.0, output_bytes=10**6)
        assert policy.should_keep(expensive, cost_model())


class TestRule3ReuseWindow:
    def _repo_with_entry(self, created_tick, versions=None):
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/data/in", ["1\t2"])
        dfs.write_lines("/stored/out", ["1\t2"])
        entry = make_entry(created_tick=created_tick,
                           versions=versions if versions is not None
                           else {"/data/in": 1})
        repo.insert(entry)
        return repo, dfs, entry

    def test_fresh_entry_survives(self):
        repo, dfs, _ = self._repo_with_entry(created_tick=8)
        policy = HeuristicRetentionPolicy(window_ticks=5)
        assert policy.sweep(repo, dfs, LogicalClock(10)) == []

    def test_idle_entry_evicted(self):
        repo, dfs, entry = self._repo_with_entry(created_tick=1)
        policy = HeuristicRetentionPolicy(window_ticks=5)
        evicted = policy.sweep(repo, dfs, LogicalClock(10))
        assert evicted == [entry]
        assert len(repo) == 0
        assert not dfs.exists("/stored/out")  # owned file reclaimed

    def test_recent_use_resets_window(self):
        repo, dfs, entry = self._repo_with_entry(created_tick=1)
        entry.stats.record_use(9)
        policy = HeuristicRetentionPolicy(window_ticks=5)
        assert policy.sweep(repo, dfs, LogicalClock(10)) == []


class TestRule4InputInvalidation:
    def test_deleted_input_evicts(self):
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/stored/out", ["x"])
        entry = make_entry(versions={"/data/in": 1})  # /data/in never written
        repo.insert(entry)
        policy = HeuristicRetentionPolicy(window_ticks=100)
        assert policy.sweep(repo, dfs, LogicalClock(1)) == [entry]

    def test_modified_input_evicts(self):
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/data/in", ["old"])
        dfs.write_lines("/stored/out", ["x"])
        entry = make_entry(versions={"/data/in": 1})
        repo.insert(entry)
        dfs.write_lines("/data/in", ["new"], overwrite=True)  # version 2
        policy = HeuristicRetentionPolicy(window_ticks=100)
        assert policy.sweep(repo, dfs, LogicalClock(1)) == [entry]

    def test_identical_rewrite_does_not_evict(self):
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/data/in", ["same"])
        dfs.write_lines("/stored/out", ["x"])
        entry = make_entry(versions={"/data/in": 1})
        repo.insert(entry)
        dfs.write_lines("/data/in", ["same"], overwrite=True)  # content-stable
        policy = HeuristicRetentionPolicy(window_ticks=100)
        assert policy.sweep(repo, dfs, LogicalClock(1)) == []

    def test_eviction_cascade(self):
        # Entry B reads entry A's output; evicting A (deleting its file)
        # must cascade to B via Rule 4.
        repo = Repository()
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/data/in", ["1\t2"])
        dfs.write_lines("/stored/out", ["1\t2"])
        dfs.write_lines("/stored/downstream", ["1"])
        stale = make_entry(created_tick=0, versions={"/data/in": 1})

        downstream_text = PLAN_TEXT.replace("/data/in", "/stored/out").replace(
            "'/stored/out';", "'/stored/downstream';")
        from repro.logical import build_logical_plan as blp
        from repro.physical import logical_to_physical as l2p
        from repro.piglatin import parse_query as pq

        downstream = RepositoryEntry(
            l2p(blp(pq(downstream_text))),
            "/stored/downstream",
            EntryStats(10**9, 10**3, 600.0, created_tick=10),
            input_versions={"/stored/out": 1},
        )
        repo.insert(stale)
        repo.insert(downstream)
        policy = HeuristicRetentionPolicy(window_ticks=5)
        evicted = policy.sweep(repo, dfs, LogicalClock(10))
        # `stale` idles out (Rule 3); its file deletion invalidates
        # `downstream` (Rule 4).
        assert set(evicted) == {stale, downstream}
        assert len(repo) == 0
