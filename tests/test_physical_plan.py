"""Unit tests for physical operators and plan surgery/cloning."""

import pytest

from repro.common.errors import PlanError
from repro.data import DataType, Field, Schema
from repro.logical import build_logical_plan
from repro.physical import logical_to_physical, PhysicalPlan
from repro.physical.operators import (
    POFilter,
    POLoad,
    POSplit,
    POStore,
)
from repro.piglatin import parse_query

from tests.helpers import Q1_TEXT, Q2_TEXT


def physical(text):
    return logical_to_physical(build_logical_plan(parse_query(text)))


SCHEMA = Schema([Field("x", DataType.INT)])


class TestSignatures:
    def test_load_signature_includes_path_and_version(self):
        load = POLoad("/data/t", SCHEMA, version=3)
        assert load.signature() == "LOAD[/data/t@v3]"

    def test_store_signature_hides_path(self):
        load = POLoad("/data/t", SCHEMA)
        a = POStore(load, "/out/a")
        b = POStore(load, "/out/b")
        assert a.signature() == b.signature() == "STORE"

    def test_signatures_stable_across_compilations(self):
        first = [op.signature() for op in physical(Q2_TEXT).operators()]
        second = [op.signature() for op in physical(Q2_TEXT).operators()]
        assert first == second

    def test_join_signature_distinguishes_key_sides(self):
        plan = physical(Q1_TEXT)
        (join,) = [op for op in plan.operators() if op.kind == "join"]
        assert join.signature() == "JOIN[$0|$0]"

    def test_nested_foreach_signature_differs(self):
        nested = physical("""
        A = load '/d' as (u:chararray, v:int);
        C = group A by u;
        D = foreach C { x = A.v; y = distinct x; generate group, COUNT(y); };
        store D into '/o';
        """)
        flat = physical("""
        A = load '/d' as (u:chararray, v:int);
        C = group A by u;
        D = foreach C generate group, COUNT(A);
        store D into '/o';
        """)
        nested_sigs = {op.signature() for op in nested.operators()}
        flat_sigs = {op.signature() for op in flat.operators()}
        assert any("inner(" in sig for sig in nested_sigs)
        assert nested_sigs != flat_sigs


class TestPlanStructure:
    def test_operators_topological(self):
        plan = physical(Q2_TEXT)
        positions = {id(op): pos for pos, op in enumerate(plan.operators())}
        for op in plan.operators():
            for parent in op.inputs:
                assert positions[id(parent)] < positions[id(op)]

    def test_loads_and_stores(self):
        plan = physical(Q1_TEXT)
        assert {load.path for load in plan.loads()} == {
            "/data/page_views", "/data/users"}
        assert [store.path for store in plan.stores()] == ["/out/L2_out"]

    def test_consumers_table(self):
        plan = physical(Q1_TEXT)
        consumers = plan.consumers()
        (join,) = [op for op in plan.operators() if op.kind == "join"]
        assert [op.kind for op in consumers[join]] == ["store"]

    def test_validate_rejects_non_store_sink(self):
        load = POLoad("/d", SCHEMA)
        plan = PhysicalPlan([load])
        with pytest.raises(PlanError):
            plan.validate()

    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError):
            PhysicalPlan([])

    def test_remove_last_sink_rejected(self):
        plan = physical(Q1_TEXT)
        with pytest.raises(PlanError):
            plan.remove_sink(plan.stores()[0])

    def test_replace_input_unknown_edge_raises(self):
        plan = physical(Q1_TEXT)
        store = plan.stores()[0]
        stranger = POLoad("/other", SCHEMA)
        with pytest.raises(PlanError):
            plan.replace_input(store, stranger, stranger)


class TestCloning:
    def test_clone_is_deep_and_equivalent(self):
        plan = physical(Q2_TEXT)
        clone, mapping = plan.clone()
        assert len(clone.operators()) == len(plan.operators())
        original_ids = {id(op) for op in plan.operators()}
        for op in clone.operators():
            assert id(op) not in original_ids
        assert [op.signature() for op in clone.operators()] == [
            op.signature() for op in plan.operators()]

    def test_clone_preserves_stage_annotations(self):
        plan = physical(Q1_TEXT)
        for op in plan.operators():
            op.stage = "map"
        clone, _ = plan.clone()
        assert all(op.stage == "map" for op in clone.operators())

    def test_clone_subgraph_strips_splits(self):
        plan = physical(Q1_TEXT)
        (join,) = [op for op in plan.operators() if op.kind == "join"]
        left = join.inputs[0]
        split = POSplit(left)
        split.injected = True
        plan.replace_input(join, left, split)
        clone, _ = plan.clone_subgraph(join)
        kinds = set()

        def walk(op):
            kinds.add(op.kind)
            for parent in op.inputs:
                walk(parent)

        walk(clone)
        assert "split" not in kinds
        assert "join" in kinds

    def test_mutating_clone_leaves_original_alone(self):
        plan = physical(Q1_TEXT)
        clone, _ = plan.clone()
        (join,) = [op for op in clone.operators() if op.kind == "join"]
        new_load = POLoad("/stored/x", join.schema)
        for consumer in clone.successors_of(join):
            clone.replace_input(consumer, join, new_load)
        assert any(op.kind == "join" for op in plan.operators())
        assert not any(op.kind == "join" for op in clone.operators())


class TestOperatorCopying:
    def test_copy_with_inputs_carries_flags(self):
        load = POLoad("/d", SCHEMA)
        fil = POFilter(load, _TruePredicate())
        fil.injected = True
        fil.alias = "B"
        copy = fil.copy_with_inputs([load])
        assert copy.injected
        assert copy.alias == "B"
        assert copy.op_id != fil.op_id

    def test_load_copy_rejects_inputs(self):
        load = POLoad("/d", SCHEMA)
        with pytest.raises(PlanError):
            load.copy_with_inputs([load])


class _TruePredicate:
    canonical = "true"

    @staticmethod
    def fn(row):
        return True
