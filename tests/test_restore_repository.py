"""Unit tests for the repository: ordering, dedup, removal, statistics."""

import pytest

from repro.common.errors import RepositoryError
from repro.dfs import DistributedFileSystem
from repro.logical import build_logical_plan
from repro.physical import logical_to_physical
from repro.piglatin import parse_query
from repro.restore import Repository, RepositoryEntry
from repro.restore.stats import EntryStats

from tests.helpers import Q1_TEXT, Q2_TEXT


def plan_of(text):
    return logical_to_physical(build_logical_plan(parse_query(text)))


PROJECT = """
A = load '/data/page_views' as (user:chararray, timestamp:int,
    est_revenue:double, page_info:chararray, page_links:chararray);
B = foreach A generate user, est_revenue;
store B into '/stored/proj';
"""

FILTERED = """
A = load '/data/page_views' as (user:chararray, timestamp:int,
    est_revenue:double, page_info:chararray, page_links:chararray);
B = filter A by timestamp < 100;
store B into '/stored/filt';
"""


def entry(text, output="/stored/x", input_bytes=1000, output_bytes=100,
          time=60.0, versions=None):
    return RepositoryEntry(
        plan_of(text), output,
        EntryStats(input_bytes, output_bytes, time),
        input_versions=versions or {},
    )


class TestOrdering:
    def test_subsuming_plan_scans_first_regardless_of_metrics(self):
        repo = Repository()
        # The projection has a (much) better ratio, but Q1 subsumes it.
        projection = entry(PROJECT, output_bytes=1, time=1.0)
        whole = entry(Q1_TEXT, output="/stored/q1", output_bytes=900, time=5.0)
        repo.insert(projection)
        repo.insert(whole)
        assert repo.scan()[0] is whole

    def test_insertion_order_does_not_matter(self):
        for first_is_whole in (True, False):
            repo = Repository()
            projection = entry(PROJECT, output_bytes=1)
            whole = entry(Q1_TEXT, output="/stored/q1", output_bytes=900)
            if first_is_whole:
                repo.insert(whole)
                repo.insert(projection)
            else:
                repo.insert(projection)
                repo.insert(whole)
            assert repo.scan()[0] is whole

    def test_transitive_constraint_respected_with_interloper(self):
        # A high-ratio unrelated entry must not jump ahead of an entry it
        # is subsumed by (regression test for naive insertion sort).
        repo = Repository()
        unrelated = entry(FILTERED, output="/stored/f", input_bytes=10**9,
                          output_bytes=1)
        projection = entry(PROJECT, output_bytes=500)
        whole = entry(Q2_TEXT, output="/stored/q2", output_bytes=900)
        repo.insert(whole)
        repo.insert(projection)
        repo.insert(unrelated)
        order = repo.scan()
        assert order.index(whole) < order.index(projection)

    def test_unrelated_entries_ordered_by_ratio_then_time(self):
        repo = Repository()
        low_ratio = entry(PROJECT, input_bytes=100, output_bytes=100, time=10)
        high_ratio = entry(FILTERED, output="/stored/f", input_bytes=1000,
                           output_bytes=1, time=1)
        repo.insert(low_ratio)
        repo.insert(high_ratio)
        assert repo.scan()[0] is high_ratio

    def test_equal_ratio_breaks_by_time(self):
        repo = Repository()
        slow = entry(PROJECT, input_bytes=100, output_bytes=10, time=100)
        fast = entry(FILTERED, output="/stored/f", input_bytes=100,
                     output_bytes=10, time=5)
        repo.insert(fast)
        repo.insert(slow)
        assert repo.scan()[0] is slow  # longer producing time preferred


class TestLookupAndRemoval:
    def test_entry_by_id(self):
        repo = Repository()
        stored = repo.insert(entry(PROJECT))
        assert repo.entry(stored.entry_id) is stored
        with pytest.raises(RepositoryError):
            repo.entry("nope")

    def test_find_equivalent(self):
        repo = Repository()
        repo.insert(entry(PROJECT))
        assert repo.find_equivalent(plan_of(PROJECT)) is not None
        assert repo.find_equivalent(plan_of(FILTERED)) is None

    def test_remove_deletes_owned_file(self):
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/stored/x", ["data"])
        repo = Repository()
        stored = repo.insert(entry(PROJECT, output="/stored/x"))
        repo.remove(stored, dfs)
        assert len(repo) == 0
        assert not dfs.exists("/stored/x")

    def test_remove_keeps_unowned_file(self):
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/user/out", ["data"])
        repo = Repository()
        unowned = entry(PROJECT, output="/user/out")
        unowned.owns_file = False
        repo.insert(unowned)
        repo.remove(unowned, dfs)
        assert dfs.exists("/user/out")

    def test_remove_missing_raises(self):
        repo = Repository()
        with pytest.raises(RepositoryError):
            repo.remove(entry(PROJECT))


class TestStatistics:
    def test_total_stored_bytes(self):
        repo = Repository()
        repo.insert(entry(PROJECT, output_bytes=100))
        repo.insert(entry(FILTERED, output="/stored/f", output_bytes=50))
        assert repo.total_stored_bytes() == 150

    def test_record_use_updates_counters(self):
        stats = EntryStats(1000, 100, 60.0, created_tick=1)
        stats.record_use(5)
        stats.record_use(9)
        assert stats.use_count == 2
        assert stats.last_used_tick == 9

    def test_reduction_ratio(self):
        assert EntryStats(1000, 100, 1.0).reduction_ratio == 10
        assert EntryStats(1000, 0, 1.0).reduction_ratio == 1000  # no div-zero

    def test_describe_mentions_entries(self):
        repo = Repository()
        stored = repo.insert(entry(PROJECT))
        assert stored.entry_id in repo.describe()


class TestScanSnapshot:
    def test_scan_returns_immutable_cached_snapshot(self):
        # The matcher's rescan loop calls scan() repeatedly; the repository
        # must hand out one immutable snapshot, not a fresh list per call.
        repo = Repository()
        repo.insert(entry(PROJECT))
        repo.insert(entry(FILTERED, output="/stored/f"))
        snapshot = repo.scan()
        assert isinstance(snapshot, tuple)
        assert repo.scan() is snapshot
        with pytest.raises(AttributeError):
            snapshot.append  # tuples expose no mutators

    def test_snapshot_invalidated_by_insert_and_remove(self):
        repo = Repository()
        first = repo.insert(entry(PROJECT))
        before = repo.scan()
        second = repo.insert(entry(FILTERED, output="/stored/f"))
        after_insert = repo.scan()
        assert after_insert is not before
        assert set(after_insert) == {first, second}
        repo.remove(second)
        assert repo.scan() == (first,)


class TestIndexMaintenance:
    def test_remove_prunes_subsumption_cache(self):
        # Seed regression: remove() left every cached pair referencing the
        # removed entry behind, so eviction-heavy retention policies (e.g.
        # KeepEverythingPolicy churn via manual sweeps) grew the cache
        # without bound.
        repo = Repository()
        churn = 12
        for round_index in range(churn):
            stored = repo.insert(entry(PROJECT, output=f"/stored/x{round_index}"))
            other = repo.insert(entry(Q1_TEXT, output=f"/stored/q{round_index}"))
            repo.remove(stored)
            repo.remove(other)
        assert len(repo) == 0
        assert repo._subsumption_cache == {}

    def test_cache_keeps_pairs_of_surviving_entries(self):
        repo = Repository()
        kept = repo.insert(entry(PROJECT))
        dropped = repo.insert(entry(Q1_TEXT, output="/stored/q1"))
        assert any(kept.entry_id in key and dropped.entry_id in key
                   for key in repo._subsumption_cache)
        repo.remove(dropped)
        assert all(dropped.entry_id not in key
                   for key in repo._subsumption_cache)

    def test_match_candidates_filters_disjoint_loads(self):
        repo = Repository()
        page_views = repo.insert(entry(PROJECT))
        repo.insert(entry(FILTERED, output="/stored/f"))
        other = plan_of(PROJECT.replace("/data/page_views", "/data/elsewhere"))
        assert repo.match_candidates(other) == ()
        same = plan_of(PROJECT)
        assert page_views in repo.match_candidates(same)

    def test_match_candidates_preserve_scan_order(self):
        repo = Repository()
        repo.insert(entry(PROJECT, output_bytes=1, time=1.0))
        repo.insert(entry(Q1_TEXT, output="/stored/q1", output_bytes=900, time=5.0))
        repo.insert(entry(FILTERED, output="/stored/f"))
        probe = plan_of(Q1_TEXT)
        candidates = repo.match_candidates(probe)
        order = repo.scan()
        assert [order.index(c) for c in candidates] == \
            sorted(order.index(c) for c in candidates)

    def test_fingerprint_invariant_under_store_path(self):
        a = plan_of(PROJECT)
        b = plan_of(PROJECT.replace("/stored/proj", "/stored/other"))
        from repro.restore import plan_fingerprint
        assert plan_fingerprint(a) == plan_fingerprint(b)
        assert plan_fingerprint(a) != plan_fingerprint(plan_of(FILTERED))
