"""Tests for nested FOREACH blocks (the authentic PigMix L4/L7 forms)."""

import pytest

from repro import PigSystem
from repro.common.errors import PlanError
from repro.data import DataType, encode_row, Field, Schema
from repro.piglatin import ast, parse_query

SCHEMA = Schema(
    [
        Field("user", DataType.CHARARRAY),
        Field("action", DataType.INT),
        Field("timestamp", DataType.INT),
    ]
)

ROWS = [
    ("a", 1, 100), ("a", 1, 50000), ("a", 2, 200),
    ("b", 1, 300), ("b", 1, 400), ("c", 2, 60000),
]


def seeded_system():
    system = PigSystem()
    system.dfs.write_lines("/data/t", [encode_row(r, SCHEMA) for r in ROWS])
    return system


L4_STYLE = """
A = load '/data/t' as (user:chararray, action:int, timestamp:int);
B = foreach A generate user, action;
C = group B by user;
D = foreach C {
    aleph = B.action;
    gen = distinct aleph;
    generate group, COUNT(gen);
};
store D into '/out/l4';
"""

L7_STYLE = """
A = load '/data/t' as (user:chararray, action:int, timestamp:int);
B = foreach A generate user, timestamp;
C = group B by user;
D = foreach C {
    morning = filter B by timestamp < 43200;
    afternoon = filter B by timestamp >= 43200;
    generate group, COUNT(morning), COUNT(afternoon);
};
store D into '/out/l7';
"""


class TestParsing:
    def test_nested_block_parses(self):
        query = parse_query(L4_STYLE)
        foreach = query.statements[3]
        assert isinstance(foreach, ast.ForEachStmt)
        assert len(foreach.inner) == 2
        assert isinstance(foreach.inner[0], ast.InnerAssign)
        assert isinstance(foreach.inner[1], ast.InnerDistinct)

    def test_inner_filter_parses(self):
        query = parse_query(L7_STYLE)
        foreach = query.statements[3]
        assert isinstance(foreach.inner[0], ast.InnerFilter)
        assert foreach.inner[0].alias == "morning"


class TestExecution:
    def test_l4_distinct_count(self):
        system = seeded_system()
        system.run(L4_STYLE)
        rows = sorted(system.dfs.read_lines("/out/l4"))
        assert rows == ["a\t2", "b\t1", "c\t1"]

    def test_l7_morning_afternoon(self):
        system = seeded_system()
        system.run(L7_STYLE)
        rows = sorted(system.dfs.read_lines("/out/l7"))
        assert rows == ["a\t2\t1", "b\t2\t0", "c\t0\t1"]

    def test_sum_over_inner_projection(self):
        system = seeded_system()
        system.run("""
        A = load '/data/t' as (user:chararray, action:int, timestamp:int);
        C = group A by user;
        D = foreach C {
            acts = A.action;
            dedup = distinct acts;
            generate group, SUM(dedup.action);
        };
        store D into '/out/s';
        """)
        rows = sorted(system.dfs.read_lines("/out/s"))
        assert rows == ["a\t3", "b\t1", "c\t2"]

    def test_chained_inner_filter_then_distinct(self):
        system = seeded_system()
        system.run("""
        A = load '/data/t' as (user:chararray, action:int, timestamp:int);
        C = group A by user;
        D = foreach C {
            early = filter A by timestamp < 43200;
            acts = early.action;
            uniq = distinct acts;
            generate group, COUNT(uniq);
        };
        store D into '/out/c';
        """)
        rows = sorted(system.dfs.read_lines("/out/c"))
        assert rows == ["a\t2", "b\t1", "c\t0"]

    def test_inner_over_non_bag_rejected(self):
        system = seeded_system()
        with pytest.raises(PlanError):
            system.compile("""
            A = load '/data/t' as (user:chararray, action:int, timestamp:int);
            C = group A by user;
            D = foreach C {
                oops = filter group by group == 'a';
                generate group, COUNT(A);
            };
            store D into '/out/x';
            """)


class TestReuse:
    def test_nested_foreach_signature_includes_inner(self):
        system = seeded_system()
        wf_count = system.compile(L4_STYLE)
        plain = L4_STYLE.replace(
            "{\n    aleph = B.action;\n    gen = distinct aleph;\n    "
            "generate group, COUNT(gen);\n}",
            "generate group, COUNT(B)",
        )
        wf_plain = system.compile(plain)

        def foreach_signatures(workflow):
            return {
                op.signature()
                for job in workflow.jobs
                for op in job.plan.operators()
                if op.kind == "foreach"
            }

        assert foreach_signatures(wf_count) != foreach_signatures(wf_plain)

    def test_nested_foreach_query_reusable(self):
        system = seeded_system()
        restore = system.restore()
        restore.submit(system.compile(L4_STYLE))
        first = system.dfs.read_lines("/out/l4")
        result = restore.submit(system.compile(L4_STYLE))
        assert restore.last_report.eliminated_jobs  # fully served
        assert system.dfs.read_lines("/out/l4") == first

    def test_different_inner_blocks_do_not_match(self):
        system = seeded_system()
        restore = system.restore()
        restore.submit(system.compile(L4_STYLE))
        modified = L4_STYLE.replace("COUNT(gen)", "COUNT(aleph)").replace(
            "/out/l4", "/out/l4b")
        restore.submit(system.compile(modified))
        # The group job is shared, but the nested foreach differs, so the
        # final job re-executes with a different aggregate.
        check = seeded_system()
        check.run(modified)
        assert (system.dfs.read_lines("/out/l4b")
                == check.dfs.read_lines("/out/l4b"))
