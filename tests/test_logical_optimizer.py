"""Tests for the logical optimizer rules (semantics preserved, structure
improved)."""

import pytest

from repro import PigSystem
from repro.data import DataType, Field, Schema, encode_row
from repro.logical import build_logical_plan
from repro.logical import operators as lo
from repro.logical.optimizer import (
    DEFAULT_RULES,
    MergeConsecutiveFilters,
    optimize,
    PushFilterBeforeForeach,
)
from repro.piglatin import parse_query


def logical(text):
    return build_logical_plan(parse_query(text))


def kinds(plan):
    return [op.kind for op in plan.operators()]


SCHEMA = Schema([Field("x", DataType.INT), Field("y", DataType.INT),
                 Field("z", DataType.CHARARRAY)])
ROWS = [(1, 10, "a"), (5, 20, "b"), (9, 30, "c"), (None, 40, "d")]


def run_both(text, out="/o"):
    """Execute with and without optimization; return both outputs."""
    outputs = []
    for optimize_flag in (False, True):
        system = PigSystem(optimize=optimize_flag)
        lines = [encode_row(row, SCHEMA) for row in ROWS]
        system.dfs.write_lines("/d", lines)
        system.run(text)
        outputs.append(system.dfs.read_lines(out))
    return outputs


class TestMergeConsecutiveFilters:
    TEXT = (
        "A = load '/d' as (x:int, y:int, z:chararray);"
        "B = filter A by x > 2;"
        "C = filter B by y < 35;"
        "store C into '/o';"
    )

    def test_merges_into_one_filter(self):
        plan = optimize(logical(self.TEXT), rules=[MergeConsecutiveFilters()])
        assert kinds(plan).count("filter") == 1

    def test_results_unchanged(self):
        plain, optimized = run_both(self.TEXT)
        assert plain == optimized
        assert plain  # not vacuous

    def test_triple_filter_merges_fully(self):
        text = (
            "A = load '/d' as (x:int, y:int, z:chararray);"
            "B = filter A by x > 0;"
            "C = filter B by y > 0;"
            "D = filter C by x < 100;"
            "store D into '/o';"
        )
        plan = optimize(logical(text), rules=[MergeConsecutiveFilters()])
        assert kinds(plan).count("filter") == 1


class TestPushFilterBeforeForeach:
    TEXT = (
        "A = load '/d' as (x:int, y:int, z:chararray);"
        "B = foreach A generate x, z;"
        "C = filter B by x > 2;"
        "store C into '/o';"
    )

    def test_filter_moves_before_foreach(self):
        plan = optimize(logical(self.TEXT), rules=[PushFilterBeforeForeach()])
        order = kinds(plan)
        assert order.index("filter") < order.index("foreach")

    def test_results_unchanged(self):
        plain, optimized = run_both(self.TEXT)
        assert plain == optimized
        assert plain

    def test_renamed_field_reference_is_rewritten(self):
        text = (
            "A = load '/d' as (x:int, y:int, z:chararray);"
            "B = foreach A generate y as speed, z;"
            "C = filter B by speed >= 20;"
            "store C into '/o';"
        )
        plan = optimize(logical(text), rules=[PushFilterBeforeForeach()])
        order = kinds(plan)
        assert order.index("filter") < order.index("foreach")
        plain, optimized = run_both(text)
        assert plain == optimized

    def test_computed_item_blocks_pushdown(self):
        text = (
            "A = load '/d' as (x:int, y:int, z:chararray);"
            "B = foreach A generate x + y as s, z;"
            "C = filter B by s > 20;"
            "store C into '/o';"
        )
        plan = optimize(logical(text), rules=[PushFilterBeforeForeach()])
        order = kinds(plan)
        # Conservative: no rewrite when the item is computed.
        assert order.index("foreach") < order.index("filter")

    def test_flatten_blocks_pushdown(self):
        text = (
            "A = load '/d' as (x:int, y:int, z:chararray);"
            "G = group A by z;"
            "B = foreach G generate flatten(group), COUNT(A) as n;"
            "C = filter B by n > 0;"
            "store C into '/o';"
        )
        plan = optimize(logical(text), rules=[PushFilterBeforeForeach()])
        order = kinds(plan)
        assert order.index("foreach") < order.index("filter")

    def test_aggregate_condition_blocks_pushdown(self):
        text = (
            "A = load '/d' as (x:int, y:int, z:chararray);"
            "B = foreach A generate x, y;"
            "C = filter B by ABS(x) > 2;"
            "store C into '/o';"
        )
        plan = optimize(logical(text), rules=[PushFilterBeforeForeach()])
        order = kinds(plan)
        assert order.index("foreach") < order.index("filter")


class TestOptimizerDriver:
    def test_rules_compose_to_fixpoint(self):
        text = (
            "A = load '/d' as (x:int, y:int, z:chararray);"
            "B = foreach A generate x, y;"
            "C = filter B by x > 1;"
            "D = filter C by y > 1;"
            "store D into '/o';"
        )
        plan = optimize(logical(text))
        order = kinds(plan)
        # Both filters merged AND pushed before the foreach.
        assert order.count("filter") == 1
        assert order.index("filter") < order.index("foreach")
        plain, optimized = run_both(text)
        assert plain == optimized

    def test_noop_on_already_optimal_plan(self):
        text = (
            "A = load '/d' as (x:int, y:int, z:chararray);"
            "B = filter A by x > 1;"
            "C = foreach B generate x;"
            "store C into '/o';"
        )
        before = kinds(logical(text))
        after = kinds(optimize(logical(text)))
        assert before == after

    def test_multi_sink_plans_survive(self):
        text = (
            "A = load '/d' as (x:int, y:int, z:chararray);"
            "B = filter A by x > 1;"
            "store B into '/o1';"
            "C = foreach A generate y;"
            "store C into '/o2';"
        )
        plan = optimize(logical(text))
        assert len(plan.sinks) == 2

    def test_pig_system_optimize_flag(self):
        system = PigSystem(optimize=True)
        lines = [encode_row(row, SCHEMA) for row in ROWS]
        system.dfs.write_lines("/d", lines)
        text = (
            "A = load '/d' as (x:int, y:int, z:chararray);"
            "B = foreach A generate x, z;"
            "C = filter B by x > 2;"
            "store C into '/o';"
        )
        workflow = system.compile(text)
        job_kinds = [op.kind for op in workflow.jobs[0].plan.operators()]
        assert job_kinds.index("filter") < job_kinds.index("foreach")
