"""Tests for the PigMix workload: generator properties and query behaviour."""

import pytest

from repro import PigSystem
from repro.pigmix import (
    ALL_QUERIES,
    PAGE_VIEWS_SCHEMA,
    PigMixConfig,
    PigMixData,
    PigMixPaths,
    query_text,
    VARIANT_FAMILIES,
)


def tiny_config():
    return PigMixConfig(num_page_views=400, num_users=40, num_power_users=8,
                        missing_users=2, seed=3)


class TestDataGenerator:
    def test_deterministic(self):
        a = PigMixData(tiny_config())
        b = PigMixData(tiny_config())
        assert a.page_views_rows() == b.page_views_rows()
        assert a.users_rows() == b.users_rows()
        assert a.power_users_rows() == b.power_users_rows()

    def test_row_counts(self):
        data = PigMixData(tiny_config())
        assert len(data.page_views_rows()) == 400
        assert len(data.users_rows()) == 38  # 40 minus 2 missing
        assert len(data.power_users_rows()) == 8

    def test_page_views_arity_matches_schema(self):
        data = PigMixData(tiny_config())
        for row in data.page_views_rows():
            assert len(row) == len(PAGE_VIEWS_SCHEMA)

    def test_zipf_popularity_skew(self):
        data = PigMixData(tiny_config())
        counts = {}
        for row in data.page_views_rows():
            counts[row[0]] = counts.get(row[0], 0) + 1
        most = max(counts.values())
        # The heaviest user is far above the uniform share (400/40 = 10).
        assert most > 20

    def test_power_users_subset_of_users(self):
        data = PigMixData(tiny_config())
        user_names = {row[0] for row in data.users_rows()}
        assert {row[0] for row in data.power_users_rows()} <= user_names

    def test_missing_users_have_page_views_coverage_gap(self):
        data = PigMixData(tiny_config())
        pv_users = {row[0] for row in data.page_views_rows()}
        users = {row[0] for row in data.users_rows()}
        assert pv_users - users  # some page_views users are unmatched

    def test_install_creates_three_tables(self):
        system = PigSystem()
        statuses = PigMixData(tiny_config()).install(system.dfs)
        assert set(statuses) == {"/data/page_views", "/data/users",
                                 "/data/power_users"}
        assert all(status.size_bytes > 0 for status in statuses.values())

    def test_scaled_config(self):
        large = tiny_config().scaled(10)
        assert large.num_page_views == 4000
        assert large.num_users == 400

    def test_timestamps_split_around_noon(self):
        rows = PigMixData(tiny_config()).page_views_rows()
        morning = sum(1 for row in rows if row[5] < 43200)
        # L7's filter keeps roughly half of the rows.
        assert 0.35 < morning / len(rows) < 0.65


class TestQueryCompilation:
    @pytest.fixture(scope="class")
    def system(self):
        system = PigSystem()
        PigMixData(tiny_config()).install(system.dfs)
        return system

    EXPECTED_JOBS = {
        "L2": 1, "L3": 2, "L4": 1, "L5": 1, "L6": 1, "L7": 1, "L8": 1, "L11": 3,
    }

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_job_counts_match_paper(self, system, name):
        workflow = system.compile(query_text(name), name)
        assert len(workflow.jobs) == self.EXPECTED_JOBS[name]

    def test_l11_dependency_shape(self, system):
        # Section 7.1: "3 jobs, where one job depends on the other two".
        workflow = system.compile(query_text("L11"), "l11")
        dependents = [job for job in workflow.jobs if job.dependencies]
        assert len(dependents) == 1
        assert len(dependents[0].dependencies) == 2

    def test_variant_queries_compile(self, system):
        for family in VARIANT_FAMILIES.values():
            for name, fn in family.items():
                workflow = system.compile(fn(PigMixPaths()), name)
                assert workflow.jobs

    def test_unknown_query_name(self):
        with pytest.raises(KeyError):
            query_text("L99")


class TestQueryExecution:
    @pytest.fixture(scope="class")
    def executed(self):
        system = PigSystem()
        data = PigMixData(tiny_config())
        data.install(system.dfs)
        for name in sorted(ALL_QUERIES):
            system.run(query_text(name), name)
        return system, data

    def test_all_outputs_exist_nonempty_where_expected(self, executed):
        system, _ = executed
        for name in ("L2", "L3", "L4", "L6", "L7", "L8", "L11"):
            out = f"/out/{name}_out"
            assert system.dfs.exists(out)
            assert system.dfs.file_size(out) > 0

    def test_l5_antijoin_is_tiny(self, executed):
        # Table 1: L5's output is bytes (the few unmatched users).
        system, data = executed
        lines = system.dfs.read_lines("/out/L5_out")
        users = {row[0] for row in data.users_rows()}
        pv_users = {row[0] for row in data.page_views_rows()}
        assert set(lines) == pv_users - users

    def test_l8_single_row(self, executed):
        system, data = executed
        (line,) = system.dfs.read_lines("/out/L8_out")
        count, total, avg = line.split("\t")
        rows = data.page_views_rows()
        assert int(count) == len(rows)
        assert int(total) == sum(row[2] for row in rows)

    def test_l3_totals_match_manual_aggregation(self, executed):
        system, data = executed
        users = {row[0] for row in data.users_rows()}
        expected = {}
        for row in data.page_views_rows():
            if row[0] in users:
                expected[row[0]] = expected.get(row[0], 0.0) + row[6]
        lines = system.dfs.read_lines("/out/L3_out")
        got = {}
        for line in lines:
            user, total = line.split("\t")
            got[user] = float(total)
        assert set(got) == set(expected)
        for user in expected:
            assert got[user] == pytest.approx(expected[user])

    def test_l11_distinct_union(self, executed):
        system, data = executed
        lines = set(system.dfs.read_lines("/out/L11_out"))
        pv_users = {row[0] for row in data.page_views_rows()}
        users = {row[0] for row in data.users_rows()}
        assert lines == pv_users | users

    def test_l6_output_has_many_groups(self, executed):
        # L6 groups by (user, query_term): nearly one group per row.
        system, data = executed
        num_groups = len(system.dfs.read_lines("/out/L6_out"))
        assert num_groups > len(data.page_views_rows()) * 0.5

    def test_l2_join_selectivity(self, executed):
        # L2 joins with the small power_users table -> small output.
        system, data = executed
        lines = system.dfs.read_lines("/out/L2_out")
        power = {row[0] for row in data.power_users_rows()}
        matched = [row for row in data.page_views_rows() if row[0] in power]
        assert len(lines) == len(matched)
