"""Directed tests for the async ingest front-end (PR 8).

Three layers:

* **queue semantics** — the bounded :class:`~repro.restore.ingest.IngestQueue`
  under each backpressure policy (block / reject / coalesce), control-record
  bypass, close behavior, and the :class:`~repro.restore.stats.IngestStats`
  drain-latency reservoir;
* **manager integration** — a paused registrar makes the enqueue/drain split
  observable: rejected registrations are reported and their files discarded,
  duplicate fingerprints coalesce to the inline outcome, within-batch
  duplicates skip ``find_equivalent`` without changing decisions, and
  ``close()`` drains instead of dropping;
* **faults** — a shard worker killed mid-batch (via
  :class:`tests.faultinject.FaultSchedule`) must not lose mutations, and a
  crash/reload between enqueue and drain must find zero dangling durable
  records and replay exactly.
"""

import threading
import time

import pytest

from repro.restore import (
    AggressiveHeuristic,
    load_repository,
    ReStore,
    ReStoreReport,
    RepositoryLog,
    ShardedRepository,
)
from repro.restore.ingest import (
    BarrierRecord,
    DiscardRecord,
    FrozenClock,
    IngestQueue,
    RegistrationRecord,
    Registrar,
)
from repro.restore.stats import IngestStats

from tests.faultinject import FaultSchedule, install_hang_guard
from tests.helpers import (
    compile_query,
    make_cost_model,
    make_dfs,
    Q1_TEXT,
    Q2_TEXT,
    seed_page_views,
    seed_users,
)


@pytest.fixture(autouse=True)
def _hang_guard():
    # A lost barrier or queue message hangs forever; turn that into a
    # stack dump + hard failure instead of a hung CI job.
    cancel = install_hang_guard()
    yield
    cancel()


def fresh_restore(dfs, **kwargs):
    return ReStore(dfs, make_cost_model(), **kwargs)


def seeded_dfs():
    dfs = make_dfs()
    seed_page_views(dfs)
    seed_users(dfs, include=range(6))
    return dfs


def _fake_record(fingerprint="fp"):
    """A minimal coalescable record for queue-level tests."""

    class _Fake:
        coalescable = True
        is_barrier = False

        def __init__(self):
            self.absorbed = []
            self.enqueued_at = None

        def ensure_fingerprint(self):
            return fingerprint

    return _Fake()


def _manual_record(job_plan, frontier_op, path, report):
    """A real RegistrationRecord over a compiled plan, with synthetic
    stats — for tests that feed the manager's apply path directly."""
    return RegistrationRecord(
        job_plan=job_plan, frontier_op=frontier_op, output_path=path,
        owns_file=False, origin="whole-job", report=report,
        input_bytes=1000, output_bytes=10, producing_job_time=2.0,
        map_time=0.5, reduce_time=0.5, created_tick=1)


def _compiled_frontier(dfs):
    workflow = compile_query(Q1_TEXT, "manual", dfs)
    job = workflow.topological_jobs()[0]
    store = job.plan.stores()[0]
    return job.plan, store.inputs[0]


def _entry_state(repository):
    """Everything a replay must reproduce bit-identically, in scan order
    (the property suite's idiom)."""
    state = []
    for entry in repository.scan():
        stats = entry.stats
        state.append((
            entry.output_path, entry.fingerprint, entry.origin,
            entry.owns_file, dict(entry.input_versions),
            stats.input_bytes, stats.output_bytes, stats.producing_job_time,
            stats.map_time, stats.reduce_time, stats.created_tick,
            stats.last_used_tick, stats.use_count,
        ))
    return state


# --- Queue semantics ----------------------------------------------------------


class TestIngestQueue:
    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown ingest policy"):
            IngestQueue(policy="drop")

    def test_block_policy_waits_for_room(self):
        queue = IngestQueue(capacity=1, policy="block")
        assert queue.put(_fake_record("a"))
        unblocked = threading.Event()

        def blocked_put():
            queue.put(_fake_record("b"))
            unblocked.set()

        thread = threading.Thread(target=blocked_put, daemon=True)
        thread.start()
        assert not unblocked.wait(0.1)  # full queue: the put is parked
        [first] = queue.take_batch(1, timeout=1.0)
        assert first.ensure_fingerprint() == "a"
        assert unblocked.wait(5.0)  # room freed: the put completed
        thread.join()
        [second] = queue.take_batch(1, timeout=1.0)
        assert second.ensure_fingerprint() == "b"

    def test_reject_policy_refuses_when_full(self):
        queue = IngestQueue(capacity=1, policy="reject")
        assert queue.put(_fake_record("a"))
        assert not queue.put(_fake_record("b"))
        assert queue.stats.rejected == 1
        assert queue.stats.enqueued == 1
        assert len(queue) == 1

    def test_coalesce_absorbs_duplicate_fingerprints(self):
        queue = IngestQueue(capacity=8, policy="coalesce")
        survivor = _fake_record("same")
        duplicate = _fake_record("same")
        other = _fake_record("other")
        assert queue.put(survivor)
        assert queue.put(duplicate)
        assert queue.put(other)
        assert len(queue) == 2  # the duplicate did not occupy a slot
        assert survivor.absorbed == [duplicate]
        assert queue.stats.coalesced == 1
        assert queue.stats.enqueued == 2

    def test_popped_survivor_leaves_coalesce_map(self):
        # A record already handed to the registrar must not absorb new
        # duplicates — they could land after its batch applied.
        queue = IngestQueue(capacity=8, policy="coalesce")
        survivor = _fake_record("same")
        queue.put(survivor)
        assert queue.take_batch(4, timeout=1.0) == [survivor]
        late = _fake_record("same")
        queue.put(late)
        assert survivor.absorbed == []
        assert len(queue) == 1
        assert queue.take_batch(4, timeout=1.0) == [late]

    def test_put_control_bypasses_capacity(self):
        queue = IngestQueue(capacity=1, policy="reject")
        queue.put(_fake_record("a"))
        queue.put_control(DiscardRecord(["/x"]))  # full, but never refused
        assert len(queue) == 2

    def test_closed_queue_refuses_records_but_not_barriers(self):
        queue = IngestQueue(capacity=4)
        queue.close()
        with pytest.raises(RuntimeError, match="closed"):
            queue.put(_fake_record())
        with pytest.raises(RuntimeError, match="closed"):
            queue.put_control(DiscardRecord(["/x"]))
        queue.put_control(BarrierRecord(threading.Event()))  # flush still works

    def test_frozen_clock_pins_tick(self):
        clock = FrozenClock(7)
        assert clock.now() == 7
        assert clock.now() == 7


class TestIngestStats:
    def test_empty_percentiles_are_none(self):
        stats = IngestStats()
        assert stats.drain_p50 is None
        assert stats.drain_p99 is None

    def test_reservoir_stays_bounded(self):
        stats = IngestStats()
        for index in range(4 * IngestStats.RESERVOIR_CAP):
            stats.record_drain(index * 1e-6)
        assert stats.drained == 4 * IngestStats.RESERVOIR_CAP
        assert len(stats._latencies) <= IngestStats.RESERVOIR_CAP
        assert stats.drain_p50 is not None
        assert stats.drain_p99 >= stats.drain_p50

    def test_depth_high_water_mark(self):
        stats = IngestStats()
        for depth in (1, 5, 3):
            stats.record_depth(depth)
        assert stats.max_queue_depth == 5
        assert "5" in stats.describe()


# --- Manager integration ------------------------------------------------------


class TestAsyncManager:
    def test_async_matches_inline_end_to_end(self):
        arms = {}
        for mode in ("inline", "async"):
            dfs = seeded_dfs()
            with fresh_restore(dfs, heuristic=None, ingest=mode) as manager:
                manager.submit(compile_query(Q1_TEXT, "q1", dfs))
                manager.flush()
                entries = len(manager.repository)
                manager.submit(compile_query(Q2_TEXT, "q2", dfs))
                manager.flush()
                arms[mode] = (entries, manager.last_report.num_rewrites,
                              len(manager.repository),
                              dfs.read_lines("/out/L3_out"))
        assert arms["async"] == arms["inline"]

    def test_async_submit_returns_before_registration(self):
        dfs = seeded_dfs()
        with fresh_restore(dfs, heuristic=None, ingest="async") as manager:
            manager._ingest.registrar.pause()
            manager.submit(compile_query(Q1_TEXT, "q1", dfs))
            # The jobs ran, but registration is still queued.
            assert dfs.read_lines("/out/L2_out")
            assert len(manager.repository) == 0
            manager._ingest.registrar.resume()
            manager.flush()
            assert len(manager.repository) >= 1
            assert manager.last_report.ingest.applied >= 1

    def test_reject_policy_reports_and_discards(self):
        dfs = seeded_dfs()
        with fresh_restore(dfs, heuristic=AggressiveHeuristic(),
                           ingest="async", ingest_queue_size=1,
                           ingest_policy="reject") as manager:
            manager._ingest.registrar.pause()
            manager.submit(compile_query(Q1_TEXT, "q1", dfs))
            stats = manager.last_report.ingest
            assert stats.rejected >= 1
            assert manager.last_report.rejected_candidates
            manager._ingest.registrar.resume()
            manager.flush()
            # Nothing leaks: every surviving materialized file belongs to
            # a registered entry; the rejected ones were deleted by the
            # submit-end record.
            kept = {entry.output_path for entry in manager.repository.scan()}
            assert set(dfs.list_files(manager._mat_prefix)) <= kept

    def test_coalesce_policy_matches_inline_outcome(self):
        inline_dfs = seeded_dfs()
        with fresh_restore(inline_dfs, heuristic=AggressiveHeuristic(),
                           enable_rewrite=False) as inline:
            inline.submit(compile_query(Q1_TEXT, "q1", inline_dfs))
            inline.submit(compile_query(Q1_TEXT, "q2", inline_dfs))
            inline_state = {(e.fingerprint, e.origin)
                            for e in inline.repository.scan()}

        dfs = seeded_dfs()
        with fresh_restore(dfs, heuristic=AggressiveHeuristic(),
                           enable_rewrite=False, ingest="async",
                           ingest_policy="coalesce") as manager:
            manager._ingest.registrar.pause()
            manager.submit(compile_query(Q1_TEXT, "q1", dfs))
            manager.submit(compile_query(Q1_TEXT, "q2", dfs))
            stats = manager.last_report.ingest
            assert stats.coalesced >= 1  # the twin submit was absorbed
            manager._ingest.registrar.resume()
            manager.flush()
            # Absorbed records follow the survivor's outcome: the end
            # state equals the inline manager's (where the duplicates
            # were individually deduplicated by find_equivalent).
            assert {(e.fingerprint, e.origin)
                    for e in manager.repository.scan()} == inline_state
            assert stats.applied == stats.enqueued + stats.coalesced
            # Absorbed duplicates' materialized files were discarded.
            kept = {entry.output_path for entry in manager.repository.scan()}
            assert set(dfs.list_files(manager._mat_prefix)) <= kept

    def test_within_batch_duplicates_skip_find_equivalent(self):
        dfs = seeded_dfs()
        with fresh_restore(dfs, heuristic=None, ingest="async") as manager:
            plan, frontier = _compiled_frontier(dfs)
            report = ReStoreReport("manual")
            first = _manual_record(plan, frontier, "/stored/a", report)
            twin = _manual_record(plan, frontier, "/stored/b", report)
            calls = []
            original = manager.repository.find_equivalent
            manager.repository.find_equivalent = \
                lambda probe: calls.append(1) or original(probe)
            manager._ingest.registrar.pause()
            manager._ingest.submit(first)
            manager._ingest.submit(twin)
            manager._ingest.registrar.resume()
            manager.flush()
            stats = manager._ingest.stats
            # One batch; the twin hit the batch context, so only the
            # first record paid the equivalence probe — with the same
            # outcome find_equivalent would have reached.
            assert stats.batches == 1
            assert stats.applied == 2
            assert len(calls) == 1
            assert len(manager.repository) == 1
            [entry] = manager.repository.scan()
            assert entry.output_path == "/stored/a"

    def test_batch_context_agrees_with_find_equivalent(self):
        # The direct-apply twin of the test above: with no batch context
        # the duplicate goes through find_equivalent and must reach the
        # identical decision.
        dfs = seeded_dfs()
        with fresh_restore(dfs, heuristic=None) as manager:
            plan, frontier = _compiled_frontier(dfs)
            report = ReStoreReport("manual")
            manager.apply_register(
                _manual_record(plan, frontier, "/stored/a", report), None)
            manager.apply_register(
                _manual_record(plan, frontier, "/stored/b", report), None)
            assert len(manager.repository) == 1
            [entry] = manager.repository.scan()
            assert entry.output_path == "/stored/a"
            assert len(report.registered_entries) == 1

    def test_close_drains_pending_registrations(self):
        dfs = seeded_dfs()
        manager = fresh_restore(dfs, heuristic=None, ingest="async")
        manager._ingest.registrar.pause()
        manager.submit(compile_query(Q1_TEXT, "q1", dfs))
        assert len(manager.repository) == 0
        manager._ingest.registrar.resume()
        manager.close()  # no explicit flush: close itself must drain
        assert len(manager.repository) >= 1
        assert not manager._ingest.registrar.alive
        manager.close()  # idempotent

    def test_registrar_error_surfaces_on_flush(self):
        dfs = seeded_dfs()
        manager = fresh_restore(dfs, heuristic=None, ingest="async")
        boom = RuntimeError("apply exploded")

        def explode(record, batch):
            raise boom

        manager.apply_register = explode
        manager.submit(compile_query(Q1_TEXT, "q1", dfs))
        with pytest.raises(RuntimeError, match="apply exploded"):
            manager.flush()
        manager.close()  # error already consumed; close still succeeds


# --- Faults -------------------------------------------------------------------


#: structurally novel (its projection appears nowhere in Q1/Q2), so its
#: registration is a guaranteed *insert* — and its only load is
#: page_views, so it lands on a shard the earlier submits both spawned
#: and the recovery probe consults again.
Q1V_TEXT = """
A = load '/data/page_views' as (user:chararray, timestamp:int,
    est_revenue:double, page_info:chararray, page_links:chararray);
B = foreach A generate user, timestamp, est_revenue;
store B into '/out/V_out';
"""


class TestIngestFaults:
    def test_worker_killed_mid_batch_loses_nothing(self):
        """Kill shard workers as the registrar's grouped ``apply``
        messages reach them: the flush keeps the mutation buffers, the
        next probe respawns and re-seeds, and decisions stay identical
        to an inline manager on the serial executor."""
        def drive(manager, dfs, fault=False):
            manager.submit(compile_query(Q1_TEXT, "q1", dfs))
            manager.flush()
            manager.submit(compile_query(Q2_TEXT, "q2", dfs))
            manager.flush()
            # Registrations only (no probe traffic): every IPC message
            # from here until the re-enable is a registrar-batch apply.
            manager.enable_rewrite = False
            if fault:
                pool = manager.repository.worker_pool
                assert pool._workers  # the probes above spawned workers
                schedule = FaultSchedule(
                    [(shard_id, 1) for shard_id in pool._workers],
                    pool=pool)
                with schedule:
                    registrar = manager._ingest.registrar
                    registrar.pause()
                    manager.submit(compile_query(Q1V_TEXT, "q3", dfs))
                    registrar.resume()
                    manager.flush()  # mid-batch kill: must not raise
                assert schedule.killed
                assert all(op == "apply" for *_, op in schedule.killed)
            else:
                manager.submit(compile_query(Q1V_TEXT, "q3", dfs))
                manager.flush()
            manager.enable_rewrite = True
            # The recovery probe: q4 must reuse the repository exactly
            # as the fault-free twin does.
            manager.submit(compile_query(Q2_TEXT, "q4", dfs))
            manager.flush()
            return (manager.last_report.num_rewrites,
                    len(manager.repository),
                    sorted(entry.output_path.replace(manager._mat_prefix,
                                                     "/MAT")
                           for entry in manager.repository.scan()),
                    dfs.read_lines("/out/L3_out"))

        twin_dfs = seeded_dfs()
        with fresh_restore(
                twin_dfs, heuristic=AggressiveHeuristic(),
                repository=ShardedRepository(num_shards=2,
                                             executor="serial")) as twin:
            expected = drive(twin, twin_dfs)

        dfs = seeded_dfs()
        with fresh_restore(
                dfs, heuristic=AggressiveHeuristic(), ingest="async",
                repository=ShardedRepository(
                    num_shards=2, executor="processes")) as manager:
            observed = drive(manager, dfs, fault=True)
            assert manager.repository.worker_pool.recoveries >= 1
        assert observed == expected

    def test_crash_between_enqueue_and_drain_replays_exactly(self):
        """A crash while registrations sit in the queue must find the
        durable state exactly as the last checkpoint left it — an
        un-drained queue writes nothing — and draining then
        checkpointing must replay bit-identically."""
        dfs = seeded_dfs()
        log = RepositoryLog(dfs)
        manager = fresh_restore(dfs, heuristic=AggressiveHeuristic(),
                                ingest="async", persistence=log)
        try:
            manager.submit(compile_query(Q1_TEXT, "q1", dfs))
            manager.flush()  # checkpoint_every=1: q1 is durable
            assert log.pending_records == 0
            checkpointed = _entry_state(load_repository(dfs))
            assert checkpointed == _entry_state(manager.repository)

            manager.enable_rewrite = False  # no submit-thread use-stamps
            manager._ingest.registrar.pause()
            manager.submit(compile_query(Q2_TEXT, "q2", dfs))
            # Enqueued but not drained: no dangling durable records.
            assert log.pending_records == 0
            assert _entry_state(load_repository(dfs)) == checkpointed

            manager._ingest.registrar.resume()
            manager.flush()
            # Drained + checkpointed: replay is exact, including q2.
            assert len(manager.repository) > len(checkpointed)
            assert _entry_state(load_repository(dfs)) == \
                _entry_state(manager.repository)
        finally:
            manager.close()


class TestExceptionPaths:
    """PR 9 regressions: the registrar's BaseException narrowing and the
    rejected-registration lock (both found by repro.tools.statlint)."""

    def test_keyboard_interrupt_propagates_out_of_flush(self):
        # An interrupt raised while applying a record must not be
        # captured into the poison slot and forgotten: it terminates the
        # registrar thread AND re-raises on the caller's flush().
        queue = IngestQueue()

        class _Interrupt:
            coalescable = False
            is_barrier = False

            def apply(self, sink, batch):
                raise KeyboardInterrupt

        registrar = Registrar(queue, object(), threading.RLock())
        queue.put_control(_Interrupt())
        with pytest.raises(KeyboardInterrupt):
            registrar.flush()
        registrar._thread.join(timeout=5.0)
        assert not registrar.alive
        registrar.close()  # idempotent; the error was already consumed

    def test_registration_rejected_serializes_on_ingest_lock(self):
        # registration_rejected runs on the submit thread while the
        # registrar may be appending to the same report under the ingest
        # lock; the submit side must take that lock, not race the list.
        manager = fresh_restore(seeded_dfs())
        try:
            class _Report:
                def __init__(self):
                    self.rejected_candidates = []

            class _Record:
                output_path = "/restore/tmp-rejected"
                owns_file = True

                def __init__(self):
                    self.report = _Report()

            record = _Record()
            entered = threading.Event()
            done = threading.Event()

            def reject():
                entered.set()
                manager.registration_rejected(record)
                done.set()

            with manager._ingest.lock:
                worker = threading.Thread(target=reject, daemon=True)
                worker.start()
                assert entered.wait(5.0)
                assert not done.wait(0.2)  # blocked on the ingest lock
            assert done.wait(5.0)
            worker.join(5.0)
            assert record.report.rejected_candidates == [record.output_path]
            assert record.output_path in manager._discard_paths
        finally:
            manager.close()
