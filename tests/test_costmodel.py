"""Unit tests for the Equation 1/2 cost model and the cluster config."""

import pytest

from repro.common.errors import ExecutionError
from repro.common.units import GB, MB
from repro.mapreduce import ClusterConfig, CostModel, CostModelConfig, JobStats
from repro.mapreduce.costmodel import CostBreakdown


def stats_with(map_input=0, shuffle=0, reducers=0, map_store=0, reduce_store=0,
               charges=()):
    stats = JobStats("test")
    stats.map_input_bytes = map_input
    stats.map_output_bytes = shuffle
    stats.num_reducers = reducers
    stats.map_store_bytes = map_store
    stats.reduce_store_bytes = reduce_store
    if map_store:
        stats.num_map_side_stores = 1
    if reduce_store:
        stats.num_reduce_side_stores = 1
    for kind, stage, records, nbytes in charges:
        stats.charge_op(kind, stage, records, nbytes)
    return stats


class TestClusterConfig:
    def test_paper_topology_defaults(self):
        cluster = ClusterConfig()
        assert cluster.num_workers == 14
        assert cluster.map_capacity == 56
        assert cluster.reduce_capacity == 28

    def test_rejects_bad_values(self):
        with pytest.raises(ExecutionError):
            ClusterConfig(num_workers=0)
        with pytest.raises(ExecutionError):
            ClusterConfig(map_slots_per_worker=0)


class TestEquation2:
    def test_breakdown_components_sum(self):
        breakdown = CostBreakdown(1, 2, 3, 4, 5, 10, 2)
        assert breakdown.total == 15

    def test_map_only_job_has_no_sort(self):
        model = CostModel()
        breakdown = model.job_time(stats_with(map_input=100 * MB))
        assert breakdown.t_sort == 0
        assert breakdown.t_load > 0

    def test_load_time_linear_in_input(self):
        model = CostModel()
        small = model.job_time(stats_with(map_input=100 * GB)).t_load
        large = model.job_time(stats_with(map_input=200 * GB)).t_load
        assert large == pytest.approx(2 * small)

    def test_scale_multiplies_bytes(self):
        config = CostModelConfig(scale=10.0)
        scaled = CostModel(config).job_time(stats_with(map_input=10 * GB))
        plain = CostModel(CostModelConfig()).job_time(stats_with(map_input=100 * GB))
        assert scaled.t_load == pytest.approx(plain.t_load)

    def test_store_cost_includes_replication(self):
        replicated = CostModel(CostModelConfig(replication=3))
        single = CostModel(CostModelConfig(replication=1))
        stats = stats_with(reduce_store=10 * GB, reducers=10)
        t3 = replicated.job_time(stats).t_store
        t1 = single.job_time(stats).t_store
        # Fixed per-store overhead aside, the byte term scales 3x.
        fixed = replicated.config.store_file_overhead_sec
        assert (t3 - fixed) == pytest.approx(3 * (t1 - fixed))

    def test_few_reducers_slow_the_store(self):
        model = CostModel()
        few = model.job_time(stats_with(reduce_store=10 * GB, reducers=2))
        many = model.job_time(stats_with(reduce_store=10 * GB, reducers=28))
        assert few.t_store > many.t_store

    def test_op_charges_priced_by_kind(self):
        # Same bytes, same concurrency: the expensive operator costs more.
        model = CostModel()
        join = model.job_time(stats_with(
            map_input=100 * GB,
            charges=[("join", "map", 1000, 1 * GB)]))
        union = model.job_time(stats_with(
            map_input=100 * GB,
            charges=[("union", "map", 1000, 1 * GB)]))
        assert join.t_ops > union.t_ops

    def test_startup_grows_with_waves(self):
        model = CostModel()
        one_wave = model.job_time(stats_with(map_input=1 * GB))
        many_waves = model.job_time(stats_with(map_input=500 * GB))
        assert many_waves.t_startup > one_wave.t_startup
        assert many_waves.num_map_tasks > one_wave.num_map_tasks

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ExecutionError):
            CostModelConfig(scale=0)

    def test_with_scale_preserves_other_knobs(self):
        config = CostModelConfig(read_bytes_per_sec=99, replication=2)
        clone = config.with_scale(7.5)
        assert clone.scale == 7.5
        assert clone.read_bytes_per_sec == 99
        assert clone.replication == 2


class TestReducerChoice:
    def test_parallel_hint_wins(self):
        model = CostModel()
        assert model.choose_num_reducers(100 * GB, parallel=40) == 28  # capped
        assert model.choose_num_reducers(100 * GB, parallel=5) == 5

    def test_sized_by_shuffle_volume(self):
        model = CostModel()
        assert model.choose_num_reducers(0) == 1
        assert model.choose_num_reducers(10 * GB) > 1

    def test_capped_at_cluster_capacity(self):
        model = CostModel()
        assert model.choose_num_reducers(10_000 * GB) == 28

    def test_scale_affects_choice(self):
        scaled = CostModel(CostModelConfig(scale=1000.0))
        plain = CostModel()
        assert scaled.choose_num_reducers(1 * GB) > plain.choose_num_reducers(1 * GB)


class TestLoadEstimate:
    def test_monotone_in_bytes(self):
        model = CostModel()
        assert model.estimate_load_time(10 * GB) < model.estimate_load_time(100 * GB)

    def test_has_startup_floor(self):
        model = CostModel()
        assert model.estimate_load_time(0) >= model.config.job_startup_sec


class TestSubplanEstimate:
    def test_more_operators_cost_more(self):
        model = CostModel()
        base = model.estimate_subplan_time(["filter"], 100 * MB)
        longer = model.estimate_subplan_time(["filter", "foreach"], 100 * MB)
        assert longer > base

    def test_blocking_operators_charge_shuffle(self):
        model = CostModel()
        mapside = model.estimate_subplan_time(["foreach"], 100 * MB)
        blocking = model.estimate_subplan_time(["group"], 100 * MB)
        # group's CPU rate is lower AND it pays spill+merge shuffle.
        assert blocking > mapside

    def test_loads_stores_and_splits_are_not_double_charged(self):
        model = CostModel()
        bare = model.estimate_subplan_time(["filter"], 100 * MB)
        padded = model.estimate_subplan_time(
            ["load", "split", "filter", "store"], 100 * MB)
        assert padded == pytest.approx(bare)

    def test_empty_subplan_is_just_the_load(self):
        model = CostModel()
        assert model.estimate_subplan_time([], 100 * MB) == \
            pytest.approx(model.estimate_load_time(100 * MB))

    def test_scale_applies(self):
        small = CostModel(CostModelConfig(scale=1.0))
        scaled = CostModel(CostModelConfig(scale=100.0))
        assert scaled.estimate_subplan_time(["filter"], 100 * MB) > \
            small.estimate_subplan_time(["filter"], 100 * MB)


class TestJobStatsMerge:
    def test_merge_accumulates(self):
        a = stats_with(map_input=100, shuffle=10,
                       charges=[("join", "reduce", 5, 50)])
        b = stats_with(map_input=200, shuffle=20,
                       charges=[("join", "reduce", 7, 70)])
        a.merge(b)
        assert a.map_input_bytes == 300
        assert a.map_output_bytes == 30
        assert a.op_charges[("join", "reduce")] == [12, 120]

    def test_summary_mentions_key_counters(self):
        stats = stats_with(map_input=100)
        assert "in=100B" in stats.summary()
