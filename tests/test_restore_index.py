"""Unit tests for the repository index structures (PR 1).

Fingerprints, leaf-load keys, and the inverted index are what make the
repository's scan/insert/match paths sublinear; these tests pin their
local contracts (the global equivalence claim lives in
``tests/test_property_restore.py``).
"""

import pytest

from repro.logical import build_logical_plan
from repro.physical import logical_to_physical
from repro.physical.operators import POStore
from repro.physical.plan import PhysicalPlan
from repro.piglatin import parse_query
from repro.restore import Repository, RepositoryEntry
from repro.restore.index import (
    leaf_loads,
    LoadIndex,
    parse_load_signature,
    plan_fingerprint,
)
from repro.restore.persistence import plan_from_json, plan_to_json, SkeletonOp
from repro.restore.stats import EntryStats


def plan_of(text):
    return logical_to_physical(build_logical_plan(parse_query(text)))


BASE = """
A = load '/data/t' as (k:chararray, a:int, b:int);
B = filter A by a > 10;
store B into '/stored/x';
"""

TWO_LOADS = """
A = load '/data/t' as (k:chararray, a:int, b:int);
B = load '/data/u' as (k:chararray, a:int, b:int);
C = join A by k, B by k;
store C into '/stored/j';
"""


def entry(text, output="/stored/x"):
    return RepositoryEntry(plan_of(text), output, EntryStats(1000, 100, 60.0))


class TestParseLoadSignature:
    def test_roundtrip(self):
        assert parse_load_signature("LOAD[/data/t@v3]") == ("/data/t", 3)

    def test_path_containing_at_v(self):
        # rpartition keeps everything before the *last* "@v" as the path.
        assert parse_load_signature("LOAD[/data/x@v1/y@v2]") == ("/data/x@v1/y", 2)

    def test_rejects_foreign_signatures(self):
        assert parse_load_signature("FILTER[a>10]") is None
        assert parse_load_signature("LOAD[/data/t]") is None
        assert parse_load_signature("LOAD[/data/t@vNaN]") is None


class TestLeafLoads:
    def test_real_plan(self):
        assert leaf_loads(plan_of(BASE)) == frozenset({("/data/t", 0)})
        assert leaf_loads(plan_of(TWO_LOADS)) == frozenset(
            {("/data/t", 0), ("/data/u", 0)})

    def test_skeleton_plan_parses_signatures(self):
        skeleton = plan_from_json(plan_to_json(plan_of(TWO_LOADS)))
        assert leaf_loads(skeleton) == leaf_loads(plan_of(TWO_LOADS))

    def test_unkeyable_load_returns_none(self):
        weird = SkeletonOp("load", "LOAD-THING-WITHOUT-KEY", None, [])
        inner = SkeletonOp("filter", "FILTER[x]", None, [weird])
        plan = PhysicalPlan([POStore(inner, "/stored/w")])
        assert leaf_loads(plan) is None


class TestPlanFingerprint:
    def test_stable_and_store_path_independent(self):
        assert plan_fingerprint(plan_of(BASE)) == plan_fingerprint(
            plan_of(BASE.replace("/stored/x", "/stored/elsewhere")))

    def test_distinguishes_structure(self):
        other = BASE.replace("a > 10", "a > 11")
        assert plan_fingerprint(plan_of(BASE)) != plan_fingerprint(plan_of(other))

    def test_distinguishes_load_versions(self):
        versioned = plan_of(BASE)
        for op in versioned.loads():
            op.version = 9
        assert plan_fingerprint(versioned) != plan_fingerprint(plan_of(BASE))

    def test_survives_persistence(self):
        plan = plan_of(TWO_LOADS)
        assert plan_fingerprint(plan_from_json(plan_to_json(plan))) == \
            plan_fingerprint(plan)

    def test_requires_single_store(self):
        plan = plan_of(BASE)
        plan.add_sink(POStore(plan.stores()[0].inputs[0], "/stored/extra"))
        with pytest.raises(ValueError):
            plan_fingerprint(plan)


class TestLoadIndex:
    def test_candidates_are_subset_filtered(self):
        index = LoadIndex()
        single = entry(BASE)
        double = entry(TWO_LOADS, output="/stored/j")
        index.add(single)
        index.add(double)
        both = frozenset({("/data/t", 0), ("/data/u", 0)})
        assert index.candidate_ids(both) == {single.entry_id, double.entry_id}
        assert index.candidate_ids(frozenset({("/data/t", 0)})) == \
            {single.entry_id}
        assert index.candidate_ids(frozenset({("/data/v", 0)})) == set()
        assert index.candidate_ids(None) is None

    def test_superset_ids(self):
        index = LoadIndex()
        single = entry(BASE)
        double = entry(TWO_LOADS, output="/stored/j")
        index.add(single)
        index.add(double)
        assert index.superset_ids(frozenset({("/data/t", 0)})) == \
            {single.entry_id, double.entry_id}
        assert index.superset_ids(frozenset({("/data/u", 0)})) == \
            {double.entry_id}

    def test_discard_cleans_postings(self):
        index = LoadIndex()
        stored = entry(BASE)
        index.add(stored)
        index.discard(stored)
        assert index.candidate_ids(frozenset({("/data/t", 0)})) == set()
        assert index._postings == {}
        assert index._loads == {}

    def test_unkeyable_entries_are_always_candidates(self):
        weird_load = SkeletonOp("load", "LOAD-WITHOUT-KEY", None, [])
        inner = SkeletonOp("filter", "FILTER[x]", None, [weird_load])
        plan = PhysicalPlan([POStore(inner, "/stored/w")])
        unkeyable = RepositoryEntry(plan, "/stored/w", EntryStats(10, 1, 1.0))
        index = LoadIndex()
        index.add(unkeyable)
        assert index.candidate_ids(frozenset({("/data/t", 0)})) == \
            {unkeyable.entry_id}
        assert unkeyable.entry_id in index.superset_ids(
            frozenset({("/data/t", 0)}))


class TestRepositoryIndexIntegration:
    def test_insert_after_remove_matches_full_reorder(self):
        # After a removal the stored order is no longer the greedy order
        # of the remaining set, so the next insert must take the full
        # recompute path (the splice fast path would be wrong).
        repo = Repository()
        blocked = entry(BASE, output="/stored/low")
        blocked.stats.producing_job_time = 1.0
        first = repo.insert(blocked)
        second = repo.insert(entry(TWO_LOADS, output="/stored/j"))
        repo.remove(second)
        third = repo.insert(entry(BASE.replace("a > 10", "a > 12"),
                                  output="/stored/new"))
        assert set(repo.scan()) == {first, third}

    def test_find_equivalent_degenerate_probe_matches_seed(self):
        # A probe without a single match frontier must behave like the
        # seed's literal scan: an empty repository answers None rather
        # than raising from the fingerprint path.
        from repro.restore import LinearScanRepository
        plan = plan_of(BASE)
        plan.add_sink(POStore(plan.stores()[0].inputs[0], "/stored/extra"))
        assert Repository().find_equivalent(plan) is None
        assert LinearScanRepository().find_equivalent(plan) is None

    def test_find_equivalent_prefers_scan_order_among_duplicates(self):
        repo = Repository()
        slow = entry(BASE, output="/stored/slow")
        slow.stats.producing_job_time = 1.0
        fast = entry(BASE, output="/stored/fast")
        fast.stats.producing_job_time = 99.0
        repo.insert(slow)
        repo.insert(fast)
        found = repo.find_equivalent(plan_of(BASE))
        assert found is repo.scan()[0]
        assert found is fast  # longer producing time scans first
