"""Docs hygiene: intra-repo links resolve and the examples compile.

The CI ``docs`` job runs the same checks standalone
(``python -m repro.tools.doccheck`` + ``compileall``); running them in
tier-1 too means a broken README link fails locally before it reaches
CI.
"""

import os
import py_compile

from repro.tools.doccheck import (check_file, find_orphans,
                                  iter_markdown_files, link_targets, main)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_TARGETS = ["README.md", "docs", "ROADMAP.md", "CHANGES.md"]


def _repo_path(*parts):
    return os.path.join(REPO_ROOT, *parts)


class TestRepoDocs:
    def test_expected_docs_exist(self):
        assert os.path.exists(_repo_path("README.md"))
        assert os.path.exists(_repo_path("docs", "ARCHITECTURE.md"))
        assert os.path.exists(_repo_path("docs", "PERSISTENCE.md"))
        assert os.path.exists(_repo_path("docs", "ANALYSIS.md"))

    def test_no_broken_intra_repo_links(self):
        problems = []
        for path in iter_markdown_files([_repo_path(t) for t in DOC_TARGETS]):
            problems.extend((path, line, target)
                            for line, target in check_file(path))
        assert problems == []

    def test_doccheck_cli_passes_on_repo(self, capsys):
        assert main([_repo_path(t) for t in DOC_TARGETS]) == 0
        assert "ok" in capsys.readouterr().out

    def test_no_orphaned_docs(self):
        # Every reference doc under docs/ must be reachable from the
        # scanned entry points (README, ROADMAP, the docs themselves).
        referenced = set()
        for path in iter_markdown_files([_repo_path(t) for t in DOC_TARGETS]):
            referenced |= link_targets(path)
        assert find_orphans(_repo_path("docs"), referenced) == []

    def test_readme_covers_required_sections(self):
        with open(_repo_path("README.md"), encoding="utf-8") as handle:
            readme = handle.read()
        # The pieces the README must keep: quickstart, verify command,
        # package map, and the benchmark-figure index.
        assert "examples/quickstart.py" in readme
        assert "python -m pytest -x -q" in readme
        for package in ("piglatin", "logical", "mrcompiler", "mapreduce",
                        "restore"):
            assert package in readme
        for figure in range(9, 18):
            assert f"bench_fig{figure:02d}" in readme

    def test_architecture_covers_required_topics(self):
        with open(_repo_path("docs", "ARCHITECTURE.md"),
                  encoding="utf-8") as handle:
            text = handle.read()
        for topic in ("lifecycle", "fingerprint", "shard", "manifest",
                      "segment", "dirty"):
            assert topic in text.lower()

    def test_persistence_reference_covers_required_topics(self):
        """docs/PERSISTENCE.md is the registered durable-format
        reference: it must keep the lineage, grammar, watermark, and
        crash-ordering material the loaders/writers implement."""
        with open(_repo_path("docs", "PERSISTENCE.md"),
                  encoding="utf-8") as handle:
            text = handle.read()
        for topic in ("restore-manifest", "base_seq", "last_seq",
                      "watermark", "section", "segment", "torn", "stale",
                      "dangling", "walkthrough", "snapshot-before-",
                      "migration"):
            assert topic in text.lower(), topic
        for version in ("v1", "v2", "v3", "v4", "v5"):
            assert version in text

    def test_analysis_reference_covers_required_topics(self):
        """docs/ANALYSIS.md is the statlint reference: rule catalog,
        annotation conventions, suppression grammar, baseline flow."""
        with open(_repo_path("docs", "ANALYSIS.md"),
                  encoding="utf-8") as handle:
            text = handle.read()
        for topic in ("lock-discipline", "lock-ordering", "fork-safety",
                      "crash-ordering", "exception-hygiene",
                      "suppression-hygiene", "guarded_by",
                      "process-entrypoint", "baseline", "--fail-on-new",
                      "justification", "limitations"):
            assert topic in text.lower(), topic


class TestDoccheckTool:
    def test_detects_broken_link(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("see [missing](does/not/exist.md) here\n",
                       encoding="utf-8")
        broken = check_file(str(doc))
        assert broken == [(1, "does/not/exist.md")]
        assert main([str(doc)]) == 1

    def test_skips_external_and_anchor_links(self, tmp_path):
        doc = tmp_path / "ok.md"
        doc.write_text(
            "[web](https://example.com) [mail](mailto:a@b.c) "
            "[anchor](#section)\n",
            encoding="utf-8")
        assert check_file(str(doc)) == []

    def test_anchor_suffix_on_relative_link_ignored(self, tmp_path):
        (tmp_path / "other.md").write_text("# t\n", encoding="utf-8")
        doc = tmp_path / "doc.md"
        doc.write_text("[t](other.md#t) [bad](gone.md#t)\n", encoding="utf-8")
        assert check_file(str(doc)) == [(1, "gone.md#t")]

    def test_directory_scan_recurses(self, tmp_path):
        nested = tmp_path / "sub"
        nested.mkdir()
        (nested / "deep.md").write_text("[x](nope.md)\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 1

    def test_missing_argument_file_fails(self):
        assert main(["/no/such/file.md"]) == 1

    def test_no_arguments_is_usage_error(self):
        assert main([]) == 2

    def test_orphan_detected(self, tmp_path, capsys):
        (tmp_path / "index.md").write_text("[a](linked.md)\n",
                                           encoding="utf-8")
        (tmp_path / "linked.md").write_text("[back](index.md)\n",
                                            encoding="utf-8")
        (tmp_path / "floating.md").write_text("# floating\n",
                                              encoding="utf-8")
        assert main([str(tmp_path), "--orphans", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "floating.md" in err and "orphaned" in err
        assert "linked.md" not in err

    def test_fully_linked_directory_has_no_orphans(self, tmp_path):
        (tmp_path / "index.md").write_text("[a](linked.md)\n",
                                           encoding="utf-8")
        (tmp_path / "linked.md").write_text("[back](index.md)\n",
                                            encoding="utf-8")
        assert main([str(tmp_path), "--orphans", str(tmp_path)]) == 0

    def test_orphans_needs_a_directory_argument(self):
        assert main(["--orphans"]) == 2

    def test_orphans_missing_directory_fails(self, tmp_path):
        (tmp_path / "a.md").write_text("# a\n", encoding="utf-8")
        assert main([str(tmp_path), "--orphans",
                     str(tmp_path / "nope")]) == 1


class TestExamplesCompile:
    def test_examples_compile(self, tmp_path):
        """Every example must byte-compile — the CI docs job runs
        `python -m compileall examples/` so documented examples cannot
        rot silently. Compiled files go to a temp dir to keep the
        working tree clean."""
        for name in sorted(os.listdir(_repo_path("examples"))):
            if name.endswith(".py"):
                py_compile.compile(_repo_path("examples", name),
                                   cfile=str(tmp_path / (name + "c")),
                                   doraise=True)

    def test_examples_have_main(self):
        for name in os.listdir(_repo_path("examples")):
            if name.endswith(".py"):
                with open(_repo_path("examples", name),
                          encoding="utf-8") as handle:
                    assert "def main():" in handle.read(), name
