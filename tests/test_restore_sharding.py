"""Unit tests for the sharded repository (layout, fan-out, executors,
the worker-process service, per-shard statistics, and the manager
integration)."""

import pytest

from repro import PigSystem
from repro.common.errors import RepositoryError
from repro.physical.operators import POLoad, POStore
from repro.physical.plan import PhysicalPlan
from repro.restore import (
    Repository,
    RepositoryEntry,
    RepositoryLog,
    RepositoryService,
    ShardedRepository,
    ShardWorkerPool,
)
from repro.restore.persistence import entry_to_json, SkeletonOp
from repro.restore.service import ShardWorkerState
from repro.restore.sharding import (
    CATCHALL_SHARD,
    SerialExecutor,
    shard_index_for_key,
    ThreadPoolProbeExecutor,
)
from repro.restore.stats import EntryStats

from tests.faultinject import FaultSchedule, install_hang_guard
from tests.helpers import (
    make_dfs,
    Q1_TEXT,
    Q2_TEXT,
    seed_page_views,
    seed_users,
)


@pytest.fixture(autouse=True)
def _hang_guard():
    # Worker/IPC tests that lose a queue message hang forever; turn a
    # hang into a stack dump + hard failure instead of a stuck CI job.
    cancel = install_hang_guard()
    yield
    cancel()


def _chain_plan(index, path, extra_op=None):
    """Load -> Filter [-> ForEach] -> Store skeleton plan (cheap fixture)."""
    load = POLoad(path, None, 0)
    chain = SkeletonOp("filter", f"FILTER[a>{index}]", None, [load])
    if extra_op is not None:
        chain = SkeletonOp("foreach", f"FOREACH[{extra_op}]", None, [chain])
    return PhysicalPlan([POStore(chain, f"/stored/s{index}")])


def _entry(index, path="/data/d0"):
    stats = EntryStats(input_bytes=1000 + index, output_bytes=10 + index,
                       producing_job_time=1.0 + index)
    return RepositoryEntry(_chain_plan(index, path), f"/stored/s{index}", stats)


def _unkeyable_entry(index):
    """An entry whose leaf Load cannot be keyed (foreign signature)."""
    load = SkeletonOp("load", f"FOREIGN[{index}]", None, [])
    chain = SkeletonOp("filter", f"FILTER[u>{index}]", None, [load])
    plan = PhysicalPlan([POStore(chain, f"/stored/u{index}")])
    stats = EntryStats(1000, 10, 1.0)
    return RepositoryEntry(plan, f"/stored/u{index}", stats)


def pigmix_system():
    system = PigSystem()
    seed_page_views(system.dfs)
    seed_users(system.dfs, include=range(6))
    return system


class TestShardLayout:
    def test_hash_is_stable_and_in_range(self):
        key = ("/data/page_views", 3)
        first = shard_index_for_key(key, 8)
        assert first == shard_index_for_key(key, 8)  # deterministic
        assert 0 <= first < 8
        assert shard_index_for_key(key, 1) == 0

    def test_every_entry_owned_by_exactly_one_shard(self):
        repo = ShardedRepository(num_shards=4)
        for index in range(20):
            repo.insert(_entry(index, path=f"/data/d{index % 6}"))
        occupancies = [len(shard) for shard in repo.partitions()]
        assert sum(occupancies) == len(repo) == 20
        # The same entry id never appears in two partitions.
        seen = set()
        for shard in repo.partitions():
            for entry in shard:
                assert entry.entry_id not in seen
                seen.add(entry.entry_id)

    def test_layout_reproducible_across_instances(self):
        a, b = ShardedRepository(8), ShardedRepository(8)
        for index in range(12):
            path = f"/data/d{index % 5}"
            a.insert(_entry(index, path))
            b.insert(_entry(index, path))
        layout_a = [[e.output_path for e in shard] for shard in a.partitions()]
        layout_b = [[e.output_path for e in shard] for shard in b.partitions()]
        assert layout_a == layout_b

    def test_unkeyable_entries_live_in_catchall(self):
        repo = ShardedRepository(num_shards=4)
        repo.insert(_unkeyable_entry(1))
        report = repo.shard_report()
        assert report[-1]["shard"] == CATCHALL_SHARD
        assert report[-1]["occupancy"] == 1
        assert all(row["occupancy"] == 0 for row in report[:-1])

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedRepository(num_shards=0)

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            ShardedRepository(num_shards=2, executor="bogus")


class TestFanOut:
    def test_probe_consults_only_owning_shards(self):
        repo = ShardedRepository(num_shards=8)
        for index in range(16):
            repo.insert(_entry(index, path=f"/data/d{index % 4}"))
        probe = _chain_plan(0, "/data/d0", extra_op="probe")
        before = {shard.shard_id: shard.stats.probes
                  for shard in repo.partitions()}
        repo.match_candidates(probe)
        probed = [shard.shard_id for shard in repo.partitions()
                  if shard.stats.probes > before[shard.shard_id]]
        # One load key -> at most one shard (catch-all is empty, skipped).
        assert len(probed) == 1
        assert probed[0] == shard_index_for_key(("/data/d0", 0), 8)

    def test_occupied_catchall_always_consulted(self):
        repo = ShardedRepository(num_shards=4)
        repo.insert(_entry(0, path="/data/d0"))
        unkeyable = _unkeyable_entry(1)
        repo.insert(unkeyable)
        probe = _chain_plan(0, "/data/d0", extra_op="probe")
        candidates = repo.match_candidates(probe)
        # The catch-all entry cannot be ruled out by the load filter, so
        # it must be among the candidates (exactly as the unsharded
        # repository treats unkeyable entries).
        assert unkeyable in candidates

    def test_candidates_match_unsharded_repository(self):
        plain = Repository()
        sharded = ShardedRepository(num_shards=8)
        for index in range(30):
            path = f"/data/d{index % 7}"
            plain.insert(_entry(index, path))
            sharded.insert(_entry(index, path))
        for key_index in range(7):
            probe = _chain_plan(1000 + key_index, f"/data/d{key_index}",
                                extra_op="probe")
            assert [e.output_path for e in sharded.match_candidates(probe)] \
                == [e.output_path for e in plain.match_candidates(probe)]

    def test_unkeyable_probe_falls_back_to_full_scan(self):
        repo = ShardedRepository(num_shards=4)
        for index in range(6):
            repo.insert(_entry(index, path=f"/data/d{index % 2}"))
        probe_load = SkeletonOp("load", "FOREIGN[p]", None, [])
        probe_chain = SkeletonOp("filter", "FILTER[p]", None, [probe_load])
        probe = PhysicalPlan([POStore(probe_chain, "/out/p")])
        assert repo.match_candidates(probe) == repo.scan()

    def test_removal_updates_shard(self):
        repo = ShardedRepository(num_shards=4)
        entries = [repo.insert(_entry(index, path=f"/data/d{index % 3}"))
                   for index in range(9)]
        repo.remove(entries[4])
        assert sum(len(shard) for shard in repo.partitions()) == 8
        probe = _chain_plan(4, f"/data/d{4 % 3}", extra_op="probe")
        assert entries[4] not in repo.match_candidates(probe)
        with pytest.raises(RepositoryError):
            repo.remove(entries[4])


class TestExecutors:
    def test_thread_pool_matches_serial(self):
        serial = ShardedRepository(num_shards=8, executor="serial")
        threaded = ShardedRepository(num_shards=8, executor="threads",
                                     max_workers=4)
        for index in range(40):
            path = f"/data/d{index % 5}"
            serial.insert(_entry(index, path))
            threaded.insert(_entry(index, path))
        # Multi-load probe: fans out to several shards through the pool.
        load_a = POLoad("/data/d0", None, 0)
        load_b = POLoad("/data/d1", None, 0)
        join = SkeletonOp("join", "JOIN[k]", None, [load_a, load_b])
        probe = PhysicalPlan([POStore(join, "/out/j")])
        assert [e.output_path for e in threaded.match_candidates(probe)] \
            == [e.output_path for e in serial.match_candidates(probe)]
        threaded.close()
        threaded.close()  # idempotent

    def test_custom_executor_object(self):
        calls = []

        class Recorder(SerialExecutor):
            def map(self, fn, items):
                calls.append(len(items))
                return super().map(fn, items)

        repo = ShardedRepository(num_shards=4, executor=Recorder())
        for index in range(8):
            repo.insert(_entry(index, path=f"/data/d{index % 4}"))
        probe = _chain_plan(0, "/data/d0", extra_op="probe")
        repo.match_candidates(probe)
        assert calls  # the pluggable executor actually ran the probes

    def test_thread_executor_single_shard_skips_pool(self):
        executor = ThreadPoolProbeExecutor()
        assert executor.map(lambda x: x + 1, [41]) == [42]
        assert executor._pool is None  # no pool spun up for one item
        executor.close()


def _twin_repositories(num_shards=4, count=20, paths=6):
    """A serial and a process-backed repository holding identical
    entries (same paths, same stats) — the lock-step fixture every
    worker-pool parity test drives."""
    serial = ShardedRepository(num_shards=num_shards, executor="serial")
    procs = ShardedRepository(num_shards=num_shards, executor="processes")
    for index in range(count):
        path = f"/data/d{index % paths}"
        serial.insert(_entry(index, path))
        procs.insert(_entry(index, path))
    return serial, procs


def _assert_probe_parity(serial, procs, paths=6, tag="probe"):
    """Probe every load key on both repositories and require identical
    candidate sequences (output paths, in order)."""
    for index in range(paths):
        probe = _chain_plan(1000 + index, f"/data/d{index}", extra_op=tag)
        assert [e.output_path for e in procs.match_candidates(probe)] \
            == [e.output_path for e in serial.match_candidates(probe)]


def _stats_by_shard(repository):
    return {shard.shard_id: (shard.stats.probes,
                             shard.stats.candidates_returned,
                             shard.stats.occupancy)
            for shard in repository.partitions()}


class TestWorkerProcesses:
    """The ``executor="processes"`` flavor: worker-process replicas
    behind the routing front-end (``repro.restore.service``)."""

    def test_worker_pool_matches_serial(self):
        serial, procs = _twin_repositories(num_shards=8, count=40, paths=5)
        try:
            # Multi-load probe: fans out to several workers at once.
            load_a = POLoad("/data/d0", None, 0)
            load_b = POLoad("/data/d1", None, 0)
            join = SkeletonOp("join", "JOIN[k]", None, [load_a, load_b])
            probe = PhysicalPlan([POStore(join, "/out/j")])
            assert [e.output_path for e in procs.match_candidates(probe)] \
                == [e.output_path for e in serial.match_candidates(probe)]
            _assert_probe_parity(serial, procs, paths=5)
            # The front-end credits per-shard statistics exactly as the
            # in-process probes would, so reports are executor-blind.
            assert _stats_by_shard(procs) == _stats_by_shard(serial)
            assert procs.worker_pool is not None
            assert "worker" in procs.worker_pool.describe()
        finally:
            procs.close()
            procs.close()  # idempotent
            serial.close()

    def test_removal_reaches_the_worker_replica(self):
        serial, procs = _twin_repositories(num_shards=4, count=12, paths=3)
        try:
            victim_path = procs.scan()[0].output_path
            for repo in (serial, procs):
                victim = next(e for e in repo.scan()
                              if e.output_path == victim_path)
                repo.remove(victim)
            _assert_probe_parity(serial, procs, paths=3, tag="after-remove")
        finally:
            procs.close()
            serial.close()

    def test_batch_probe_matches_per_plan_calls(self):
        serial, procs = _twin_repositories(num_shards=4, count=18, paths=4)
        try:
            plans = [_chain_plan(2000 + index, f"/data/d{index % 4}",
                                 extra_op="batch")
                     for index in range(9)]
            # An unkeyable plan inside the batch exercises the full-scan
            # fallback lane alongside the pooled probes.
            foreign = SkeletonOp("load", "FOREIGN[b]", None, [])
            chain = SkeletonOp("filter", "FILTER[b]", None, [foreign])
            plans.append(PhysicalPlan([POStore(chain, "/out/b")]))
            batched = procs.match_candidates_batch(plans)
            singly = [serial.match_candidates(plan) for plan in plans]
            assert [[e.output_path for e in candidates]
                    for candidates in batched] \
                == [[e.output_path for e in candidates]
                    for candidates in singly]
            # Logical probes count once per plan on both sides; the
            # serial fallback of the batch API agrees too.
            assert procs._logical_probes == serial._logical_probes
            assert [[e.output_path for e in candidates] for candidates in
                    serial.match_candidates_batch(plans)] \
                == [[e.output_path for e in candidates]
                    for candidates in singly]
        finally:
            procs.close()
            serial.close()

    def test_worker_crash_recovers_from_memory(self):
        serial, procs = _twin_repositories(num_shards=2, count=10, paths=3)
        try:
            _assert_probe_parity(serial, procs, paths=3, tag="warm")
            pool = procs.worker_pool
            shard_id = next(iter(pool._workers))
            pool._workers[shard_id].process.kill()
            pool._workers[shard_id].process.join()
            # No RepositoryLog attached: the fresh worker re-seeds from
            # the front-end's in-memory members.
            _assert_probe_parity(serial, procs, paths=3, tag="post-kill")
            assert pool.recoveries == 1
            assert _stats_by_shard(procs) == _stats_by_shard(serial)
        finally:
            procs.close()
            serial.close()

    def test_worker_crash_replays_durable_partition(self):
        # Satellite: kill one shard worker mid-stream — through the
        # deterministic FaultSchedule, so the crash lands at a fixed
        # point of the message stream rather than a line of test code —
        # and prove the front-end replays that partition's durable
        # section + segment into the fresh worker: scan order, per-shard
        # stats, and match decisions bit-identical to the serial twin.
        dfs = make_dfs()
        serial, procs = _twin_repositories(num_shards=2, count=8, paths=3)
        log = RepositoryLog(dfs)
        log.attach(procs)
        try:
            log.compact()  # sections exist; later inserts live in segments
            for index in range(8, 14):
                path = f"/data/d{index % 3}"
                serial.insert(_entry(index, path))
                procs.insert(_entry(index, path))
            _assert_probe_parity(serial, procs, paths=3, tag="mid-stream")

            pool = procs.worker_pool
            shard_id = next(iter(pool._workers))

            replays = []
            durable_snapshot = log.partition_snapshot

            def spying_snapshot(requested_shard):
                replays.append(requested_shard)
                return durable_snapshot(requested_shard)

            log.partition_snapshot = spying_snapshot
            # The victim dies as its next message is sent: the probe
            # dispatch observes the crash mid-stream and recovers.
            with FaultSchedule([(shard_id, 1)], pool=pool) as schedule:
                _assert_probe_parity(serial, procs, paths=3, tag="post-kill")
            assert [kill[:2] for kill in schedule.killed] == [(shard_id, 0)]
            assert not schedule.pending
            assert pool.recoveries == 1
            assert replays == [shard_id]  # re-seeded from durable state
            assert log.snapshot_reads == 1
            # The replica rebuilt from section + segment holds exactly
            # the partition's live membership.
            assert pool.worker_size(shard_id) \
                == len(procs.shard_members(shard_id))
            assert [e.output_path for e in procs.scan()] \
                == [e.output_path for e in serial.scan()]
            assert _stats_by_shard(procs) == _stats_by_shard(serial)
        finally:
            log.close()
            procs.close()
            serial.close()

    def test_shard_worker_state_unit(self):
        # The worker's in-process core, driven without multiprocessing.
        state = ShardWorkerState()
        entries = [_entry(index, f"/data/d{index % 2}") for index in range(4)]
        state.apply([("add", entry.entry_id, entry_to_json(entry))
                     for entry in entries])
        assert len(state) == 4
        keys = state.probe(frozenset({("/data/d0", 0)}))
        assert set(keys) == {entry.entry_id for entry in entries
                             if entry.output_path.endswith(("0", "2"))}
        state.apply([("discard", entries[0].entry_id)])
        assert len(state) == 3
        assert entries[0].entry_id not in state.probe(
            frozenset({("/data/d0", 0)}))
        batch = state.probe_batch([(7, frozenset({("/data/d1", 0)})),
                                   (9, frozenset())])
        assert [probe_id for probe_id, _ in batch] == [7, 9]
        assert set(batch[0][1]) == {entries[1].entry_id,
                                    entries[3].entry_id}
        assert batch[1][1] == []

    def test_pool_rejects_map_and_rebind(self):
        repo = ShardedRepository(num_shards=2, executor="processes")
        try:
            pool = repo.worker_pool
            with pytest.raises(RepositoryError, match="routes probes"):
                pool.map(lambda x: x, [1, 2])
            other = ShardedRepository(num_shards=2)
            with pytest.raises(RepositoryError, match="already bound"):
                pool.bind(other)
            pool.bind(repo)  # re-binding the same front-end is fine
            other.close()
        finally:
            repo.close()

    def test_repository_service_lifecycle(self):
        dfs = make_dfs()
        with RepositoryService(num_shards=2,
                               persistence=RepositoryLog(dfs)) as service:
            for index in range(6):
                service.insert(_entry(index, f"/data/d{index % 2}"))
            probe = _chain_plan(100, "/data/d0", extra_op="svc")
            candidates = service.match_candidates(probe)
            assert candidates
            [batched] = service.match_candidates_batch([probe])
            assert [e.output_path for e in batched] \
                == [e.output_path for e in candidates]
            assert service.find_equivalent(
                service.repository.scan()[0].plan) is not None
            assert "worker" in service.describe()
        # close() flushed the log: a fresh load sees every insert.
        from repro.restore import load_repository
        reloaded = load_repository(dfs)
        assert len(reloaded) == 6

    def test_repository_service_requires_process_backing(self):
        repo = ShardedRepository(num_shards=2)  # serial executor
        with pytest.raises(RepositoryError, match="process-backed"):
            RepositoryService(repository=repo)
        repo.close()

    def test_manager_runs_on_worker_processes(self):
        results = {}
        for label, repository in (
                ("plain", Repository()),
                ("processes", ShardedRepository(num_shards=4,
                                                executor="processes"))):
            system = pigmix_system()
            restore = system.restore(repository=repository)
            restore.submit(system.compile(Q1_TEXT))
            restore.submit(system.compile(Q2_TEXT))
            results[label] = {
                "rewrites": restore.last_report.num_rewrites,
                "counters": restore.last_report.match_counters.as_dict(),
                "entries": len(repository),
                "output": system.dfs.read_lines("/out/L3_out"),
            }
            restore.close()
        assert results["plain"] == results["processes"]
        assert results["processes"]["rewrites"] >= 1


class TestShardStats:
    def test_probe_and_candidate_counters(self):
        repo = ShardedRepository(num_shards=2)
        for index in range(10):
            repo.insert(_entry(index, path="/data/d0"))
        probe = _chain_plan(3, "/data/d0")  # equivalent to entry 3
        repo.match_candidates(probe)
        owning = shard_index_for_key(("/data/d0", 0), 2)
        report = {row["shard"]: row for row in repo.shard_report()}
        assert report[owning]["probes"] == 1
        assert report[owning]["candidates_returned"] == 10
        assert report[owning]["occupancy"] == 10

    def test_match_hits_credited_to_owning_shard(self):
        system = pigmix_system()
        repository = ShardedRepository(num_shards=4)
        restore = system.restore(repository=repository)
        restore.submit(system.compile(Q1_TEXT))
        restore.submit(system.compile(Q2_TEXT))
        assert restore.last_report.num_rewrites >= 1
        assert sum(row["match_hits"]
                   for row in repository.shard_report()) >= 1

    def test_merged_stats_count_logical_probes_once(self):
        # Regression: a probe whose load keys land in an owned shard
        # while the catch-all is occupied consults BOTH partitions. The
        # per-shard probe counters each record their own consultation,
        # so summing that column counts one logical probe twice; the
        # merged view must report it once.
        repo = ShardedRepository(num_shards=4)
        repo.insert(_entry(0, path="/data/d0"))
        repo.insert(_unkeyable_entry(1))  # occupies the catch-all
        probe = _chain_plan(0, "/data/d0", extra_op="probe")
        repo.match_candidates(probe)
        merged = repo.merged_shard_stats()
        assert merged["probes"] == 1
        assert merged["shard_consults"] == 2  # owned shard + catch-all
        # The naive sum over shard_report() is exactly the double count
        # the merged view corrects.
        assert sum(row["probes"] for row in repo.shard_report()) == 2

    def test_merged_stats_without_catchall_agree_with_sum(self):
        repo = ShardedRepository(num_shards=4)
        repo.insert(_entry(0, path="/data/d0"))
        probe = _chain_plan(0, "/data/d0", extra_op="probe")
        repo.match_candidates(probe)
        repo.match_candidates(probe)
        merged = repo.merged_shard_stats()
        assert merged["probes"] == 2
        assert merged["shard_consults"] == 2  # empty catch-all skipped

    def test_unkeyable_probe_counts_as_one_logical_probe(self):
        repo = ShardedRepository(num_shards=4)
        for index in range(4):
            repo.insert(_entry(index, path=f"/data/d{index}"))
        probe_load = SkeletonOp("load", "FOREIGN[p]", None, [])
        probe_chain = SkeletonOp("filter", "FILTER[p]", None, [probe_load])
        probe = PhysicalPlan([POStore(probe_chain, "/out/p")])
        repo.match_candidates(probe)  # full-scan fallback
        assert repo.merged_shard_stats()["probes"] == 1

    def test_merged_candidate_and_hit_totals_are_exact_sums(self):
        system = pigmix_system()
        repository = ShardedRepository(num_shards=4)
        restore = system.restore(repository=repository)
        restore.submit(system.compile(Q1_TEXT))
        restore.submit(system.compile(Q2_TEXT))
        merged = repository.merged_shard_stats()
        report = repository.shard_report()
        assert merged["entries"] == len(repository)
        assert merged["match_hits"] == sum(row["match_hits"] for row in report)
        assert merged["candidates_returned"] == \
            sum(row["candidates_returned"] for row in report)
        assert merged["probes"] <= merged["shard_consults"]

    def test_describe_mentions_shards(self):
        repo = ShardedRepository(num_shards=3)
        repo.insert(_entry(0))
        text = repo.describe()
        assert "3 shard(s)" in text
        assert "shard 0" in text


class TestManagerParity:
    """A ReStore manager behaves identically on sharded and plain repos
    (the property suite drives this at scale; this is the smoke path)."""

    def test_quickstart_scenario_identical(self):
        results = {}
        for label, repository in (("plain", Repository()),
                                  ("sharded", ShardedRepository(num_shards=8))):
            system = pigmix_system()
            restore = system.restore(repository=repository)
            restore.submit(system.compile(Q1_TEXT))
            restore.submit(system.compile(Q2_TEXT))
            results[label] = {
                "rewrites": restore.last_report.num_rewrites,
                "counters": restore.last_report.match_counters.as_dict(),
                "entries": len(repository),
                "output": system.dfs.read_lines("/out/L3_out"),
            }
        assert results["plain"] == results["sharded"]
        assert results["sharded"]["rewrites"] >= 1

    def test_find_equivalent_is_global_across_shards(self):
        # Registering the same computation twice must dedup even when a
        # second insert would land in a different shard's probe path:
        # the fingerprint dict is global.
        repo = ShardedRepository(num_shards=8)
        entry = _entry(7, path="/data/d3")
        repo.insert(entry)
        duplicate_plan = _chain_plan(7, "/data/d3")
        assert repo.find_equivalent(duplicate_plan) is entry
