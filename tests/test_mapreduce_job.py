"""Unit tests for the MRJob descriptor and PigMix variant correctness."""

import pytest

from repro import PigSystem
from repro.common.errors import PlanError
from repro.mapreduce.job import MRJob
from repro.pigmix import PigMixConfig, PigMixData, PigMixPaths
from repro.pigmix.queries import VARIANT_FAMILIES
from repro.physical import logical_to_physical, PhysicalPlan
from repro.physical.operators import POLoad, POStore
from repro.logical import build_logical_plan
from repro.piglatin import parse_query
from repro.data import DataType, Field, Schema

SCHEMA = Schema([Field("x", DataType.INT)])


def stamped_plan():
    load = POLoad("/d", SCHEMA)
    load.stage = "map"
    store = POStore(load, "/o")
    store.stage = "map"
    return PhysicalPlan([store])


class TestMRJobValidation:
    def test_requires_stage_annotations(self):
        load = POLoad("/d", SCHEMA)
        store = POStore(load, "/o")
        with pytest.raises(PlanError):
            MRJob("j", PhysicalPlan([store]))

    def test_map_only_job_rejects_reduce_stage(self):
        load = POLoad("/d", SCHEMA)
        load.stage = "map"
        store = POStore(load, "/o")
        store.stage = "reduce"
        with pytest.raises(PlanError):
            MRJob("j", PhysicalPlan([store]), shuffle_op=None)

    def test_map_only_job_accepted(self):
        job = MRJob("j", stamped_plan())
        assert job.parallel is None
        assert job.input_paths() == ["/d"]
        assert job.output_paths() == ["/o"]

    def test_final_stores_exclude_temp_and_injected(self):
        load = POLoad("/d", SCHEMA)
        load.stage = "map"
        user_store = POStore(load, "/o")
        user_store.stage = "map"
        temp_store = POStore(load, "/tmp/t", temporary=True)
        temp_store.stage = "map"
        injected_store = POStore(load, "/restore/m")
        injected_store.stage = "map"
        injected_store.injected = True
        job = MRJob("j", PhysicalPlan([user_store, temp_store, injected_store]))
        assert job.final_stores() == [user_store]

    def test_describe_mentions_shuffle(self):
        job = MRJob("j", stamped_plan())
        assert "shuffle: none" in job.describe()


class TestVariantCorrectness:
    """The L3/L11 variants must compute what their names promise."""

    @pytest.fixture(scope="class")
    def setup(self):
        system = PigSystem()
        data = PigMixData(PigMixConfig(num_page_views=400, num_users=40,
                                       num_power_users=8, seed=5))
        data.install(system.dfs)
        paths = PigMixPaths()
        for family in VARIANT_FAMILIES.values():
            for name, fn in family.items():
                system.run(fn(paths), name)
        return system, data

    def test_l3_variants_agree_on_groups(self, setup):
        system, _ = setup
        def users_of(path):
            return {line.split("\t")[0] for line in system.dfs.read_lines(path)}
        base = users_of("/out/L3_out")
        for suffix in ("a", "b", "c"):
            assert users_of(f"/out/L3{suffix}_out") == base

    def test_l3b_counts_are_integers_summing_to_join_size(self, setup):
        system, data = setup
        counts = [int(line.split("\t")[1])
                  for line in system.dfs.read_lines("/out/L3b_out")]
        users = {row[0] for row in data.users_rows()}
        matched = sum(1 for row in data.page_views_rows() if row[0] in users)
        assert sum(counts) == matched

    def test_l3c_min_below_l3a_avg(self, setup):
        system, _ = setup
        avgs = {}
        for line in system.dfs.read_lines("/out/L3a_out"):
            user, value = line.split("\t")
            avgs[user] = float(value)
        for line in system.dfs.read_lines("/out/L3c_out"):
            user, value = line.split("\t")
            assert float(value) <= avgs[user] + 1e-9

    def test_l11_variants_compute_expected_unions(self, setup):
        system, data = setup
        pv = {row[0] for row in data.page_views_rows()}
        users = {row[0] for row in data.users_rows()}
        power = {row[0] for row in data.power_users_rows()}
        expected = {
            "L11_out": pv | users,
            "L11a_out": pv | power,
            "L11b_out": users | power,
            "L11c_out": power | pv,
            "L11d_out": power | users,
        }
        for out_name, names in expected.items():
            assert set(system.dfs.read_lines(f"/out/{out_name}")) == names
