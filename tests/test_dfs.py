"""Unit + property tests for the simulated distributed file system."""

import pytest
from hypothesis import given, strategies as st

from repro.common import LogicalClock
from repro.common.errors import DfsError
from repro.dfs import DistributedFileSystem


def small_dfs(**kwargs):
    defaults = dict(block_size=64, replication=3, num_datanodes=5)
    defaults.update(kwargs)
    return DistributedFileSystem(**defaults)


class TestWriteRead:
    def test_roundtrip(self):
        dfs = small_dfs()
        lines = [f"row-{i}" for i in range(10)]
        dfs.write_lines("/data/a", lines)
        assert dfs.read_lines("/data/a") == lines

    def test_empty_file(self):
        dfs = small_dfs()
        status = dfs.write_lines("/empty", [])
        assert status.size_bytes == 0
        assert status.num_lines == 0
        assert dfs.read_lines("/empty") == []
        assert len(dfs.blocks_of("/empty")) == 1

    def test_relative_path_rejected(self):
        with pytest.raises(DfsError):
            small_dfs().write_lines("no-slash", ["x"])

    def test_read_missing_raises(self):
        with pytest.raises(DfsError):
            small_dfs().read_lines("/missing")

    def test_overwrite_requires_flag(self):
        dfs = small_dfs()
        dfs.write_lines("/f", ["a"])
        with pytest.raises(DfsError):
            dfs.write_lines("/f", ["b"])
        dfs.write_lines("/f", ["b"], overwrite=True)
        assert dfs.read_lines("/f") == ["b"]


class TestVersioning:
    def test_version_increments_on_overwrite(self):
        dfs = small_dfs()
        assert dfs.write_lines("/f", ["a"]).version == 1
        assert dfs.write_lines("/f", ["b"], overwrite=True).version == 2

    def test_modification_tick_follows_clock(self):
        clock = LogicalClock()
        dfs = small_dfs(clock=clock)
        first = dfs.write_lines("/f", ["a"])
        clock.tick(5)
        second = dfs.write_lines("/f", ["b"], overwrite=True)
        assert first.modified_tick == 0
        assert second.modified_tick == 5
        assert second.created_tick == 0

    def test_version_continues_across_delete_and_recreate(self):
        # A deleted path's version sequence survives the delete: a
        # re-created file must never collide with versions recorded
        # before the delete (ReStore's Rule 4 compares exact versions).
        dfs = small_dfs()
        assert dfs.write_lines("/f", ["a"]).version == 1
        assert dfs.write_lines("/f", ["b"], overwrite=True).version == 2
        dfs.delete("/f")
        assert dfs.write_lines("/f", ["c"]).version == 3
        dfs.delete("/f")
        # Even byte-identical content is a new version after a delete:
        # the old lines are gone, so content stability cannot be proven.
        assert dfs.write_lines("/f", ["c"]).version == 4

    def test_identical_overwrite_still_version_stable(self):
        dfs = small_dfs()
        dfs.write_lines("/f", ["a"])
        assert dfs.write_lines("/f", ["a"], overwrite=True).version == 1


class TestAppend:
    """append_lines: write_lines' accounting, O(appended) placement."""

    def test_append_extends_content(self):
        dfs = small_dfs()
        dfs.write_lines("/f", ["a", "b"])
        dfs.append_lines("/f", ["c", "d"])
        assert dfs.read_lines("/f") == ["a", "b", "c", "d"]

    def test_append_creates_missing_file(self):
        dfs = small_dfs()
        status = dfs.append_lines("/f", ["a"])
        assert status.version == 1
        assert dfs.read_lines("/f") == ["a"]

    def test_append_is_a_modification(self):
        clock = LogicalClock()
        dfs = small_dfs(clock=clock)
        first = dfs.write_lines("/f", ["a"])
        clock.tick(3)
        second = dfs.append_lines("/f", ["b"])
        assert second.version == first.version + 1
        assert second.modified_tick == 3
        assert second.created_tick == first.created_tick

    def test_empty_append_is_a_no_op(self):
        dfs = small_dfs()
        first = dfs.write_lines("/f", ["a"])
        second = dfs.append_lines("/f", [])
        assert second.version == first.version
        assert second.modified_tick == first.modified_tick
        assert dfs.read_lines("/f") == ["a"]

    def test_append_places_only_new_blocks(self):
        dfs = small_dfs(block_size=16)
        dfs.write_lines("/f", [f"line-{i:03d}" for i in range(10)])
        before = dfs.blocks_of("/f")
        dfs.append_lines("/f", [f"tail-{i:03d}" for i in range(5)])
        after = dfs.blocks_of("/f")
        # The original blocks are untouched — same ids, same coordinates.
        assert [b.block_id for b in after[:len(before)]] == \
            [b.block_id for b in before]
        assert len(after) > len(before)

    def test_appended_blocks_partition_file(self):
        dfs = small_dfs(block_size=16)
        lines = [f"line-{i:03d}" for i in range(12)]
        dfs.write_lines("/f", lines[:7])
        dfs.append_lines("/f", lines[7:])
        rebuilt = []
        for index in range(len(dfs.blocks_of("/f"))):
            rebuilt.extend(dfs.read_block_lines("/f", index))
        assert rebuilt == lines

    def test_append_accounting_matches_rewrite(self):
        """Size/line/replica accounting after appends equals a fresh
        write of the same full content."""
        appended = small_dfs(block_size=32)
        rewritten = small_dfs(block_size=32)
        lines = [f"row-{i}" for i in range(20)]
        appended.write_lines("/f", lines[:8])
        appended.append_lines("/f", lines[8:15])
        appended.append_lines("/f", lines[15:])
        rewritten.write_lines("/f", lines)
        assert appended.file_size("/f") == rewritten.file_size("/f")
        assert appended.status("/f").num_lines == len(lines)
        assert appended.total_used_bytes() == rewritten.total_used_bytes()
        assert appended.read_lines("/f") == rewritten.read_lines("/f")

    def test_append_does_not_alias_reader_copies(self):
        # Appends extend the stored lists in place (O(appended), not
        # O(file)); the read paths must keep handing out copies so no
        # caller observes the mutation.
        dfs = small_dfs()
        dfs.write_lines("/f", ["a"])
        snapshot = dfs.read_lines("/f")
        blocks = dfs.blocks_of("/f")
        dfs.append_lines("/f", ["b"])
        assert snapshot == ["a"]
        assert len(blocks) == 1
        snapshot.append("junk")
        assert dfs.read_lines("/f") == ["a", "b"]

    def test_append_replicas_respect_replication(self):
        dfs = small_dfs(replication=3)
        dfs.write_lines("/f", ["a"])
        dfs.append_lines("/f", ["b" * 100])
        for block in dfs.blocks_of("/f"):
            assert len(set(block.replicas)) == 3


class TestBlocksAndReplication:
    def test_multiple_blocks_created(self):
        dfs = small_dfs(block_size=32)
        lines = ["x" * 20 for _ in range(10)]  # 21 bytes/line on disk
        dfs.write_lines("/big", lines)
        blocks = dfs.blocks_of("/big")
        assert len(blocks) > 1
        assert sum(block.num_lines for block in blocks) == 10
        assert sum(block.num_bytes for block in blocks) == dfs.file_size("/big")

    def test_block_lines_partition_file(self):
        dfs = small_dfs(block_size=16)
        lines = [f"line-{i:03d}" for i in range(25)]
        dfs.write_lines("/f", lines)
        rebuilt = []
        for index in range(len(dfs.blocks_of("/f"))):
            rebuilt.extend(dfs.read_block_lines("/f", index))
        assert rebuilt == lines

    def test_replication_factor_respected(self):
        dfs = small_dfs(replication=3)
        dfs.write_lines("/f", ["hello"])
        for block in dfs.blocks_of("/f"):
            assert len(set(block.replicas)) == 3

    def test_replicated_size(self):
        dfs = small_dfs(replication=3)
        dfs.write_lines("/f", ["hello"])  # 6 bytes with newline
        assert dfs.file_size("/f") == 6
        assert dfs.replicated_size("/f") == 18
        assert dfs.total_used_bytes() == 18

    def test_rejects_replication_above_cluster_size(self):
        with pytest.raises(DfsError):
            DistributedFileSystem(replication=6, num_datanodes=5)

    def test_delete_releases_datanode_space(self):
        dfs = small_dfs()
        dfs.write_lines("/f", ["hello"] * 100)
        assert dfs.total_used_bytes() > 0
        dfs.delete("/f")
        assert dfs.total_used_bytes() == 0
        assert not dfs.exists("/f")

    def test_delete_missing_raises(self):
        with pytest.raises(DfsError):
            small_dfs().delete("/missing")

    def test_delete_if_exists_is_quiet(self):
        small_dfs().delete_if_exists("/missing")


class TestNamespace:
    def test_list_files_prefix(self):
        dfs = small_dfs()
        dfs.write_lines("/a/1", [])
        dfs.write_lines("/a/2", [])
        dfs.write_lines("/b/1", [])
        assert dfs.list_files("/a/") == ["/a/1", "/a/2"]
        assert dfs.list_files() == ["/a/1", "/a/2", "/b/1"]

    def test_status_reports_sizes(self):
        dfs = small_dfs()
        dfs.write_lines("/f", ["ab", "cd"])
        status = dfs.status("/f")
        assert status.size_bytes == 6
        assert status.num_lines == 2


@given(st.lists(st.text(alphabet="abcdef", max_size=12), max_size=40), st.integers(8, 128))
def test_property_block_partition_reconstructs_file(lines, block_size):
    dfs = DistributedFileSystem(block_size=block_size, replication=2, num_datanodes=4)
    dfs.write_lines("/f", lines)
    rebuilt = []
    for index in range(len(dfs.blocks_of("/f"))):
        rebuilt.extend(dfs.read_block_lines("/f", index))
    assert rebuilt == lines


class TestOverwriteCrashSafety:
    """PR 9: overwrite is write-new-then-swap — a failure while placing
    the replacement's blocks must leave the old file fully readable
    (the crash window the persistence manifest swap relies on)."""

    def test_failed_overwrite_preserves_old_file(self, monkeypatch):
        dfs = small_dfs()
        dfs.write_lines("/data/a", ["old-1", "old-2"])
        before = dfs.status("/data/a")
        used_before = dfs.total_used_bytes()

        import repro.dfs.filesystem as fsmod

        def crash(line):
            raise RuntimeError("datanode lost mid-placement")

        monkeypatch.setattr(fsmod, "encoded_size", crash)
        with pytest.raises(RuntimeError):
            dfs.write_lines("/data/a", ["new"], overwrite=True)
        monkeypatch.undo()

        assert dfs.read_lines("/data/a") == ["old-1", "old-2"]
        after = dfs.status("/data/a")
        assert after.version == before.version
        assert after.modified_tick == before.modified_tick
        assert dfs.total_used_bytes() == used_before

        # Once the fault clears, the same overwrite goes through.
        status = dfs.write_lines("/data/a", ["new"], overwrite=True)
        assert status.version == before.version + 1
        assert dfs.read_lines("/data/a") == ["new"]
