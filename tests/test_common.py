"""Unit tests for repro.common: errors, rng, units, clock."""

import pytest

from repro.common import DeterministicRng, LogicalClock, format_bytes, GB, KB, MB
from repro.common.errors import DataError, ParseError, ReproError
from repro.common.units import format_minutes


class TestDeterministicRng:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 1000) for _ in range(20)] == [
            b.randint(0, 1000) for _ in range(20)
        ]

    def test_different_seeds_diverge(self):
        a = [DeterministicRng(1).randint(0, 10**9) for _ in range(5)]
        b = [DeterministicRng(2).randint(0, 10**9) for _ in range(5)]
        assert a != b

    def test_substream_is_stable_regardless_of_order(self):
        rng1 = DeterministicRng(7)
        users_first = rng1.substream("users").randint(0, 10**9)
        rng2 = DeterministicRng(7)
        rng2.substream("page_views").randint(0, 10**9)
        users_second = rng2.substream("users").randint(0, 10**9)
        assert users_first == users_second

    def test_substreams_are_independent(self):
        rng = DeterministicRng(7)
        a = rng.substream("a")
        b = rng.substream("b")
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_rand_string_length_and_alphabet(self):
        rng = DeterministicRng(3)
        text = rng.rand_string(20)
        assert len(text) == 20
        assert text.islower()

    def test_choice_and_shuffle_deterministic(self):
        rng = DeterministicRng(5)
        items = list(range(10))
        rng.shuffle(items)
        rng2 = DeterministicRng(5)
        items2 = list(range(10))
        rng2.shuffle(items2)
        assert items == items2


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024 * 1024
        assert GB == 1024**3

    def test_format_bytes_small(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(27) == "27 B"
        assert format_bytes(1023) == "1023 B"

    def test_format_bytes_units(self):
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(int(1.5 * MB)) == "1.5 MB"
        assert format_bytes(int(2.5 * GB)) == "2.5 GB"

    def test_format_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_format_minutes(self):
        assert format_minutes(90) == "1.5 min"


class TestLogicalClock:
    def test_starts_at_zero(self):
        assert LogicalClock().now() == 0

    def test_tick_advances(self):
        clock = LogicalClock()
        assert clock.tick() == 1
        assert clock.tick(3) == 4
        assert clock.now() == 4

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            LogicalClock(-1)
        with pytest.raises(ValueError):
            LogicalClock().tick(0)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ParseError, ReproError)
        assert issubclass(DataError, ReproError)

    def test_parse_error_position(self):
        err = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(err)
        assert err.line == 3 and err.column == 7
