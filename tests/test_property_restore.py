"""Property-based tests for ReStore's core invariants.

The central one: **reuse never changes results**. A random pipeline query
is generated, executed on a plain system and on a ReStore system twice
(populate + reuse); all three outputs must be byte-identical.

The second family (PR 1): **indexing never changes decisions**. The
indexed :class:`~repro.restore.Repository` is driven in lock-step with
the frozen seed implementation
(:class:`~repro.restore.LinearScanRepository`) over randomized workflow
streams, and must produce identical scan orders, identical
``find_equivalent`` results, identical match decisions, and identical
:class:`~repro.restore.ReStoreReport` contents.

The third family (PR 2): **sharding never changes decisions either**.
:class:`~repro.restore.ShardedRepository` at shard counts 1, 2, and 8
joins the same lock-step streams: every implementation must agree with
the seed on scan order and matching, and the sharded candidate sequences
(per-shard probes merged back into priority order) must be identical to
the indexed repository's.

The fourth family (PR 3): **savings ranking is safe**. A
:class:`~repro.restore.SavingsRanker` walk sees exactly the structural
candidate *set* (a permutation — ranking never drops or invents
candidates), never tries an entry before one that subsumes it, and a
manager driven by it applies only containment-valid rewrites while its
total simulated workflow cost never exceeds the structural run's on the
same randomized stream.
"""

import contextlib
import itertools
import json
import random

import pytest
from hypothesis import assume, given, HealthCheck, settings, strategies as st

from repro import PigSystem
from repro.data import DataType, encode_row, Field, Schema
from repro.dfs import DistributedFileSystem
from repro.logical import build_logical_plan
from repro.mapreduce import ClusterConfig, CostModel, CostModelConfig
from repro.physical import logical_to_physical
from repro.physical.operators import POLoad
from repro.piglatin import parse_query
import repro.restore.manager as manager_module
from repro.restore import (
    LinearScanRepository,
    load_repository,
    Repository,
    RepositoryEntry,
    RepositoryLog,
    SavingsRanker,
    ShardedRepository,
)
from repro.restore.matcher import contains, find_containment, pairwise_plan_traversal
from repro.restore.persistence import CATCHALL_LABEL, segment_file_path
from repro.restore.stats import EntryStats

from tests.faultinject import (FaultSchedule, install_hang_guard,
                               ProtocolWindowKill)

SCHEMA = Schema(
    [
        Field("k", DataType.CHARARRAY),
        Field("a", DataType.INT),
        Field("b", DataType.INT),
        Field("c", DataType.CHARARRAY),
    ]
)

_rows = st.lists(
    st.tuples(
        st.sampled_from(["x", "y", "z", "w"]),
        st.integers(0, 50),
        st.integers(0, 50),
        st.sampled_from(["p", "q", "r"]),
    ),
    min_size=0,
    max_size=30,
)

# A random linear pipeline: load -> transforms -> optional blocking ->
# optional aggregate -> store.
TRANSFORM_TEMPLATES = [
    "{out} = filter {inp} by a > 10;",
    "{out} = filter {inp} by b < 40;",
    "{out} = foreach {inp} generate k, a, b, c;",
    "{out} = foreach {inp} generate k, a + b as a, b, c;",
    "{out} = distinct {inp};",
]

TAIL_TEMPLATES = [
    "",
    "{out} = group {inp} by k;"
    "{out2} = foreach {out} generate group, COUNT({inp});",
    "{out} = group {inp} by k;"
    "{out2} = foreach {out} generate group, SUM({inp}.a);",
    "{out} = order {inp} by k;",
]

_transforms = st.lists(st.sampled_from(TRANSFORM_TEMPLATES), min_size=0, max_size=3)

_tails = st.sampled_from(TAIL_TEMPLATES)


def build_query(transforms, tail):
    lines = ["A = load '/data/t' as (k:chararray, a:int, b:int, c:chararray);"]
    current = "A"
    for index, template in enumerate(transforms):
        out = f"T{index}"
        lines.append(template.format(inp=current, out=out))
        current = out
    if tail:
        out = "G"
        out2 = "H"
        lines.append(tail.format(inp=current, out=out, out2=out2))
        current = out2 if "{out2}" in tail else out
    lines.append(f"store {current} into '/out/result';")
    return "\n".join(lines)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=_rows, transforms=_transforms, tail=_tails)
def test_property_reuse_preserves_results(rows, transforms, tail):
    query = build_query(transforms, tail)

    plain = PigSystem()
    plain.dfs.write_lines("/data/t", [encode_row(r, SCHEMA) for r in rows])
    plain.run(query)
    expected = plain.dfs.read_lines("/out/result")

    reusing = PigSystem()
    reusing.dfs.write_lines("/data/t", [encode_row(r, SCHEMA) for r in rows])
    restore = reusing.restore()
    restore.submit(reusing.compile(query))
    assert reusing.dfs.read_lines("/out/result") == expected

    # Second submission reuses stored outputs — results must not change.
    restore.submit(reusing.compile(query))
    assert reusing.dfs.read_lines("/out/result") == expected


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(transforms=_transforms, tail=_tails)
def test_property_plan_contains_itself(transforms, tail):
    # Bare Load->Store plans are excluded: they have no valid match
    # frontier (rewriting a Load with a Load is useless by design).
    assume(transforms or tail)
    query = build_query(transforms, tail)
    plan_a = logical_to_physical(build_logical_plan(parse_query(query)))
    plan_b = logical_to_physical(build_logical_plan(parse_query(query)))
    assert contains(plan_a, plan_b)
    assert pairwise_plan_traversal(plan_b, plan_a)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(transforms_a=_transforms, tail_a=_tails,
       transforms_b=_transforms, tail_b=_tails)
def test_property_matchers_agree(transforms_a, tail_a, transforms_b, tail_b):
    assume(transforms_a or tail_a)  # trivial entries are never registered
    entry = logical_to_physical(
        build_logical_plan(parse_query(build_query(transforms_a, tail_a))))
    target = logical_to_physical(
        build_logical_plan(parse_query(build_query(transforms_b, tail_b))))
    assert (find_containment(entry, target) is not None) == (
        pairwise_plan_traversal(target, entry)
    )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=_rows, transforms=_transforms)
def test_property_prefix_queries_share_work(rows, transforms):
    """A query that extends another must be rewritten to reuse it (when
    the prefix stores a reusable whole-job or sub-job output)."""
    prefix_query = build_query(transforms, "")
    extended_query = build_query(
        transforms,
        "{out} = group {inp} by k;"
        "{out2} = foreach {out} generate group, COUNT({inp});",
    ).replace("/out/result", "/out/extended")

    system = PigSystem()
    system.dfs.write_lines("/data/t", [encode_row(r, SCHEMA) for r in rows])
    restore = system.restore()
    restore.submit(system.compile(prefix_query))
    restore.submit(system.compile(extended_query))

    check = PigSystem()
    check.dfs.write_lines("/data/t", [encode_row(r, SCHEMA) for r in rows])
    check.run(extended_query)
    assert (system.dfs.read_lines("/out/extended")
            == check.dfs.read_lines("/out/extended"))


# --- Indexed + sharded repositories vs the frozen seed linear scan ------------
#
# The indexed Repository (PR 1) and the ShardedRepository at several
# shard counts (PR 2) must be observationally identical to the seed's
# sequential-scan implementation: same scan order, same find_equivalent
# answers, same match decisions. These tests drive all of them in
# lock-step over randomized insert/remove/probe streams.

_POOL_QUERIES = []
for _ds in ("/data/t", "/data/u"):
    _base = (f"A = load '{_ds}' as (k:chararray, a:int, b:int, c:chararray);")
    for _body, _last in [
        ("", "A"),
        ("B = filter A by a > 10;", "B"),
        ("B = filter A by a > 10; C = foreach B generate k, a;", "C"),
        ("B = filter A by a > 10; C = foreach B generate k, a;"
         "D = distinct C;", "D"),
        ("B = foreach A generate k, a + b as a;", "B"),
        ("B = group A by k; C = foreach B generate group, COUNT(A);", "C"),
    ]:
        if _last == "A":
            continue  # bare Load->Store plans have no match frontier
        _POOL_QUERIES.append(f"{_base}\n{_body}\nstore {_last} into '/stored/p';")
_POOL_QUERIES.append(
    "A = load '/data/t' as (k:chararray, a:int, b:int, c:chararray);\n"
    "B = load '/data/u' as (k:chararray, a:int, b:int, c:chararray);\n"
    "C = join A by k, B by k;\n"
    "store C into '/stored/p';"
)
_POOL_QUERIES.append(
    "A = load '/data/t' as (k:chararray, a:int, b:int, c:chararray);\n"
    "B = load '/data/u' as (k:chararray, a:int, b:int, c:chararray);\n"
    "C = join A by k, B by k;\n"
    "D = filter C by $1 > 10;\n"
    "store D into '/stored/p';"
)


@pytest.fixture(scope="module")
def plan_pool():
    return [logical_to_physical(build_logical_plan(parse_query(text)))
            for text in _POOL_QUERIES]


def _pool_plan(plan_pool, pool_index, version):
    """A fresh clone of a pool plan with every Load pinned to ``version``."""
    plan, _ = plan_pool[pool_index % len(plan_pool)].clone()
    for op in plan.operators():
        if isinstance(op, POLoad):
            op.version = version
    return plan


def _first_match_path(candidates, probe_plan):
    for entry in candidates:
        if find_containment(entry.plan, probe_plan) is not None:
            return entry.output_path
    return None


def _repository_fleet():
    """Every repository implementation that must be observationally
    identical to the seed linear scan, labelled for failure messages."""
    return [
        ("indexed", Repository()),
        ("sharded-1", ShardedRepository(num_shards=1)),
        ("sharded-2", ShardedRepository(num_shards=2)),
        ("sharded-8", ShardedRepository(num_shards=8)),
    ]


_RANKING_MODEL = CostModel(CostModelConfig(), ClusterConfig())


def _assert_savings_walk_safe(repo, probe, structural_paths, context, name):
    """The SavingsRanker walk over one probe: same candidate set as the
    structural walk, no entry before its subsumer, deterministic."""
    ranker = SavingsRanker(_RANKING_MODEL)
    ranked = repo.match_candidates(probe, ranker=ranker)
    ranked_paths = [e.output_path for e in ranked]
    assert sorted(ranked_paths) == sorted(structural_paths), (context, name)
    assert [e.output_path for e in repo.match_candidates(probe, ranker=ranker)] \
        == ranked_paths, (context, name)
    position = {e.entry_id: i for i, e in enumerate(ranked)}
    edges = repo.subsumption_edges_among(position)
    for above_id, below_ids in edges.items():
        for below_id in below_ids:
            assert position[above_id] < position[below_id], (context, name)
    return ranked_paths


def test_property_repositories_equivalent_to_seed(plan_pool):
    """200 randomized workflow streams of inserts/removals/probes: the
    indexed repository and the sharded repository (1, 2, and 8 shards)
    must produce scan orders, find_equivalent results, and match
    decisions identical to the frozen seed linear scan after every
    single operation — and the sharded candidate sequences must be
    identical to the indexed repository's (the shard merge restores the
    global priority order exactly)."""
    for stream in range(200):
        rng = random.Random(1000 + stream)
        fleet = _repository_fleet()
        seed = LinearScanRepository()
        twins = {}  # output_path -> [entry per fleet repo..., seed entry]
        for step in range(rng.randint(6, 14)):
            context = f"stream={stream} step={step}"
            action = rng.random()
            if action < 0.60 or not twins:
                pool_index = rng.randrange(len(plan_pool))
                version = rng.choice([0, 0, 0, 1, 2])
                plan = _pool_plan(plan_pool, pool_index, version)
                stats = EntryStats(
                    input_bytes=rng.choice([1000, 2000, 10000]),
                    output_bytes=rng.choice([10, 100, 1000]),
                    producing_job_time=rng.choice([1.0, 5.0, 60.0]),
                )
                path = f"/stored/s{stream}-{step}"
                entries = [RepositoryEntry(plan, path, stats)
                           for _ in range(len(fleet) + 1)]
                for (_, repo), entry in zip(fleet, entries):
                    repo.insert(entry)
                seed.insert(entries[-1])
                twins[path] = entries
            elif action < 0.75:
                victim = seed.scan()[rng.randrange(len(seed))]
                entries = twins.pop(victim.output_path)
                for (_, repo), entry in zip(fleet, entries):
                    repo.remove(entry)
                seed.remove(entries[-1])
            else:
                probe = _pool_plan(plan_pool, rng.randrange(len(plan_pool)),
                                   rng.choice([0, 0, 1]))
                expected = seed.find_equivalent(probe)
                expected_first = _first_match_path(seed.scan(), probe)
                indexed_candidates = None
                indexed_ranked = None
                for name, repo in fleet:
                    found = repo.find_equivalent(probe)
                    assert (found is None) == (expected is None), (context, name)
                    if found is not None:
                        assert found.output_path == expected.output_path, \
                            (context, name)
                    # Match decision: the filtered (and, for shards,
                    # fanned-out-and-merged) candidate walk must pick the
                    # same first match as the seed's full scan, and must
                    # not drop any matching entry.
                    candidates = [e.output_path
                                  for e in repo.match_candidates(probe)]
                    assert _first_match_path(repo.match_candidates(probe),
                                             probe) == expected_first, \
                        (context, name)
                    skipped = [e for e in seed.scan()
                               if e.output_path not in set(candidates)]
                    assert all(find_containment(e.plan, probe) is None
                               for e in skipped), (context, name)
                    if indexed_candidates is None:
                        indexed_candidates = candidates
                    else:
                        # The shard merge must reproduce the indexed
                        # repository's candidate sequence exactly.
                        assert candidates == indexed_candidates, (context, name)
                    # Savings ranking: a safe permutation of the same
                    # walk, identical across implementations.
                    ranked = _assert_savings_walk_safe(
                        repo, probe, candidates, context, name)
                    if indexed_ranked is None:
                        indexed_ranked = ranked
                    else:
                        assert ranked == indexed_ranked, (context, name)
            for name, repo in fleet:
                assert [e.output_path for e in repo.scan()] == \
                    [e.output_path for e in seed.scan()], (context, name)


# --- The worker-process service never changes decisions (PR 6) ----------------
#
# The same lock-step discipline, pointed at executor="processes": the
# process-backed ShardedRepository (2 and 8 shards, each partition a
# worker process behind the routing front-end) joins serial sharded
# twins and the frozen seed on randomized insert/remove/use/probe
# streams. Scan orders, find_equivalent answers, and match decisions —
# per-plan AND through the batched probe API — must be identical
# throughout, and the durable state the attached RepositoryLog wrote
# for a process-backed arm must reload bit-identically.


def test_property_worker_processes_equivalent_to_serial(plan_pool):
    for stream in range(12):
        rng = random.Random(15000 + stream)
        dfs = DistributedFileSystem()
        seed = LinearScanRepository()
        fleet = [
            ("serial-2", ShardedRepository(num_shards=2)),
            ("processes-2", ShardedRepository(num_shards=2,
                                              executor="processes")),
            ("serial-8", ShardedRepository(num_shards=8)),
            ("processes-8", ShardedRepository(num_shards=8,
                                              executor="processes")),
        ]
        # Durability rides on a process-backed arm: its log must write
        # the same durable state a serial repository's would.
        log = RepositoryLog(dfs)
        log.attach(fleet[1][1])
        twins = {}  # output_path -> [entry per fleet repo..., seed entry]
        tick = 0
        try:
            for step in range(rng.randint(8, 14)):
                context = f"stream={stream} step={step}"
                action = rng.random()
                if action < 0.50 or not twins:
                    plan = _pool_plan(plan_pool,
                                      rng.randrange(len(plan_pool)),
                                      rng.choice([0, 0, 1]))
                    stats = EntryStats(
                        input_bytes=rng.choice([1000, 2000, 10000]),
                        output_bytes=rng.choice([10, 100, 1000]),
                        producing_job_time=rng.choice([1.0, 5.0, 60.0]),
                        created_tick=tick,
                    )
                    path = f"/stored/p{stream}-{step}"
                    entries = [RepositoryEntry(plan, path, stats)
                               for _ in range(len(fleet) + 1)]
                    for (_, repo), entry in zip(fleet, entries):
                        repo.insert(entry)
                    seed.insert(entries[-1])
                    twins[path] = entries
                elif action < 0.62:
                    victim = seed.scan()[rng.randrange(len(seed))]
                    entries = twins.pop(victim.output_path)
                    for (_, repo), entry in zip(fleet, entries):
                        repo.remove(entry)
                    seed.remove(entries[-1])
                elif action < 0.72:
                    tick += 1
                    victim = seed.scan()[rng.randrange(len(seed))]
                    for (_, repo), entry in zip(fleet,
                                                twins[victim.output_path]):
                        repo.record_use(entry, tick)
                else:
                    probes = [_pool_plan(plan_pool,
                                         rng.randrange(len(plan_pool)),
                                         rng.choice([0, 0, 1]))
                              for _ in range(rng.randint(1, 3))]
                    expected = [_first_match_path(seed.scan(), probe)
                                for probe in probes]
                    serial_candidates = None
                    for name, repo in fleet:
                        singly = [repo.match_candidates(probe)
                                  for probe in probes]
                        # The batched service path answers exactly like
                        # the per-plan calls, for every fleet member.
                        batched = repo.match_candidates_batch(probes)
                        assert [[e.output_path for e in cs] for cs in
                                batched] \
                            == [[e.output_path for e in cs] for cs in
                                singly], (context, name)
                        firsts = [_first_match_path(cs, probe)
                                  for cs, probe in zip(singly, probes)]
                        assert firsts == expected, (context, name)
                        paths = [[e.output_path for e in cs]
                                 for cs in singly]
                        if serial_candidates is None:
                            serial_candidates = paths
                        else:
                            assert paths == serial_candidates, \
                                (context, name)
                        for probe in probes:
                            found = repo.find_equivalent(probe)
                            seed_found = seed.find_equivalent(probe)
                            assert (found is None) == (seed_found is None), \
                                (context, name)
                            if found is not None:
                                assert found.output_path \
                                    == seed_found.output_path, (context, name)
                for name, repo in fleet:
                    assert [e.output_path for e in repo.scan()] == \
                        [e.output_path for e in seed.scan()], (context, name)
            log.checkpoint()
            _assert_reload_matches_live(dfs, fleet[1][1], plan_pool, rng,
                                        f"stream={stream} reload")
        finally:
            log.close()
            for _, repo in fleet:
                repo.close()


# --- Replication never changes decisions, even under kills (PR 7) -------------
#
# The same lock-step discipline again, pointed at replicas=2 — with
# deterministic fault injection riding along: every stream kills a
# seed-chosen replica after its seed-chosen Nth message, mid-stream.
# Scan orders, find_equivalent answers, match decisions (per-plan AND
# batched, which the replicated pool splits across the replica set),
# and the executor-independent stats must stay identical to the serial
# twins and the frozen seed throughout; at end of stream every shard's
# surviving-or-backfilled replicas must hold bit-identical state images;
# and the durable log written by a replicated arm must reload exactly.


def test_property_replicated_workers_equivalent_under_faults(plan_pool):
    cancel_guard = install_hang_guard(600.0)
    try:
        for stream in range(12):
            rng = random.Random(17000 + stream)
            dfs = DistributedFileSystem()
            seed = LinearScanRepository()
            fleet = [
                ("serial-2", ShardedRepository(num_shards=2)),
                ("replicated-2x2", ShardedRepository(num_shards=2,
                                                     executor="processes",
                                                     replicas=2)),
                ("serial-8", ShardedRepository(num_shards=8)),
                ("replicated-8x2", ShardedRepository(num_shards=8,
                                                     executor="processes",
                                                     replicas=2)),
            ]
            log = RepositoryLog(dfs)
            log.attach(fleet[1][1])
            twins = {}
            tick = 0
            try:
                with contextlib.ExitStack() as faults:
                    # One seed-chosen kill per replicated pool, armed for
                    # the whole stream: the victim replica dies as its
                    # Nth message is sent — maybe during a flush, maybe
                    # mid-probe, maybe never (if the stream is too
                    # short), but the same way on every run of the seed.
                    for name, repo in fleet:
                        pool = repo.worker_pool
                        if pool is None:
                            continue
                        faults.enter_context(FaultSchedule.from_seed(
                            17000 + stream, range(repo.num_shards),
                            replicas=2, kills=1, pool=pool))
                    for step in range(rng.randint(8, 14)):
                        context = f"stream={stream} step={step}"
                        action = rng.random()
                        if action < 0.50 or not twins:
                            plan = _pool_plan(plan_pool,
                                              rng.randrange(len(plan_pool)),
                                              rng.choice([0, 0, 1]))
                            stat_values = dict(
                                input_bytes=rng.choice([1000, 2000, 10000]),
                                output_bytes=rng.choice([10, 100, 1000]),
                                producing_job_time=rng.choice([1.0, 5.0,
                                                               60.0]),
                                created_tick=tick,
                            )
                            path = f"/stored/r{stream}-{step}"
                            # One EntryStats per twin (unlike the older
                            # lock-step arms, which share one object):
                            # use-stamps now travel into the worker
                            # replicas as values, so each repository's
                            # entry must carry its own per-repo history.
                            entries = [RepositoryEntry(plan, path,
                                                       EntryStats(
                                                           **stat_values))
                                       for _ in range(len(fleet) + 1)]
                            for (_, repo), entry in zip(fleet, entries):
                                repo.insert(entry)
                            seed.insert(entries[-1])
                            twins[path] = entries
                        elif action < 0.62:
                            victim = seed.scan()[rng.randrange(len(seed))]
                            entries = twins.pop(victim.output_path)
                            for (_, repo), entry in zip(fleet, entries):
                                repo.remove(entry)
                            seed.remove(entries[-1])
                        elif action < 0.72:
                            tick += 1
                            victim = seed.scan()[rng.randrange(len(seed))]
                            for (_, repo), entry in zip(
                                    fleet, twins[victim.output_path]):
                                repo.record_use(entry, tick)
                        else:
                            probes = [_pool_plan(plan_pool,
                                                 rng.randrange(len(plan_pool)),
                                                 rng.choice([0, 0, 1]))
                                      for _ in range(rng.randint(1, 3))]
                            expected = [_first_match_path(seed.scan(), probe)
                                        for probe in probes]
                            serial_candidates = None
                            for name, repo in fleet:
                                singly = [repo.match_candidates(probe)
                                          for probe in probes]
                                batched = repo.match_candidates_batch(probes)
                                assert [[e.output_path for e in cs]
                                        for cs in batched] \
                                    == [[e.output_path for e in cs]
                                        for cs in singly], (context, name)
                                firsts = [_first_match_path(cs, probe)
                                          for cs, probe in zip(singly,
                                                               probes)]
                                assert firsts == expected, (context, name)
                                paths = [[e.output_path for e in cs]
                                         for cs in singly]
                                if serial_candidates is None:
                                    serial_candidates = paths
                                else:
                                    assert paths == serial_candidates, \
                                        (context, name)
                        for name, repo in fleet:
                            assert [e.output_path for e in repo.scan()] == \
                                [e.output_path for e in seed.scan()], \
                                (context, name)
                # Schedules released: end-of-stream invariants. Every
                # replicated shard's set — survivors promoted warm,
                # replacements backfilled, or whole sets cold-rebuilt —
                # must hold bit-identical state images of the right size.
                for name, repo in fleet:
                    pool = repo.worker_pool
                    if pool is None:
                        continue
                    for shard_id, size in repo.shard_sizes().items():
                        if size == 0 and pool.replica_count(shard_id) == 0:
                            continue
                        states = pool.replica_states(shard_id)
                        assert len(states) == repo.replicas, \
                            (stream, name, shard_id)
                        assert all(state == states[0] for state in states), \
                            (stream, name, shard_id)
                        assert len(states[0]) == size, \
                            (stream, name, shard_id)
                        assert pool.worker_size(shard_id) == size, \
                            (stream, name, shard_id)
                # The executor-independent stats agree with the serial
                # twin of the same shard count; replication only adds
                # its own counters on top.
                for serial_name, replicated_name in [(0, 1), (2, 3)]:
                    serial_stats = {
                        shard.stats.shard_id: (shard.stats.probes,
                                               shard.stats.candidates_returned,
                                               shard.stats.occupancy)
                        for shard in fleet[serial_name][1].partitions()}
                    replicated_stats = {
                        shard.stats.shard_id: (shard.stats.probes,
                                               shard.stats.candidates_returned,
                                               shard.stats.occupancy)
                        for shard in fleet[replicated_name][1].partitions()}
                    assert replicated_stats == serial_stats, (stream,
                                                              replicated_name)
                log.checkpoint()
                _assert_reload_matches_live(dfs, fleet[1][1], plan_pool, rng,
                                            f"stream={stream} reload")
            finally:
                log.close()
                for _, repo in fleet:
                    repo.close()
    finally:
        cancel_guard()


# --- Worker-owned durability: crash matrix over the checkpoint protocol -------
#
# The seventh fault family (PR 10): the durable protocol between the
# front-end RepositoryLog and the owning workers has four windows a
# crash can land in — before the combined append is delivered, after the
# segment append is durable but before the ack, after the section
# rewrite is durable but before the ack, and after the ack but before
# the manifest swap. One window per stream, each window exercised at
# both shard counts across the 12 streams: whatever the window, the
# coordinator must heal inside the same flush/compact, the stream must
# continue in lock-step with the serial twin and the frozen seed, and
# reload must be bit-identical to the live repository — the only
# on-DFS residue being orphan/stale data the loader already tolerates.


def test_property_worker_durable_crash_matrix(plan_pool):
    cancel_guard = install_hang_guard(600.0)
    try:
        for stream in range(12):
            window = ProtocolWindowKill.WINDOWS[stream % 4]
            num_shards = (2, 8)[stream % 2]
            rng = random.Random(19000 + stream)
            dfs = DistributedFileSystem()
            seed = LinearScanRepository()
            # Entered before the repositories exist: the worker-side
            # windows patch DfsClient at class level, and forked workers
            # only see patches installed before the fork.
            with ProtocolWindowKill(window) as crash:
                fleet = [
                    ("serial", ShardedRepository(num_shards=num_shards)),
                    ("worker-durable",
                     ShardedRepository(num_shards=num_shards,
                                       executor="processes")),
                ]
                live = fleet[1][1]
                log = RepositoryLog(dfs)
                log.attach(live)
                twins = {}
                plans = {}
                tick = 0

                def insert(tag):
                    plan = _pool_plan(plan_pool,
                                      rng.randrange(len(plan_pool)),
                                      rng.choice([0, 0, 1]))
                    stat_values = dict(
                        input_bytes=rng.choice([1000, 2000, 10000]),
                        output_bytes=rng.choice([10, 100, 1000]),
                        producing_job_time=rng.choice([1.0, 5.0, 60.0]),
                        created_tick=tick,
                    )
                    path = f"/stored/c{stream}-{tag}"
                    # One EntryStats per twin: use-stamps travel into
                    # the workers as values, so each repository's entry
                    # carries its own per-repo history.
                    entries = [RepositoryEntry(plan, path,
                                               EntryStats(**stat_values))
                               for _ in range(len(fleet) + 1)]
                    for (_, repo), entry in zip(fleet, entries):
                        repo.insert(entry)
                    seed.insert(entries[-1])
                    twins[path] = entries
                    plans[path] = plan

                def run_steps(count, phase):
                    nonlocal tick
                    for step in range(count):
                        context = (f"stream={stream} window={window} "
                                   f"{phase}={step}")
                        action = rng.random()
                        if action < 0.50 or not twins:
                            insert(f"{phase}-{step}")
                        elif action < 0.62:
                            victim = seed.scan()[rng.randrange(len(seed))]
                            entries = twins.pop(victim.output_path)
                            plans.pop(victim.output_path)
                            for (_, repo), entry in zip(fleet, entries):
                                repo.remove(entry)
                            seed.remove(entries[-1])
                        elif action < 0.72:
                            tick += 1
                            victim = seed.scan()[rng.randrange(len(seed))]
                            for (_, repo), entry in zip(
                                    fleet, twins[victim.output_path]):
                                repo.record_use(entry, tick)
                        else:
                            probes = [
                                _pool_plan(plan_pool,
                                           rng.randrange(len(plan_pool)),
                                           rng.choice([0, 0, 1]))
                                for _ in range(rng.randint(1, 3))]
                            expected = [
                                _first_match_path(seed.scan(), probe)
                                for probe in probes]
                            for name, repo in fleet:
                                candidates = [repo.match_candidates(probe)
                                              for probe in probes]
                                firsts = [_first_match_path(cs, probe)
                                          for cs, probe in zip(candidates,
                                                               probes)]
                                assert firsts == expected, (context, name)
                        for name, repo in fleet:
                            assert [e.output_path for e in repo.scan()] == \
                                [e.output_path for e in seed.scan()], \
                                (context, name)

                try:
                    assert live.worker_pool.durable_enabled, stream
                    run_steps(rng.randint(6, 10), "pre")
                    if not twins:
                        insert("tail")
                    # Probing with every live entry's plan consults (and
                    # therefore spawns) the worker of every partition
                    # holding pending records or members — the kill
                    # windows need the durable protocol to actually run,
                    # and flush_durable/compact_sections never spawn.
                    live.match_candidates_batch(list(plans.values()))
                    if window in ("segment-append", "segment-appended"):
                        log.flush()
                    else:
                        log.compact()
                    assert crash.fired, (stream, window)
                    if window == "segment-append":
                        # Died before delivery: nothing reached the
                        # segment, so the reconcile keeps every record
                        # and the fallback re-append loses nothing.
                        assert crash.killed, (stream, window)
                        assert log.reconciled_records == 0, (stream,
                                                             window)
                    elif window == "segment-appended":
                        # The double-append window: the records landed
                        # but the ack did not, so the watermark
                        # reconcile must have dropped exactly the
                        # landed lines — no seq appears twice in any
                        # segment.
                        assert log.reconciled_records > 0, (stream,
                                                            window)
                        for label in sorted(log._segment_records):
                            segment = log._segment_path(label)
                            if not dfs.exists(segment):
                                continue
                            seqs = [json.loads(line)["seq"]
                                    for line in dfs.read_lines(segment)]
                            assert len(seqs) == len(set(seqs)), \
                                (stream, window, label)
                    elif window == "acked":
                        # The ack arrived before the kill, so at least
                        # one section rewrite was worker-owned and the
                        # manifest swap (front-end work) completed.
                        assert crash.killed, (stream, window)
                        assert log.worker_sections >= 1, (stream, window)
                    _assert_reload_matches_live(
                        dfs, live, plan_pool, rng,
                        f"stream={stream} window={window} mid")
                    # The coordinator healed around the corpse inside
                    # the same flush/compact; the stream continues and
                    # the next probe of the dead shard recovers it.
                    run_steps(rng.randint(4, 8), "post")
                    log.checkpoint()
                    _assert_reload_matches_live(
                        dfs, live, plan_pool, rng,
                        f"stream={stream} window={window} reload")
                finally:
                    log.close()
                    for _, repo in fleet:
                        repo.close()
    finally:
        cancel_guard()


# --- Incremental persistence: snapshot+log replay is exact (PR 4) -------------
#
# The fifth lock-step family: a repository with an attached RepositoryLog
# is mutated through randomized insert/remove/use streams, and after
# every checkpoint — including simulated crashes that tear the final log
# line mid-append — load_repository must rebuild a repository that is
# bit-identical to the live one: same scan order, same per-entry
# statistics, same find_equivalent answers, same match-candidate
# sequences, same shard layout.


def _entry_state(repository):
    """Everything the replay must reproduce bit-identically, per entry,
    in scan order."""
    state = []
    for entry in repository.scan():
        stats = entry.stats
        state.append((
            entry.output_path, entry.fingerprint, entry.origin,
            entry.owns_file, dict(entry.input_versions),
            stats.input_bytes, stats.output_bytes, stats.producing_job_time,
            stats.map_time, stats.reduce_time, stats.created_tick,
            stats.last_used_tick, stats.use_count,
        ))
    return state


def _assert_reload_matches_live(dfs, live, plan_pool, rng, context):
    reloaded = load_repository(dfs)
    assert type(reloaded) is type(live), context
    assert _entry_state(reloaded) == _entry_state(live), context
    if isinstance(live, ShardedRepository):
        assert reloaded.num_shards == live.num_shards, context
        # Shard membership must match; within-shard iteration order is
        # insertion order, which is not observable (probes re-sort into
        # the global scan order) and legitimately differs after replay.
        assert [sorted(e.output_path for e in shard)
                for shard in reloaded.partitions()] == \
            [sorted(e.output_path for e in shard)
             for shard in live.partitions()], context
    probe = _pool_plan(plan_pool, rng.randrange(len(plan_pool)),
                       rng.choice([0, 0, 1]))
    live_found = live.find_equivalent(probe)
    reloaded_found = reloaded.find_equivalent(probe)
    assert (reloaded_found is None) == (live_found is None), context
    if live_found is not None:
        assert reloaded_found.output_path == live_found.output_path, context
    assert [e.output_path for e in reloaded.match_candidates(probe)] == \
        [e.output_path for e in live.match_candidates(probe)], context
    assert _first_match_path(reloaded.match_candidates(probe), probe) == \
        _first_match_path(live.match_candidates(probe), probe), context
    return reloaded


def _segment_paths(dfs, log):
    """The segment files the log has materialized so far."""
    return dfs.list_files(prefix=f"{log.log_path}.")


def test_property_log_replay_matches_live(plan_pool):
    """60 randomized mutation streams, each against a live repository
    with an attached RepositoryLog at a random compaction ratio; crash
    and reload at random points — per-segment torn tails and crashes
    between one shard's section rewrite and its segment truncation
    included."""
    for stream in range(60):
        rng = random.Random(4000 + stream)
        dfs = DistributedFileSystem()
        live = rng.choice([
            lambda: Repository(),
            lambda: ShardedRepository(num_shards=2),
            lambda: ShardedRepository(num_shards=8),
        ])()
        log = RepositoryLog(dfs, compact_ratio=rng.choice([0.25, 1.0, 8.0]))
        log.attach(live)
        tick = 0
        for step in range(rng.randint(8, 16)):
            context = f"stream={stream} step={step}"
            action = rng.random()
            if action < 0.55 or not len(live):
                plan = _pool_plan(plan_pool, rng.randrange(len(plan_pool)),
                                  rng.choice([0, 0, 1]))
                stats = EntryStats(
                    input_bytes=rng.choice([1000, 2000, 10000]),
                    output_bytes=rng.choice([10, 100, 1000]),
                    producing_job_time=rng.choice([1.0, 5.0, 60.0]),
                    created_tick=tick,
                )
                live.insert(RepositoryEntry(
                    plan, f"/stored/w{stream}-{step}", stats))
            elif action < 0.72:
                live.remove(live.scan()[rng.randrange(len(live))])
            else:
                tick += 1
                live.record_use(live.scan()[rng.randrange(len(live))], tick)
            if rng.random() < 0.45:
                before = {file: dfs.read_lines(file)
                          for file in _segment_paths(dfs, log)}
                outcome = log.checkpoint()
                crash = rng.random()
                reverted = None
                if outcome["compacted"] and crash < 0.35:
                    # Crash between one shard's section rewrite and its
                    # segment truncation: the old records come back, all
                    # at or below the new section's watermark.
                    label = rng.choice(outcome["compacted_shards"])
                    segment = segment_file_path(log.log_path, label)
                    old = before.get(segment, [])
                    if old:
                        dfs.write_lines(segment, old, overwrite=True)
                        reloaded = _assert_reload_matches_live(
                            dfs, live, plan_pool, rng, context + " (stale)")
                        assert reloaded.loader_report.stale_records \
                            == len(old), context
                        reverted = segment  # un-crash below
                elif crash < 0.7:
                    # Crash mid-append of the next record: one segment
                    # gains a torn final line, which replay must drop.
                    candidates = _segment_paths(dfs, log)
                    segment = (rng.choice(candidates) if candidates else
                               segment_file_path(log.log_path,
                                                 CATCHALL_LABEL))
                    dfs.append_lines(segment, ['{"seq": 10**9, "op'])
                    reloaded = _assert_reload_matches_live(
                        dfs, live, plan_pool, rng, context + " (torn)")
                    assert reloaded.loader_report.torn_tail_dropped == 1, \
                        context
                    # The live process did not actually crash: un-tear
                    # the tail so its next append stays well-formed.
                    dfs.write_lines(segment, dfs.read_lines(segment)[:-1],
                                    overwrite=True)
                else:
                    _assert_reload_matches_live(dfs, live, plan_pool, rng,
                                                context)
                if reverted is not None:
                    # Back to the live process's truncated reality.
                    dfs.write_lines(reverted, [], overwrite=True)
        log.checkpoint()
        _assert_reload_matches_live(dfs, live, plan_pool, rng,
                                    f"stream={stream} final")


def test_property_manager_survives_crash_reload():
    """Randomized workflow streams through two identical systems: one
    long-lived ReStore manager with incremental persistence, against a
    'crashy' twin that reloads its repository from snapshot+log before
    every submit (fresh manager each time). Decisions and outputs must
    be identical throughout — restart changes nothing."""
    for stream in range(8):
        rng = random.Random(11000 + stream)
        rows = [
            (rng.choice(["x", "y", "z"]), rng.randint(0, 50),
             rng.randint(0, 50), rng.choice(["p", "q"]))
            for _ in range(6)
        ]
        queries = []
        for q in range(rng.randint(2, 3)):
            transforms = [rng.choice(TRANSFORM_TEMPLATES)
                          for _ in range(rng.randint(0, 3))]
            tail = rng.choice(TAIL_TEMPLATES)
            queries.append(build_query(transforms, tail)
                           .replace("/out/result", f"/out/s{q}"))

        steady = PigSystem()
        steady.dfs.write_lines("/data/t", [encode_row(r, SCHEMA) for r in rows])
        steady_mgr = steady.restore(
            repository=ShardedRepository(num_shards=2),
            persistence=RepositoryLog(steady.dfs, compact_ratio=2.0))

        crashy = PigSystem()
        crashy.dfs.write_lines("/data/t", [encode_row(r, SCHEMA) for r in rows])
        # Materialized paths embed a per-manager prefix/counter; the
        # crashy side re-creates its manager per submit, so pin both to
        # keep its allocation sequence identical to the steady side's.
        crashy_prefix = "/restore/materialized/crashy"
        crashy_counter = itertools.count(1)

        for name_index, query in enumerate(queries):
            steady_mgr.submit(steady.compile(query, f"s{name_index}"))

            reloaded = load_repository(crashy.dfs)
            crashy_mgr = crashy.restore(
                repository=reloaded,
                persistence=RepositoryLog(crashy.dfs, compact_ratio=2.0))
            crashy_mgr._mat_prefix = crashy_prefix
            crashy_mgr._mat_counter = crashy_counter
            crashy_mgr.submit(crashy.compile(query, f"s{name_index}"))
            if rng.random() < 0.5:
                # Crash mid-append before the next restart: tear a
                # random segment's tail (the catch-all when none has
                # materialized yet — every manifest references it).
                base = crashy_mgr.persistence.log_path
                segments = crashy.dfs.list_files(prefix=f"{base}.")
                target = (rng.choice(segments) if segments else
                          segment_file_path(base, CATCHALL_LABEL))
                crashy.dfs.append_lines(target, ['{"seq": 10**9, "op'])

            label = f"stream={stream} query={name_index}"
            assert _report_shape(crashy_mgr) == _report_shape(steady_mgr), label
            out = f"/out/s{name_index}"
            assert crashy.dfs.read_lines(out) == steady.dfs.read_lines(out), \
                label


def _normalize(path, manager):
    """Materialized sub-job paths embed a per-manager instance counter;
    map them to a common prefix so two managers' decisions compare."""
    return path.replace(manager._mat_prefix, "/MAT")


def _report_shape(manager):
    report = manager.last_report
    repo = manager.repository
    return {
        "rewrites": [_normalize(repo.entry(eid).output_path, manager)
                     for _, eid in report.rewrites],
        "eliminated": len(report.eliminated_jobs),
        "injected": [(kind, _normalize(path, manager))
                     for _, kind, path in report.injected_stores],
        "registered": [_normalize(repo.entry(eid).output_path, manager)
                       for eid in report.registered_entries],
        "rejected": [_normalize(path, manager)
                     for path in report.rejected_candidates],
        "evicted": len(report.evicted_entries),
        "scan": [_normalize(e.output_path, manager) for e in repo.scan()],
    }


def test_property_manager_decisions_match_seed_repository():
    """Randomized workflow streams through full ReStore managers — on
    the indexed repository, on sharded repositories (2 and 8 shards),
    and on the frozen seed linear scan — must make identical
    rewrite/eliminate/register decisions and produce identical outputs.
    The indexed and sharded managers must additionally agree on the
    match counters (the seed tries more candidates, so its skip counts
    legitimately differ)."""
    for stream in range(25):
        rng = random.Random(7000 + stream)
        rows = [
            (rng.choice(["x", "y", "z"]), rng.randint(0, 50),
             rng.randint(0, 50), rng.choice(["p", "q"]))
            for _ in range(6)
        ]
        queries = []
        for q in range(rng.randint(2, 3)):
            transforms = [rng.choice(TRANSFORM_TEMPLATES)
                          for _ in range(rng.randint(0, 3))]
            tail = rng.choice(TAIL_TEMPLATES)
            queries.append(build_query(transforms, tail)
                           .replace("/out/result", f"/out/s{q}"))

        managers = []
        repositories = (Repository(), ShardedRepository(num_shards=2),
                        ShardedRepository(num_shards=8),
                        LinearScanRepository())
        for repository in repositories:
            system = PigSystem()
            system.dfs.write_lines(
                "/data/t", [encode_row(r, SCHEMA) for r in rows])
            manager = system.restore(repository=repository)
            shapes, counters = [], []
            for name_index, query in enumerate(queries):
                manager.submit(system.compile(query, f"s{name_index}"))
                shapes.append(_report_shape(manager))
                counters.append(manager.last_report.match_counters.as_dict())
            outputs = {f"/out/s{q}": system.dfs.read_lines(f"/out/s{q}")
                       for q in range(len(queries))}
            managers.append((shapes, outputs, counters))

        seed_shapes, seed_outputs, _ = managers[-1]
        indexed_counters = managers[0][2]
        for (shapes, outputs, counters), repository in zip(managers[:-1],
                                                           repositories[:-1]):
            label = f"stream={stream} repo={type(repository).__name__}"
            assert shapes == seed_shapes, label
            assert outputs == seed_outputs, label
            # Indexed and sharded managers see identical candidate
            # sequences, so their skip accounting must match too.
            assert counters == indexed_counters, label


# --- The savings ranker is safe (PR 3) ----------------------------------------
#
# The third lock-step arm: the same randomized workflow streams, driven
# through managers whose matcher tries candidates best-estimated-savings
# first. Two guarantees, per stream:
#
# * every rewrite the savings manager APPLIES still passes
#   find_containment at application time (checked by wrapping the
#   manager's apply_rewrite for the duration of the test);
# * outputs are byte-identical to the structural run's and the total
#   simulated cost (sum of all job ETs over the whole stream) is never
#   worse — reordering the walk may change which entry serves a rewrite,
#   but only ever for an equivalent-or-cheaper one.


def test_property_savings_ranker_streams_are_safe():
    original_apply = manager_module.apply_rewrite
    applied_invalid = []

    def checked_apply(job, match, entry, dfs):
        if find_containment(entry.plan, job.plan) is None:
            applied_invalid.append((job.job_id, entry.entry_id))
        return original_apply(job, match, entry, dfs)

    manager_module.apply_rewrite = checked_apply
    try:
        for stream in range(15):
            rng = random.Random(9000 + stream)
            rows = [
                (rng.choice(["x", "y", "z"]), rng.randint(0, 50),
                 rng.randint(0, 50), rng.choice(["p", "q"]))
                for _ in range(6)
            ]
            queries = []
            for q in range(rng.randint(2, 4)):
                transforms = [rng.choice(TRANSFORM_TEMPLATES)
                              for _ in range(rng.randint(0, 3))]
                tail = rng.choice(TAIL_TEMPLATES)
                queries.append(build_query(transforms, tail)
                               .replace("/out/result", f"/out/s{q}"))

            arms = []
            for ranker, repository in ((None, Repository()),
                                       ("savings", Repository()),
                                       ("savings", ShardedRepository(num_shards=4))):
                system = PigSystem()
                system.dfs.write_lines(
                    "/data/t", [encode_row(r, SCHEMA) for r in rows])
                manager = system.restore(repository=repository, ranker=ranker)
                total_cost = 0.0
                rewrites = 0
                for name_index, query in enumerate(queries):
                    result = manager.submit(system.compile(query, f"s{name_index}"))
                    total_cost += result.total_execution_time
                    rewrites += manager.last_report.num_rewrites
                    # Every applied rewrite is in the savings ledger.
                    assert len(manager.last_report.ranking) == \
                        manager.last_report.num_rewrites
                outputs = {f"/out/s{q}": system.dfs.read_lines(f"/out/s{q}")
                           for q in range(len(queries))}
                arms.append((outputs, total_cost, rewrites))

            label = f"stream={stream}"
            assert not applied_invalid, (label, applied_invalid)
            (structural_out, structural_cost, _) = arms[0]
            for outputs, total_cost, _ in arms[1:]:
                assert outputs == structural_out, label
                assert total_cost <= structural_cost + 1e-9, (
                    label, total_cost, structural_cost)
            # Both savings arms (indexed and sharded) agree with each other.
            assert arms[1] == arms[2], label
    finally:
        manager_module.apply_rewrite = original_apply


# --- Async ingest is invisible (PR 8) ------------------------------------------
#
# The sixth lock-step family: the same randomized workflow streams,
# driven through managers whose registrations drain on a background
# registrar thread (``ingest="async"``) — against the inline indexed
# manager and the frozen seed. Registration is captured on the submit
# path and applied later by the *same* code inline mode runs, so with a
# ``flush()`` barrier before every observation the decisions must be
# bit-identical: rewrites, eliminations, injected stores, registrations,
# retention-policy rejections, Rule 3/4 evictions (the sweep replays at
# the captured tick), scan orders, and outputs. A tight retention window
# plus mid-stream input reseeds keeps the eviction rules genuinely
# exercised, and a durable async arm must checkpoint to a bit-identical
# reload.


def _ingest_shape(manager):
    """Like _report_shape, but safe under eviction: entry ids registered
    earlier in a submit may be swept at its end, so counts stand in for
    dereferenced paths (the scan list still pins the full end state)."""
    report = manager.last_report
    return {
        "rewrites": len(report.rewrites),
        "eliminated": len(report.eliminated_jobs),
        "injected": [(kind, _normalize(path, manager))
                     for _, kind, path in report.injected_stores],
        "registered": len(report.registered_entries),
        "rejected": [_normalize(path, manager)
                     for path in report.rejected_candidates],
        "evicted": len(report.evicted_entries),
        "scan": [_normalize(e.output_path, manager)
                 for e in manager.repository.scan()],
    }


def test_property_async_ingest_matches_inline_and_seed():
    from repro.restore import HeuristicRetentionPolicy

    for stream in range(8):
        rng = random.Random(21000 + stream)
        rows = [
            (rng.choice(["x", "y", "z"]), rng.randint(0, 50),
             rng.randint(0, 50), rng.choice(["p", "q"]))
            for _ in range(6)
        ]
        reseed_rows = [
            (rng.choice(["x", "y", "z"]), rng.randint(0, 50),
             rng.randint(0, 50), rng.choice(["p", "q"]))
            for _ in range(6)
        ]
        queries = []
        for q in range(rng.randint(2, 4)):
            transforms = [rng.choice(TRANSFORM_TEMPLATES)
                          for _ in range(rng.randint(0, 3))]
            tail = rng.choice(TAIL_TEMPLATES)
            queries.append(build_query(transforms, tail)
                           .replace("/out/result", f"/out/s{q}"))
        window = rng.choice([1, 2, 3])
        reseed_at = (rng.randrange(1, len(queries))
                     if rng.random() < 0.5 else None)

        arms = [
            ("seed-inline", lambda: LinearScanRepository(), {}, False),
            ("indexed-inline", lambda: Repository(), {}, False),
            ("indexed-async", lambda: Repository(),
             dict(ingest="async"), False),
            ("sharded2-async", lambda: ShardedRepository(num_shards=2),
             dict(ingest="async", ingest_batch_size=4), False),
            ("durable-async", lambda: Repository(),
             dict(ingest="async"), True),
        ]
        results = {}
        for name, factory, kwargs, durable in arms:
            system = PigSystem()
            system.dfs.write_lines(
                "/data/t", [encode_row(r, SCHEMA) for r in rows])
            if durable:
                kwargs = dict(kwargs,
                              persistence=RepositoryLog(system.dfs,
                                                        compact_ratio=2.0))
            manager = system.restore(
                repository=factory(),
                retention=HeuristicRetentionPolicy(window_ticks=window),
                **kwargs)
            try:
                shapes, counters = [], []
                for name_index, query in enumerate(queries):
                    if name_index == reseed_at:
                        # Input change mid-stream: Rule 4 must evict the
                        # stale entries — in every arm, at the same tick.
                        system.dfs.write_lines(
                            "/data/t",
                            [encode_row(r, SCHEMA) for r in reseed_rows],
                            overwrite=True)
                    manager.submit(system.compile(query, f"s{name_index}"))
                    # The drain barrier: every assertion below observes a
                    # fully-applied record stream (no-op for inline arms).
                    manager.flush()
                    shapes.append(_ingest_shape(manager))
                    counters.append(
                        manager.last_report.match_counters.as_dict())
                outputs = {f"/out/s{q}": system.dfs.read_lines(f"/out/s{q}")
                           for q in range(len(queries))}
                if durable:
                    # checkpoint_every=1: after the final flush the log
                    # is current; the reload must be bit-identical.
                    assert _entry_state(load_repository(system.dfs)) == \
                        _entry_state(manager.repository), \
                        f"stream={stream} arm={name} reload"
            finally:
                manager.close()
            results[name] = (shapes, outputs, counters)

        seed_shapes, seed_outputs, _ = results["seed-inline"]
        indexed_counters = results["indexed-inline"][2]
        for name in ("indexed-inline", "indexed-async", "sharded2-async",
                     "durable-async"):
            shapes, outputs, counters = results[name]
            label = f"stream={stream} arm={name}"
            assert shapes == seed_shapes, label
            assert outputs == seed_outputs, label
            # Indexed and sharded arms see identical candidate
            # sequences, async or not: skip accounting must match.
            assert counters == indexed_counters, label
