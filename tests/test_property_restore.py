"""Property-based tests for ReStore's core invariants.

The central one: **reuse never changes results**. A random pipeline query
is generated, executed on a plain system and on a ReStore system twice
(populate + reuse); all three outputs must be byte-identical.
"""

import pytest
from hypothesis import assume, given, HealthCheck, settings, strategies as st

from repro import PigSystem
from repro.data import DataType, encode_row, Field, Schema
from repro.logical import build_logical_plan
from repro.physical import logical_to_physical
from repro.piglatin import parse_query
from repro.restore.matcher import contains, find_containment, pairwise_plan_traversal

SCHEMA = Schema(
    [
        Field("k", DataType.CHARARRAY),
        Field("a", DataType.INT),
        Field("b", DataType.INT),
        Field("c", DataType.CHARARRAY),
    ]
)

_rows = st.lists(
    st.tuples(
        st.sampled_from(["x", "y", "z", "w"]),
        st.integers(0, 50),
        st.integers(0, 50),
        st.sampled_from(["p", "q", "r"]),
    ),
    min_size=0,
    max_size=30,
)

# A random linear pipeline: load -> transforms -> optional blocking ->
# optional aggregate -> store.
_transforms = st.lists(
    st.sampled_from(
        [
            "{out} = filter {inp} by a > 10;",
            "{out} = filter {inp} by b < 40;",
            "{out} = foreach {inp} generate k, a, b, c;",
            "{out} = foreach {inp} generate k, a + b as a, b, c;",
            "{out} = distinct {inp};",
        ]
    ),
    min_size=0,
    max_size=3,
)

_tails = st.sampled_from(
    [
        "",
        "{out} = group {inp} by k;"
        "{out2} = foreach {out} generate group, COUNT({inp});",
        "{out} = group {inp} by k;"
        "{out2} = foreach {out} generate group, SUM({inp}.a);",
        "{out} = order {inp} by k;",
    ]
)


def build_query(transforms, tail):
    lines = ["A = load '/data/t' as (k:chararray, a:int, b:int, c:chararray);"]
    current = "A"
    for index, template in enumerate(transforms):
        out = f"T{index}"
        lines.append(template.format(inp=current, out=out))
        current = out
    if tail:
        out = "G"
        out2 = "H"
        lines.append(tail.format(inp=current, out=out, out2=out2))
        current = out2 if "{out2}" in tail else out
    lines.append(f"store {current} into '/out/result';")
    return "\n".join(lines)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=_rows, transforms=_transforms, tail=_tails)
def test_property_reuse_preserves_results(rows, transforms, tail):
    query = build_query(transforms, tail)

    plain = PigSystem()
    plain.dfs.write_lines("/data/t", [encode_row(r, SCHEMA) for r in rows])
    plain.run(query)
    expected = plain.dfs.read_lines("/out/result")

    reusing = PigSystem()
    reusing.dfs.write_lines("/data/t", [encode_row(r, SCHEMA) for r in rows])
    restore = reusing.restore()
    restore.submit(reusing.compile(query))
    assert reusing.dfs.read_lines("/out/result") == expected

    # Second submission reuses stored outputs — results must not change.
    restore.submit(reusing.compile(query))
    assert reusing.dfs.read_lines("/out/result") == expected


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(transforms=_transforms, tail=_tails)
def test_property_plan_contains_itself(transforms, tail):
    # Bare Load->Store plans are excluded: they have no valid match
    # frontier (rewriting a Load with a Load is useless by design).
    assume(transforms or tail)
    query = build_query(transforms, tail)
    plan_a = logical_to_physical(build_logical_plan(parse_query(query)))
    plan_b = logical_to_physical(build_logical_plan(parse_query(query)))
    assert contains(plan_a, plan_b)
    assert pairwise_plan_traversal(plan_b, plan_a)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(transforms_a=_transforms, tail_a=_tails,
       transforms_b=_transforms, tail_b=_tails)
def test_property_matchers_agree(transforms_a, tail_a, transforms_b, tail_b):
    assume(transforms_a or tail_a)  # trivial entries are never registered
    entry = logical_to_physical(
        build_logical_plan(parse_query(build_query(transforms_a, tail_a))))
    target = logical_to_physical(
        build_logical_plan(parse_query(build_query(transforms_b, tail_b))))
    assert (find_containment(entry, target) is not None) == (
        pairwise_plan_traversal(target, entry)
    )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=_rows, transforms=_transforms)
def test_property_prefix_queries_share_work(rows, transforms):
    """A query that extends another must be rewritten to reuse it (when
    the prefix stores a reusable whole-job or sub-job output)."""
    prefix_query = build_query(transforms, "")
    extended_query = build_query(
        transforms,
        "{out} = group {inp} by k;"
        "{out2} = foreach {out} generate group, COUNT({inp});",
    ).replace("/out/result", "/out/extended")

    system = PigSystem()
    system.dfs.write_lines("/data/t", [encode_row(r, SCHEMA) for r in rows])
    restore = system.restore()
    restore.submit(system.compile(prefix_query))
    restore.submit(system.compile(extended_query))

    check = PigSystem()
    check.dfs.write_lines("/data/t", [encode_row(r, SCHEMA) for r in rows])
    check.run(extended_query)
    assert (system.dfs.read_lines("/out/extended")
            == check.dfs.read_lines("/out/extended"))
