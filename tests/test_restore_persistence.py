"""Tests for repository persistence: save, reload, and reuse after restart."""

import json

import pytest

from repro import PigSystem
from repro.common.errors import RepositoryError
from repro.data import DataType, Field, Schema
from repro.physical.operators import POLoad
from repro.restore import (
    leaf_loads,
    load_repository,
    Repository,
    save_repository,
    ShardedRepository,
)
from repro.restore.matcher import contains, find_containment
from repro.restore.persistence import (
    entry_from_json,
    entry_to_json,
    MANIFEST_KEY,
    plan_from_json,
    plan_to_json,
    schema_from_json,
    schema_to_json,
)

from tests.helpers import Q1_TEXT, Q2_TEXT, seed_page_views, seed_users


def pigmix_system():
    system = PigSystem()
    seed_page_views(system.dfs)
    seed_users(system.dfs, include=range(6))
    return system


class TestSchemaRoundtrip:
    def test_scalar_schema(self):
        schema = Schema([Field("a", DataType.INT), Field("b", DataType.CHARARRAY)])
        assert schema_from_json(schema_to_json(schema)) == schema

    def test_bag_schema(self):
        element = Schema([Field("x", DataType.DOUBLE)])
        schema = Schema([Field("g", DataType.CHARARRAY),
                         Field("bag", DataType.BAG, element)])
        assert schema_from_json(schema_to_json(schema)) == schema

    def test_none_schema(self):
        assert schema_from_json(schema_to_json(None)) is None


class TestPlanRoundtrip:
    def _entry_plan(self, system):
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT.replace(
            "/data/users", "/data/users")))
        return restore.repository.scan()[0].plan

    def test_signatures_preserved(self):
        system = pigmix_system()
        # Build a real entry plan by running Q1 through ReStore.
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        plan = restore.repository.scan()[0].plan
        reloaded = plan_from_json(plan_to_json(plan))
        assert [op.signature() for op in reloaded.operators()] == [
            op.signature() for op in plan.operators()]

    def test_reloaded_plan_matches_like_original(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        for entry in restore.repository.scan():
            reloaded = plan_from_json(plan_to_json(entry.plan))
            q2 = system.compile(Q2_TEXT).topological_jobs()[0].plan
            assert contains(entry.plan, q2) == contains(reloaded, q2)

    def test_multi_store_plan_rejected(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        records = plan_to_json(restore.repository.scan()[0].plan)
        records.append(dict(records[-1]))  # duplicate the Store record
        with pytest.raises(RepositoryError):
            plan_from_json(records)


class TestEntryRoundtrip:
    def test_stats_and_metadata_preserved(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        entry = restore.repository.scan()[0]
        entry.stats.record_use(7)
        reloaded = entry_from_json(json.loads(json.dumps(entry_to_json(entry))))
        assert reloaded.output_path == entry.output_path
        assert reloaded.origin == entry.origin
        assert reloaded.owns_file == entry.owns_file
        assert reloaded.input_versions == entry.input_versions
        assert reloaded.stats.use_count == entry.stats.use_count
        assert reloaded.stats.producing_job_time == pytest.approx(
            entry.stats.producing_job_time)


class TestRestartScenario:
    def test_reuse_after_restart(self):
        """Save after Q1; 'restart' into a fresh ReStore; Q2 still reuses."""
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        save_repository(restore.repository, system.dfs)

        baseline = pigmix_system()
        baseline.run(Q2_TEXT)
        expected = baseline.dfs.read_lines("/out/L3_out")

        # A brand-new manager with the reloaded repository.
        reloaded_repo = load_repository(system.dfs)
        assert len(reloaded_repo) == len(restore.repository)
        fresh = system.restore(repository=reloaded_repo,
                               enable_registration=False, heuristic=None)
        fresh.submit(system.compile(Q2_TEXT))
        assert fresh.last_report.num_rewrites >= 1
        assert system.dfs.read_lines("/out/L3_out") == expected

    def test_scan_order_preserved(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        restore.submit(system.compile(Q2_TEXT))
        save_repository(restore.repository, system.dfs)
        reloaded = load_repository(system.dfs)
        original_paths = [e.output_path for e in restore.repository.scan()]
        reloaded_paths = [e.output_path for e in reloaded.scan()]
        assert reloaded_paths == original_paths

    def test_missing_file_loads_empty(self):
        system = PigSystem()
        assert len(load_repository(system.dfs)) == 0

    def test_save_is_deterministic(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        save_repository(restore.repository, system.dfs, "/restore/a")
        save_repository(restore.repository, system.dfs, "/restore/b")
        assert (system.dfs.read_lines("/restore/a")
                == system.dfs.read_lines("/restore/b"))


class TestIndexRoundtrip:
    """PR 1: fingerprints and the rebuilt indexes survive a restart."""

    def _saved_and_reloaded(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        restore.submit(system.compile(Q2_TEXT))
        save_repository(restore.repository, system.dfs)
        return system, restore.repository, load_repository(system.dfs)

    def test_fingerprints_roundtrip(self):
        _, original, reloaded = self._saved_and_reloaded()
        assert [e.fingerprint for e in reloaded.scan()] == \
            [e.fingerprint for e in original.scan()]

    def test_fingerprint_is_serialized(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        entry = restore.repository.scan()[0]
        assert entry_to_json(entry)["fingerprint"] == entry.fingerprint

    def test_stale_saved_fingerprint_is_recomputed(self):
        # The plan is authoritative: a stale persisted fingerprint (e.g.
        # a signature-canonicalization change in a newer release) must
        # not brick the restart — the reloaded entry re-derives its hash.
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        original = restore.repository.scan()[0]
        data = entry_to_json(original)
        data["fingerprint"] = "0" * 64
        with pytest.warns(RuntimeWarning, match="fingerprint"):
            reloaded = entry_from_json(data)
        assert reloaded.fingerprint == original.fingerprint

    def test_fingerprint_mismatch_is_counted_and_warned(self):
        """Satellite (PR 4): a stale saved fingerprint is recomputed —
        as before — but the drift is now observable: a warning fires and
        the loader report counts it."""
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        save_repository(restore.repository, system.dfs)
        lines = system.dfs.read_lines("/restore/repository.jsonl")
        doctored = []
        for line in lines:
            record = json.loads(line)
            record["fingerprint"] = "0" * 64
            doctored.append(json.dumps(record, sort_keys=True))
        system.dfs.write_lines("/restore/repository.jsonl", doctored,
                               overwrite=True)
        with pytest.warns(RuntimeWarning, match="fingerprint"):
            reloaded = load_repository(system.dfs)
        assert reloaded.loader_report.fingerprint_mismatches == len(lines)
        # The recomputed value still wins: indexes stay correct.
        assert [e.fingerprint for e in reloaded.scan()] == \
            [e.fingerprint for e in restore.repository.scan()]
        # The recovery path must survive an escalating warnings filter:
        # drift may never brick the restart.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            hardened = load_repository(system.dfs)
        assert hardened.loader_report.fingerprint_mismatches == len(lines)

    def test_clean_load_reports_no_mismatches(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        save_repository(restore.repository, system.dfs)
        reloaded = load_repository(system.dfs)
        report = reloaded.loader_report
        assert report.fingerprint_mismatches == 0
        assert report.format_version == 1
        assert report.entries_loaded == len(reloaded)
        assert "fingerprint mismatch" in report.describe()
        assert report.as_dict()["entries_loaded"] == len(reloaded)

    def test_missing_file_still_gets_a_loader_report(self):
        system = PigSystem()
        repo = load_repository(system.dfs)
        assert repo.loader_report.format_version is None
        assert repo.loader_report.entries_loaded == 0

    def test_legacy_record_without_fingerprint_loads(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        entry = restore.repository.scan()[0]
        data = entry_to_json(entry)
        del data["fingerprint"]
        assert entry_from_json(data).fingerprint == entry.fingerprint

    def test_reloaded_loads_are_real_poloads(self):
        _, original, reloaded = self._saved_and_reloaded()
        for entry in reloaded.scan():
            loads = entry.plan.loads()
            assert loads and all(isinstance(op, POLoad) for op in loads)
        assert [leaf_loads(e.plan) for e in reloaded.scan()] == \
            [leaf_loads(e.plan) for e in original.scan()]

    def test_reloaded_repository_finds_equivalents(self):
        _, original, reloaded = self._saved_and_reloaded()
        for entry in original.scan():
            found = reloaded.find_equivalent(entry.plan)
            assert found is not None
            assert found.output_path == entry.output_path

    def test_reloaded_match_candidates_agree(self):
        system, original, reloaded = self._saved_and_reloaded()
        job = system.compile(Q2_TEXT).topological_jobs()[0]
        assert [e.output_path for e in reloaded.match_candidates(job.plan)] \
            == [e.output_path for e in original.match_candidates(job.plan)]

    def test_inserts_and_evictions_after_reload_match_original(self):
        """A reloaded repository keeps behaving like the original through
        subsequent inserts and evictions: same scan order, same matches."""
        system, original, reloaded = self._saved_and_reloaded()
        # Subsequent insert: register a fresh entry in both.
        extra = system.restore()
        extra_query = Q1_TEXT.replace("'/out/L2_out'", "'/out/extra'")
        extra.submit(system.compile(extra_query))
        donors = [e for e in extra.repository.scan()]
        for donor in donors:
            for target in (original, reloaded):
                target.insert(entry_from_json(entry_to_json(donor)))
        assert [e.output_path for e in reloaded.scan()] == \
            [e.output_path for e in original.scan()]
        # Eviction: remove the same entry from both; orders must track.
        victim_path = original.scan()[0].output_path
        for target in (original, reloaded):
            victim = next(e for e in target.scan()
                          if e.output_path == victim_path)
            target.remove(victim)
        assert [e.output_path for e in reloaded.scan()] == \
            [e.output_path for e in original.scan()]
        job = system.compile(Q2_TEXT).topological_jobs()[0]
        assert [e.output_path for e in reloaded.match_candidates(job.plan)] \
            == [e.output_path for e in original.match_candidates(job.plan)]


class TestShardedPersistence:
    """PR 2: the v2 manifest + per-shard-section format, and backward
    compatibility of pre-shard v1 files with sharded deployments."""

    def _populated(self, repository):
        system = pigmix_system()
        restore = system.restore(repository=repository)
        restore.submit(system.compile(Q1_TEXT))
        restore.submit(system.compile(Q2_TEXT))
        return system, restore.repository

    def test_sharded_save_writes_manifest_and_sections(self):
        system, repository = self._populated(ShardedRepository(num_shards=4))
        save_repository(repository, system.dfs)
        lines = system.dfs.read_lines("/restore/repository.jsonl")
        manifest = json.loads(lines[0])
        assert manifest[MANIFEST_KEY] == 2
        assert manifest["num_shards"] == 4
        assert manifest["entries"] == len(repository) == len(lines) - 1
        # Section counts add up, and the body is grouped by shard:
        # positions within the file are contiguous runs per shard.
        assert sum(s["entries"] for s in manifest["sections"]) == len(repository)
        records = [json.loads(line) for line in lines[1:]]
        cursor = 0
        for section in manifest["sections"]:
            run = records[cursor:cursor + section["entries"]]
            cursor += section["entries"]
            for record in run:
                assert "position" in record and "entry" in record

    def test_sharded_roundtrip_preserves_order_and_layout(self):
        system, repository = self._populated(ShardedRepository(num_shards=4))
        save_repository(repository, system.dfs)
        reloaded = load_repository(system.dfs)
        assert isinstance(reloaded, ShardedRepository)
        assert reloaded.num_shards == 4
        assert [e.output_path for e in reloaded.scan()] == \
            [e.output_path for e in repository.scan()]
        assert [[e.output_path for e in shard] for shard in reloaded.partitions()] \
            == [[e.output_path for e in shard] for shard in repository.partitions()]

    def test_manifest_records_ranker_metadata(self):
        from repro.restore import SavingsRanker

        system, repository = self._populated(ShardedRepository(num_shards=4))
        save_repository(repository, system.dfs, "/restore/by-name",
                        ranker="savings")
        save_repository(repository, system.dfs, "/restore/by-instance",
                        ranker=SavingsRanker())
        for path in ("/restore/by-name", "/restore/by-instance"):
            manifest = json.loads(system.dfs.read_lines(path)[0])
            assert manifest["ranker"] == "savings"
        # Omitting the ranker omits the key (backward-compatible files).
        save_repository(repository, system.dfs, "/restore/bare")
        assert "ranker" not in json.loads(system.dfs.read_lines("/restore/bare")[0])

    def test_loader_surfaces_manifest_metadata(self):
        system, repository = self._populated(ShardedRepository(num_shards=4))
        save_repository(repository, system.dfs, ranker="savings")
        reloaded = load_repository(system.dfs)
        assert reloaded.manifest_metadata["ranker"] == "savings"
        assert reloaded.manifest_metadata["num_shards"] == 4
        # A freshly constructed repository has no manifest provenance.
        assert ShardedRepository(num_shards=2).manifest_metadata is None

    def test_ranker_metadata_does_not_change_reloaded_decisions(self):
        system, repository = self._populated(ShardedRepository(num_shards=4))
        save_repository(repository, system.dfs, "/restore/plain")
        save_repository(repository, system.dfs, "/restore/ranked",
                        ranker="savings")
        plain = load_repository(system.dfs, "/restore/plain")
        ranked = load_repository(system.dfs, "/restore/ranked")
        assert [e.output_path for e in ranked.scan()] == \
            [e.output_path for e in plain.scan()]

    def test_sharded_save_is_deterministic(self):
        system, repository = self._populated(ShardedRepository(num_shards=4))
        save_repository(repository, system.dfs, "/restore/a")
        save_repository(repository, system.dfs, "/restore/b")
        assert (system.dfs.read_lines("/restore/a")
                == system.dfs.read_lines("/restore/b"))

    def test_legacy_single_file_loads_into_sharded_repository(self):
        """Satellite: a pre-shard v1 JSONL file must load into a
        ShardedRepository with identical scan order and match decisions."""
        system, plain = self._populated(Repository())
        save_repository(plain, system.dfs)  # v1 single-file format
        migrated = load_repository(system.dfs,
                                   repository=ShardedRepository(num_shards=8))
        assert isinstance(migrated, ShardedRepository)
        assert [e.output_path for e in migrated.scan()] == \
            [e.output_path for e in plain.scan()]
        job = system.compile(Q2_TEXT).topological_jobs()[0]
        assert [e.output_path for e in migrated.match_candidates(job.plan)] \
            == [e.output_path for e in plain.match_candidates(job.plan)]
        for entry in plain.scan():
            found = migrated.find_equivalent(entry.plan)
            assert found is not None
            assert found.output_path == entry.output_path

    def test_legacy_reuse_through_migrated_manager(self):
        """End to end: v1 file -> sharded repository -> Q2 still reuses."""
        system, plain = self._populated(Repository())
        save_repository(plain, system.dfs)
        baseline = pigmix_system()
        baseline.run(Q2_TEXT)
        expected = baseline.dfs.read_lines("/out/L3_out")
        migrated = load_repository(system.dfs,
                                   repository=ShardedRepository(num_shards=4))
        fresh = system.restore(repository=migrated,
                               enable_registration=False, heuristic=None)
        fresh.submit(system.compile(Q2_TEXT))
        assert fresh.last_report.num_rewrites >= 1
        assert system.dfs.read_lines("/out/L3_out") == expected

    def test_sharded_file_loads_into_plain_repository(self):
        """Migration works in the other direction too."""
        system, repository = self._populated(ShardedRepository(num_shards=4))
        save_repository(repository, system.dfs)
        downgraded = load_repository(system.dfs, repository=Repository())
        assert type(downgraded) is Repository
        assert [e.output_path for e in downgraded.scan()] == \
            [e.output_path for e in repository.scan()]

    def test_truncated_sharded_file_rejected(self):
        system, repository = self._populated(ShardedRepository(num_shards=4))
        save_repository(repository, system.dfs)
        lines = system.dfs.read_lines("/restore/repository.jsonl")
        system.dfs.write_lines("/restore/truncated", lines[:-1], overwrite=True)
        with pytest.raises(RepositoryError):
            load_repository(system.dfs, "/restore/truncated")

    def test_future_format_version_rejected(self):
        system = pigmix_system()
        manifest = json.dumps({MANIFEST_KEY: 99, "num_shards": 2,
                               "entries": 0, "sections": []})
        system.dfs.write_lines("/restore/future", [manifest], overwrite=True)
        with pytest.raises(RepositoryError):
            load_repository(system.dfs, "/restore/future")
