"""Tests for repository persistence: save, reload, and reuse after restart."""

import json

import pytest

from repro import PigSystem
from repro.common.errors import RepositoryError
from repro.data import DataType, Field, Schema
from repro.restore import load_repository, save_repository
from repro.restore.matcher import contains, find_containment
from repro.restore.persistence import (
    entry_from_json,
    entry_to_json,
    plan_from_json,
    plan_to_json,
    schema_from_json,
    schema_to_json,
)

from tests.helpers import Q1_TEXT, Q2_TEXT, seed_page_views, seed_users


def pigmix_system():
    system = PigSystem()
    seed_page_views(system.dfs)
    seed_users(system.dfs, include=range(6))
    return system


class TestSchemaRoundtrip:
    def test_scalar_schema(self):
        schema = Schema([Field("a", DataType.INT), Field("b", DataType.CHARARRAY)])
        assert schema_from_json(schema_to_json(schema)) == schema

    def test_bag_schema(self):
        element = Schema([Field("x", DataType.DOUBLE)])
        schema = Schema([Field("g", DataType.CHARARRAY),
                         Field("bag", DataType.BAG, element)])
        assert schema_from_json(schema_to_json(schema)) == schema

    def test_none_schema(self):
        assert schema_from_json(schema_to_json(None)) is None


class TestPlanRoundtrip:
    def _entry_plan(self, system):
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT.replace(
            "/data/users", "/data/users")))
        return restore.repository.scan()[0].plan

    def test_signatures_preserved(self):
        system = pigmix_system()
        # Build a real entry plan by running Q1 through ReStore.
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        plan = restore.repository.scan()[0].plan
        reloaded = plan_from_json(plan_to_json(plan))
        assert [op.signature() for op in reloaded.operators()] == [
            op.signature() for op in plan.operators()]

    def test_reloaded_plan_matches_like_original(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        for entry in restore.repository.scan():
            reloaded = plan_from_json(plan_to_json(entry.plan))
            q2 = system.compile(Q2_TEXT).topological_jobs()[0].plan
            assert contains(entry.plan, q2) == contains(reloaded, q2)

    def test_multi_store_plan_rejected(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        records = plan_to_json(restore.repository.scan()[0].plan)
        records.append(dict(records[-1]))  # duplicate the Store record
        with pytest.raises(RepositoryError):
            plan_from_json(records)


class TestEntryRoundtrip:
    def test_stats_and_metadata_preserved(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        entry = restore.repository.scan()[0]
        entry.stats.record_use(7)
        reloaded = entry_from_json(json.loads(json.dumps(entry_to_json(entry))))
        assert reloaded.output_path == entry.output_path
        assert reloaded.origin == entry.origin
        assert reloaded.owns_file == entry.owns_file
        assert reloaded.input_versions == entry.input_versions
        assert reloaded.stats.use_count == entry.stats.use_count
        assert reloaded.stats.producing_job_time == pytest.approx(
            entry.stats.producing_job_time)


class TestRestartScenario:
    def test_reuse_after_restart(self):
        """Save after Q1; 'restart' into a fresh ReStore; Q2 still reuses."""
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        save_repository(restore.repository, system.dfs)

        baseline = pigmix_system()
        baseline.run(Q2_TEXT)
        expected = baseline.dfs.read_lines("/out/L3_out")

        # A brand-new manager with the reloaded repository.
        reloaded_repo = load_repository(system.dfs)
        assert len(reloaded_repo) == len(restore.repository)
        fresh = system.restore(repository=reloaded_repo,
                               enable_registration=False, heuristic=None)
        fresh.submit(system.compile(Q2_TEXT))
        assert fresh.last_report.num_rewrites >= 1
        assert system.dfs.read_lines("/out/L3_out") == expected

    def test_scan_order_preserved(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        restore.submit(system.compile(Q2_TEXT))
        save_repository(restore.repository, system.dfs)
        reloaded = load_repository(system.dfs)
        original_paths = [e.output_path for e in restore.repository.scan()]
        reloaded_paths = [e.output_path for e in reloaded.scan()]
        assert reloaded_paths == original_paths

    def test_missing_file_loads_empty(self):
        system = PigSystem()
        assert len(load_repository(system.dfs)) == 0

    def test_save_is_deterministic(self):
        system = pigmix_system()
        restore = system.restore()
        restore.submit(system.compile(Q1_TEXT))
        save_repository(restore.repository, system.dfs, "/restore/a")
        save_repository(restore.repository, system.dfs, "/restore/b")
        assert (system.dfs.read_lines("/restore/a")
                == system.dfs.read_lines("/restore/b"))
