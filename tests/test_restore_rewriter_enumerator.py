"""Unit tests for plan rewriting surgery and sub-job Store injection."""

import itertools

import pytest

from repro.common.errors import PlanError
from repro.logical import build_logical_plan
from repro.mrcompiler import compile_to_workflow
from repro.physical import logical_to_physical
from repro.physical.operators import POLoad, POSplit, POStore
from repro.piglatin import parse_query
from repro.restore import (
    AggressiveHeuristic,
    ConservativeHeuristic,
    NoHeuristic,
)
from repro.restore.enumerator import enumerate_and_inject
from repro.restore.heuristics import SubJobHeuristic
from repro.restore.matcher import find_containment
from repro.restore.rewriter import (
    apply_rewrite,
    classify_copy_stores,
    restamp_stages,
    skip_splits,
)
from repro.restore.repository import RepositoryEntry
from repro.restore.stats import EntryStats
from repro.dfs import DistributedFileSystem

from tests.helpers import Q1_TEXT, Q2_TEXT


def job_for(text, name="wf"):
    plan = logical_to_physical(build_logical_plan(parse_query(text)))
    workflow = compile_to_workflow(plan, name)
    return workflow, workflow.topological_jobs()[0]


def make_entry(text, output_path):
    plan = logical_to_physical(build_logical_plan(parse_query(text)))
    return RepositoryEntry(plan, output_path, EntryStats(1000, 10, 60.0))


PROJECT_PV = """
A = load '/data/page_views' as (user:chararray, timestamp:int,
    est_revenue:double, page_info:chararray, page_links:chararray);
B = foreach A generate user, est_revenue;
store B into '/stored/proj';
"""


class TestApplyRewrite:
    def _dfs_with(self, path):
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines(path, ["a\t1.0"])
        return dfs

    def test_subplan_replaced_by_load(self):
        workflow, job = job_for(Q1_TEXT)
        entry = make_entry(PROJECT_PV, "/stored/proj")
        match = find_containment(entry.plan, job.plan)
        dfs = self._dfs_with("/stored/proj")
        new_load = apply_rewrite(job, match, entry, dfs)
        loads = {load.path for load in job.plan.loads()}
        assert "/stored/proj" in loads
        assert "/data/page_views" not in loads  # old branch unreachable
        assert new_load.version == 1
        assert new_load.stage == "map"

    def test_rewrite_that_removes_shuffle_restamps_job(self):
        workflow, job = job_for(Q1_TEXT)
        entry = make_entry(Q1_TEXT.replace("/out/L2_out", "/stored/join"),
                           "/stored/join")
        match = find_containment(entry.plan, job.plan)
        dfs = self._dfs_with("/stored/join")
        apply_rewrite(job, match, entry, dfs)
        assert job.shuffle_op is None
        assert all(op.stage == "map" for op in job.plan.operators())
        # Plan degenerated to Load -> Store.
        kinds = [op.kind for op in job.plan.operators()]
        assert kinds == ["load", "store"]

    def test_rewrite_missing_output_defaults_version_zero(self):
        workflow, job = job_for(Q1_TEXT)
        entry = make_entry(PROJECT_PV, "/stored/missing")
        match = find_containment(entry.plan, job.plan)
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        new_load = apply_rewrite(job, match, entry, dfs)
        assert new_load.version == 0


class TestRestampStages:
    def test_multiple_blocking_ops_rejected(self):
        # Hand-build an illegal single-job plan with two blocking ops.
        text = (
            "A = load '/d' as (x:int);"
            "B = group A by x;"
            "C = foreach B generate group, COUNT(A);"
            "store C into '/o';"
        )
        workflow, job = job_for(text)
        # Fake a second blocking operator wired into the same plan.
        from repro.physical.operators import PODistinct

        store = job.plan.stores()[0]
        distinct = PODistinct(store.inputs[0])
        job.plan.replace_input(store, store.inputs[0], distinct)
        with pytest.raises(PlanError):
            restamp_stages(job)


class TestClassifyCopyStores:
    def test_normal_job_has_no_copies(self):
        _, job = job_for(Q1_TEXT)
        removable, kept = classify_copy_stores(job)
        assert removable == [] and kept == []

    def test_temp_copy_store_is_removable(self):
        workflow, job = job_for(Q2_TEXT)
        # Rewrite job1 completely: store(tmp) now reads a bare load.
        entry = make_entry(Q1_TEXT.replace("/out/L2_out", "/stored/join"),
                           "/stored/join")
        match = find_containment(entry.plan, job.plan)
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/stored/join", ["x\tx\t1.0"])
        apply_rewrite(job, match, entry, dfs)
        removable, kept = classify_copy_stores(job)
        assert len(removable) == 1
        assert kept == []
        store, load = removable[0]
        assert store.temporary
        assert load.path == "/stored/join"

    def test_final_copy_with_different_path_is_kept(self):
        _, job = job_for(Q1_TEXT)
        entry = make_entry(Q1_TEXT.replace("/out/L2_out", "/stored/join"),
                           "/stored/join")
        match = find_containment(entry.plan, job.plan)
        dfs = DistributedFileSystem(num_datanodes=3, replication=1)
        dfs.write_lines("/stored/join", ["x\tx\t1.0"])
        apply_rewrite(job, match, entry, dfs)
        removable, kept = classify_copy_stores(job)
        assert removable == []
        assert len(kept) == 1  # user output must still be produced

    def test_skip_splits_helper(self):
        _, job = job_for(Q1_TEXT)
        some_op = job.plan.stores()[0].inputs[0]
        split = POSplit(some_op)
        assert skip_splits(split) is some_op


class _OnlyFilters(SubJobHeuristic):
    name = "only-filters"

    def should_materialize(self, op):
        return op.kind == "filter"


class TestEnumerator:
    def _paths(self):
        counter = itertools.count(1)
        return lambda: f"/restore/test/m{next(counter)}"

    def test_injects_split_and_store(self):
        _, job = job_for(Q1_TEXT)
        candidates = enumerate_and_inject(job, AggressiveHeuristic(), self._paths())
        assert len(candidates) == 2  # the two projections (join feeds Store)
        for candidate in candidates:
            assert candidate.store.injected
            split = candidate.store.inputs[0]
            assert isinstance(split, POSplit) and split.injected
            # The split sits between the operator and its old consumers.
            assert split.inputs[0] is candidate.operator

    def test_injected_stage_matches_operator(self):
        text = (
            "A = load '/d' as (x:int, y:int);"
            "B = foreach A generate x;"
            "C = group B by x;"
            "D = foreach C generate group, COUNT(B);"
            "E = filter D by group > 0;"
            "store E into '/o';"
        )
        _, job = job_for(text)
        candidates = enumerate_and_inject(job, NoHeuristic(), self._paths())
        by_kind = {c.operator.kind: c for c in candidates}
        assert by_kind["foreach"].store.stage in ("map", "reduce")
        # The group's store runs on the reduce side.
        assert by_kind["group"].store.stage == "reduce"

    def test_store_fed_operator_skipped(self):
        # The operator feeding a Store is never re-materialized.
        text = (
            "A = load '/d' as (x:int);"
            "B = filter A by x > 0;"
            "store B into '/o';"
        )
        _, job = job_for(text)
        candidates = enumerate_and_inject(job, _OnlyFilters(), self._paths())
        assert candidates == []

    def test_injected_ops_not_reinjected(self):
        _, job = job_for(Q1_TEXT)
        first = enumerate_and_inject(job, AggressiveHeuristic(), self._paths())
        second = enumerate_and_inject(job, AggressiveHeuristic(), self._paths())
        assert len(first) == 2
        assert second == []  # consumers now read the injected splits

    def test_custom_heuristic_protocol(self):
        text = (
            "A = load '/d' as (x:int, y:int);"
            "B = filter A by x > 0;"
            "C = group B by y;"
            "D = foreach C generate group, COUNT(B);"
            "store D into '/o';"
        )
        _, job = job_for(text)
        candidates = enumerate_and_inject(job, _OnlyFilters(), self._paths())
        assert [c.operator.kind for c in candidates] == ["filter"]

    def test_heuristic_membership_table(self):
        conservative = ConservativeHeuristic()
        aggressive = AggressiveHeuristic()
        nh = NoHeuristic()

        class FakeOp:
            def __init__(self, kind):
                self.kind = kind

        assert conservative.should_materialize(FakeOp("filter"))
        assert conservative.should_materialize(FakeOp("foreach"))
        assert not conservative.should_materialize(FakeOp("join"))
        assert aggressive.should_materialize(FakeOp("join"))
        assert aggressive.should_materialize(FakeOp("cogroup"))
        assert not aggressive.should_materialize(FakeOp("union"))
        assert nh.should_materialize(FakeOp("union"))
        assert not nh.should_materialize(FakeOp("load"))
        assert not nh.should_materialize(FakeOp("split"))
