"""Tests for the PigSystem facade and the EXPLAIN tool."""

import pytest

from repro import PigSystem
from repro.data import DataType, Field, Schema
from repro.tools import explain

SCHEMA = Schema([Field("x", DataType.INT), Field("y", DataType.CHARARRAY)])
QUERY = (
    "A = load '/data/t' as (x:int, y:chararray);"
    "B = filter A by x > 1;"
    "store B into '/out/r';"
)


class TestPigSystem:
    def test_write_table_and_run(self):
        system = PigSystem()
        system.write_table("/data/t", [(1, "a"), (2, "b"), (3, "c")], SCHEMA)
        result = system.run(QUERY)
        assert system.dfs.read_lines("/out/r") == ["2\tb", "3\tc"]
        assert result.total_time > 0

    def test_compile_names_are_unique(self):
        system = PigSystem()
        first = system.compile(QUERY, "same")
        second = system.compile(QUERY, "same")
        assert first.name != second.name

    def test_content_addressed_temp_paths_stable(self):
        system = PigSystem()
        system.write_table("/data/t", [(1, "a")], SCHEMA)
        two_job_query = (
            "A = load '/data/t' as (x:int, y:chararray);"
            "B = group A by y;"
            "C = foreach B generate group, COUNT(A);"
            "D = order C by group;"
            "store D into '/out/r';"
        )
        first = system.compile(two_job_query)
        second = system.compile(two_job_query)
        assert first.temp_paths == second.temp_paths

    def test_temp_paths_change_when_data_changes(self):
        system = PigSystem()
        system.write_table("/data/t", [(1, "a")], SCHEMA)
        two_job_query = (
            "A = load '/data/t' as (x:int, y:chararray);"
            "B = group A by y;"
            "C = foreach B generate group, COUNT(A);"
            "D = order C by group;"
            "store D into '/out/r';"
        )
        first = system.compile(two_job_query)
        system.write_table("/data/t", [(9, "z")], SCHEMA)  # version bump
        second = system.compile(two_job_query)
        assert first.temp_paths != second.temp_paths

    def test_with_scale_shares_dfs(self):
        system = PigSystem()
        system.write_table("/data/t", [(1, "a")], SCHEMA)
        scaled = system.with_scale(100.0)
        assert scaled.dfs is system.dfs
        assert scaled.cost_model.config.scale == 100.0
        assert system.cost_model.config.scale == 1.0

    def test_restore_binds_cluster(self):
        system = PigSystem()
        restore = system.restore()
        assert restore.dfs is system.dfs
        assert restore.clock is system.clock

    def test_run_uses_current_dataset_version(self):
        system = PigSystem()
        system.write_table("/data/t", [(5, "x")], SCHEMA)
        system.run(QUERY)
        assert system.dfs.read_lines("/out/r") == ["5\tx"]
        system.write_table("/data/t", [(9, "y")], SCHEMA)
        system.run(QUERY)
        assert system.dfs.read_lines("/out/r") == ["9\ty"]


class TestExplain:
    def test_sections_present(self):
        text = explain(QUERY)
        assert "-- logical plan" in text
        assert "-- physical plan" in text
        assert "-- mapreduce workflow" in text
        assert "FILTER[>($0,1)]" in text

    def test_optimized_section(self):
        query = (
            "A = load '/data/t' as (x:int, y:chararray);"
            "B = foreach A generate x;"
            "C = filter B by x > 1;"
            "store C into '/out/r';"
        )
        text = explain(query, optimize=True)
        assert "-- optimized logical plan" in text

    def test_multi_job_workflow_shown(self):
        query = (
            "A = load '/data/t' as (x:int, y:chararray);"
            "B = group A by y;"
            "C = foreach B generate group, COUNT(A);"
            "D = order C by group;"
            "store D into '/out/r';"
        )
        text = explain(query)
        assert "2 job(s)" in text

    def test_main_entry(self, capsys):
        from repro.tools.explain import main

        assert main([QUERY]) == 0
        captured = capsys.readouterr()
        assert "mapreduce workflow" in captured.out
