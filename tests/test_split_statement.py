"""Tests for the SPLIT statement (parse, compile, execute, reuse)."""

import pytest

from repro import PigSystem
from repro.common.errors import ParseError
from repro.data import DataType, encode_row, Field, Schema
from repro.piglatin import ast, parse_query

SCHEMA = Schema([Field("x", DataType.INT), Field("y", DataType.CHARARRAY)])
ROWS = [(1, "a"), (5, "b"), (9, "c"), (12, "d")]

SPLIT_QUERY = """
A = load '/data/t' as (x:int, y:chararray);
split A into small if x < 6, large if x >= 6;
store small into '/out/small';
store large into '/out/large';
"""


def seeded_system():
    system = PigSystem()
    system.dfs.write_lines("/data/t", [encode_row(row, SCHEMA) for row in ROWS])
    return system


class TestParsing:
    def test_split_statement_ast(self):
        query = parse_query("split A into B if x < 1, C if x >= 1;")
        (stmt,) = query.statements
        assert isinstance(stmt, ast.SplitStmt)
        assert stmt.input_alias == "A"
        assert [alias for alias, _ in stmt.branches] == ["B", "C"]

    def test_split_needs_two_branches(self):
        with pytest.raises(ParseError):
            parse_query("split A into B if x < 1;")

    def test_three_way_split(self):
        query = parse_query(
            "split A into B if x < 1, C if x == 1, D if x > 1;")
        (stmt,) = query.statements
        assert len(stmt.branches) == 3


class TestExecution:
    def test_rows_routed_to_branches(self):
        system = seeded_system()
        system.run(SPLIT_QUERY)
        assert system.dfs.read_lines("/out/small") == ["1\ta", "5\tb"]
        assert system.dfs.read_lines("/out/large") == ["9\tc", "12\td"]

    def test_overlapping_conditions_duplicate_rows(self):
        # Pig semantics: a row goes to EVERY branch whose condition holds.
        system = seeded_system()
        system.run("""
        A = load '/data/t' as (x:int, y:chararray);
        split A into lo if x < 10, all_rows if x > 0;
        store lo into '/out/lo';
        store all_rows into '/out/all';
        """)
        assert len(system.dfs.read_lines("/out/lo")) == 3
        assert len(system.dfs.read_lines("/out/all")) == 4

    def test_branches_fan_out_in_one_job(self):
        system = seeded_system()
        workflow = system.compile(SPLIT_QUERY)
        assert len(workflow.jobs) == 1
        assert len(workflow.jobs[0].stores()) == 2

    def test_blocking_ops_in_both_branches(self):
        system = seeded_system()
        query = """
        A = load '/data/t' as (x:int, y:chararray);
        split A into small if x < 6, large if x >= 6;
        B = group small by y;
        C = foreach B generate group, COUNT(small);
        store C into '/out/g1';
        D = distinct large;
        store D into '/out/g2';
        """
        workflow = system.compile(query)
        # Two shuffles cannot share a job; the source is materialized once.
        assert len(workflow.jobs) >= 2
        system2 = seeded_system()
        system2.run(query)
        assert sorted(system2.dfs.read_lines("/out/g1")) == ["a\t1", "b\t1"]
        assert sorted(system2.dfs.read_lines("/out/g2")) == ["12\td", "9\tc"]


class TestReuse:
    def test_split_branch_matches_filter_entry(self):
        # A SPLIT branch is a filter, so a stored filter sub-job from a
        # plain FILTER query is reusable by a SPLIT query and vice versa.
        system = seeded_system()
        restore = system.restore()
        restore.submit(system.compile(SPLIT_QUERY))
        filter_query = """
        A = load '/data/t' as (x:int, y:chararray);
        B = filter A by x < 6;
        C = group B by y;
        D = foreach C generate group, COUNT(B);
        store D into '/out/counts';
        """
        restore.submit(system.compile(filter_query))
        assert restore.last_report.num_rewrites >= 1
        # Correctness: same as a fresh system without reuse.
        check = seeded_system()
        check.run(filter_query)
        assert (system.dfs.read_lines("/out/counts")
                == check.dfs.read_lines("/out/counts"))
