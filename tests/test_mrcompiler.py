"""Tests for the physical-plan -> MapReduce-workflow compiler."""

import pytest

from repro.logical import build_logical_plan
from repro.physical import logical_to_physical
from repro.piglatin import parse_query
from repro.mrcompiler import compile_to_workflow

from tests.helpers import Q1_TEXT, Q2_TEXT


def compile_text(text, name="wf"):
    physical = logical_to_physical(build_logical_plan(parse_query(text)))
    return compile_to_workflow(physical, name)


class TestJobBoundaries:
    def test_q1_is_one_job(self):
        # Paper Figure 2: Q1 (load/project/join/store) is a single MR job.
        workflow = compile_text(Q1_TEXT)
        assert len(workflow.jobs) == 1
        (job,) = workflow.jobs
        assert job.shuffle_op.kind == "join"

    def test_q2_is_two_jobs(self):
        # Paper Figure 3: Q2 splits into a join job and a group job.
        workflow = compile_text(Q2_TEXT)
        assert len(workflow.jobs) == 2
        shuffles = sorted(job.shuffle_op.kind for job in workflow.jobs)
        assert shuffles == ["group", "join"]

    def test_q2_group_job_depends_on_join_job(self):
        workflow = compile_text(Q2_TEXT)
        by_kind = {job.shuffle_op.kind: job for job in workflow.jobs}
        assert by_kind["join"] in by_kind["group"].dependencies
        assert by_kind["join"].dependencies == []

    def test_q2_jobs_linked_by_temp_file(self):
        workflow = compile_text(Q2_TEXT)
        by_kind = {job.shuffle_op.kind: job for job in workflow.jobs}
        join_outputs = set(by_kind["join"].output_paths())
        group_inputs = set(by_kind["group"].input_paths())
        shared = join_outputs & group_inputs
        assert len(shared) == 1
        assert shared <= workflow.temp_paths

    def test_map_only_job(self):
        workflow = compile_text(
            "A = load '/d' as (x:int, y:int);"
            "B = foreach A generate x;"
            "C = filter B by x > 0;"
            "store C into '/out';"
        )
        (job,) = workflow.jobs
        assert job.shuffle_op is None
        assert all(op.stage == "map" for op in job.plan.operators())

    def test_l11_shape_three_jobs_one_dependent(self):
        # Paper Section 7.1: L11's workflow is 3 jobs, one depending on the
        # other two.
        text = """
        A = load '/data/page_views' as (user:chararray, ts:int);
        B = foreach A generate user;
        C = distinct B;
        alpha = load '/data/users' as (name:chararray, phone:chararray);
        beta = foreach alpha generate name;
        gamma = distinct beta;
        D = union C, gamma;
        E = distinct D;
        store E into '/out/L11_out';
        """
        workflow = compile_text(text)
        assert len(workflow.jobs) == 3
        final = [job for job in workflow.jobs if job.dependencies]
        assert len(final) == 1
        assert len(final[0].dependencies) == 2

    def test_stage_assignment_q2(self):
        workflow = compile_text(Q2_TEXT)
        by_kind = {job.shuffle_op.kind: job for job in workflow.jobs}
        join_job = by_kind["join"]
        kinds_by_stage = {}
        for op in join_job.plan.operators():
            kinds_by_stage.setdefault(op.stage, []).append(op.kind)
        assert "load" in kinds_by_stage["map"]
        assert "foreach" in kinds_by_stage["map"]
        assert "join" in kinds_by_stage["reduce"]
        assert "store" in kinds_by_stage["reduce"]

    def test_sort_job_forces_single_reducer(self):
        workflow = compile_text(
            "A = load '/d' as (x:int);"
            "B = order A by x desc;"
            "store B into '/out';"
        )
        (job,) = workflow.jobs
        assert job.shuffle_op.kind == "sort"
        assert job.parallel == 1

    def test_parallel_hint_carried(self):
        workflow = compile_text(
            "A = load '/d' as (x:int);"
            "B = group A by x parallel 40;"
            "store B into '/out';"
        )
        (job,) = workflow.jobs
        assert job.parallel == 40

    def test_consecutive_blocking_ops_chain_jobs(self):
        workflow = compile_text(
            "A = load '/d' as (x:int, y:int);"
            "B = group A by x;"
            "C = foreach B generate group, COUNT(A);"
            "D = order C by group;"
            "store D into '/out';"
        )
        assert len(workflow.jobs) == 2

    def test_job_ids_unique_and_prefixed(self):
        workflow = compile_text(Q2_TEXT, name="myq")
        ids = [job.job_id for job in workflow.jobs]
        assert len(set(ids)) == len(ids)
        assert all(job_id.startswith("myq-j") for job_id in ids)
