"""Unit + property tests for repro.data: types, schema, codec, comparators."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import DataError
from repro.data import (
    DataType,
    decode_row,
    encode_row,
    encoded_size,
    Field,
    key_sort_key,
    parse_value,
    render_value,
    Schema,
)
from repro.data.types import coerce_value, infer_type, numeric_result_type


class TestTypes:
    def test_parse_render_roundtrip_int(self):
        assert parse_value(render_value(42, DataType.INT), DataType.INT) == 42

    def test_parse_render_roundtrip_double(self):
        for value in (0.1, -3.75, 1e300, 2.0):
            text = render_value(value, DataType.DOUBLE)
            assert parse_value(text, DataType.DOUBLE) == value

    def test_null_round_trips(self):
        for dtype in (DataType.INT, DataType.DOUBLE, DataType.CHARARRAY):
            assert parse_value(render_value(None, dtype), dtype) is None

    def test_parse_bad_int_raises(self):
        with pytest.raises(DataError):
            parse_value("abc", DataType.INT)

    def test_coerce(self):
        assert coerce_value("5", DataType.INT) == 5
        assert coerce_value(5, DataType.DOUBLE) == 5.0
        assert coerce_value(5, DataType.CHARARRAY) == "5"
        assert coerce_value(None, DataType.INT) is None

    def test_coerce_failure(self):
        with pytest.raises(DataError):
            coerce_value("xyz", DataType.DOUBLE)

    def test_infer_type(self):
        assert infer_type(1) is DataType.INT
        assert infer_type(1.0) is DataType.DOUBLE
        assert infer_type("x") is DataType.CHARARRAY
        assert infer_type(((1,),)) is DataType.BAG

    def test_numeric_result_type(self):
        assert numeric_result_type(DataType.INT, DataType.INT) is DataType.INT
        assert numeric_result_type(DataType.INT, DataType.DOUBLE) is DataType.DOUBLE


def make_schema():
    return Schema(
        [
            Field("user", DataType.CHARARRAY),
            Field("timestamp", DataType.INT),
            Field("est_revenue", DataType.DOUBLE),
        ]
    )


class TestSchema:
    def test_lookup_by_name_and_position(self):
        schema = make_schema()
        assert schema.position_of("timestamp") == 1
        assert schema.field_at(2).name == "est_revenue"

    def test_duplicate_names_rejected(self):
        with pytest.raises(DataError):
            Schema([Field("a", DataType.INT), Field("a", DataType.INT)])

    def test_unknown_field_raises(self):
        with pytest.raises(DataError):
            make_schema().position_of("nope")

    def test_project(self):
        schema = make_schema().project([2, 0])
        assert schema.names == ("est_revenue", "user")

    def test_prefixed_and_short_name_lookup(self):
        schema = make_schema().prefixed("A")
        assert schema.names == ("A::user", "A::timestamp", "A::est_revenue")
        # Short names still resolve when unambiguous.
        assert schema.position_of("timestamp") == 1

    def test_join_schema_disambiguates(self):
        left = Schema([Field("name", DataType.CHARARRAY)])
        right = Schema([Field("name", DataType.CHARARRAY), Field("x", DataType.INT)])
        joined = Schema.join(left, right, "l", "r")
        assert joined.names == ("l::name", "r::name", "r::x")
        with pytest.raises(DataError):
            joined.position_of("name")  # ambiguous short name
        assert joined.position_of("x") == 2

    def test_canonical_is_stable(self):
        assert make_schema().canonical() == (
            "user:chararray, timestamp:int, est_revenue:double"
        )

    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())


class TestCodec:
    def test_simple_roundtrip(self):
        schema = make_schema()
        row = ("alice", 123, 4.5)
        assert decode_row(encode_row(row, schema), schema) == row

    def test_null_fields_roundtrip(self):
        schema = make_schema()
        row = (None, None, None)
        assert decode_row(encode_row(row, schema), schema) == row

    def test_structural_characters_escape(self):
        schema = Schema([Field("s", DataType.CHARARRAY)])
        for nasty in ("a\tb", "a\nb", "a\\b", "a|b", "a,b", "({})", "\\t"):
            line = encode_row((nasty,), schema)
            assert "\t" not in line.replace("\\t", "")
            assert decode_row(line, schema) == (nasty,)

    def test_bag_roundtrip(self):
        element = Schema([Field("u", DataType.CHARARRAY), Field("n", DataType.INT)])
        schema = Schema([Field("g", DataType.CHARARRAY), Field("b", DataType.BAG, element)])
        # Note: empty-string chararray is indistinguishable from null in the
        # TSV encoding (same as Pig); avoid it here.
        bag = (("x", 1), ("y|z", None), (None, 3))
        row = ("grp", bag)
        assert decode_row(encode_row(row, schema), schema) == row

    def test_empty_bag_roundtrip(self):
        element = Schema([Field("n", DataType.INT)])
        schema = Schema([Field("b", DataType.BAG, element)])
        assert decode_row(encode_row(((),), schema), schema) == ((),)

    def test_wrong_arity_raises(self):
        schema = make_schema()
        with pytest.raises(DataError):
            encode_row(("only-one",), schema)
        with pytest.raises(DataError):
            decode_row("a\tb", schema)

    def test_encoded_size_counts_newline(self):
        assert encoded_size("abc") == 4
        assert encoded_size("") == 1

    @given(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.text(max_size=30)),
                st.one_of(st.none(), st.integers(-(10**9), 10**9)),
                st.one_of(
                    st.none(),
                    st.floats(allow_nan=False, allow_infinity=False, width=32),
                ),
            ),
            max_size=20,
        )
    )
    def test_property_roundtrip(self, rows):
        schema = make_schema()
        for row in rows:
            # Null chararray and empty string collapse (documented TSV
            # ambiguity, same as Pig) — skip empty strings.
            if row[0] == "":
                continue
            assert decode_row(encode_row(row, schema), schema) == row


class TestComparators:
    def test_orders_nulls_first(self):
        values = ["b", None, "a"]
        assert sorted(values, key=key_sort_key) == [None, "a", "b"]

    def test_orders_mixed_numbers(self):
        values = [3, 1.5, 2]
        assert sorted(values, key=key_sort_key) == [1.5, 2, 3]

    def test_numbers_before_strings(self):
        values = ["a", 10, None]
        assert sorted(values, key=key_sort_key) == [None, 10, "a"]

    def test_composite_keys(self):
        keys = [("b", 1), ("a", 2), ("a", None)]
        assert sorted(keys, key=key_sort_key) == [("a", None), ("a", 2), ("b", 1)]

    def test_unorderable_type_raises(self):
        with pytest.raises(TypeError):
            key_sort_key(object())

    @given(st.lists(st.one_of(st.none(), st.integers(), st.text(max_size=5))))
    def test_property_total_order(self, values):
        ordered = sorted(values, key=key_sort_key)
        assert sorted(ordered, key=key_sort_key) == ordered
