"""Tests for the Section 7.5 synthetic workload (Table 2, QP/QF)."""

import pytest

from repro import PigSystem
from repro.data import encoded_size, encode_row
from repro.synth import (
    FIELD_SPECS,
    qf,
    QF_FIELDS,
    qp,
    QP_MAX_FIELDS,
    SYNTH_SCHEMA,
    SynthConfig,
    SynthData,
)


@pytest.fixture(scope="module")
def synth_rows():
    return SynthData(SynthConfig(num_rows=8000, seed=11)).rows()


class TestTable2Properties:
    def test_deterministic(self):
        config = SynthConfig(num_rows=100, seed=5)
        assert SynthData(config).rows() == SynthData(config).rows()

    def test_schema_arity(self, synth_rows):
        assert all(len(row) == len(SYNTH_SCHEMA) == 12 for row in synth_rows)

    def test_string_fields_have_length_20(self, synth_rows):
        for row in synth_rows[:100]:
            for value in row[:5]:
                assert len(value) == 20

    @pytest.mark.parametrize("name,cardinality,fraction", FIELD_SPECS)
    def test_selectivities_match_table2(self, synth_rows, name, cardinality,
                                        fraction):
        position = SYNTH_SCHEMA.position_of(name)
        selected = sum(1 for row in synth_rows if row[position] == 0)
        measured = selected / len(synth_rows)
        assert measured == pytest.approx(fraction, rel=0.35)

    @pytest.mark.parametrize("name,cardinality,fraction", FIELD_SPECS)
    def test_cardinalities_match_table2(self, synth_rows, name, cardinality,
                                        fraction):
        position = SYNTH_SCHEMA.position_of(name)
        distinct = {row[position] for row in synth_rows}
        expected = 2 if cardinality == 1.6 else int(cardinality)
        assert len(distinct) == expected

    def test_projected_fraction_of_row_bytes(self, synth_rows):
        # Paper: one projected field ~18% of the data, five fields ~74%.
        row = synth_rows[0]
        full = encoded_size(encode_row(row, SYNTH_SCHEMA))
        one_field = len(row[0]) + 1
        five_fields = sum(len(value) + 1 for value in row[:5])
        assert 0.10 < one_field / full < 0.30
        assert 0.60 < five_fields / full < 0.95


class TestTemplates:
    @pytest.fixture(scope="class")
    def system(self):
        system = PigSystem()
        SynthData(SynthConfig(num_rows=2000, seed=11)).install(system.dfs)
        return system

    @pytest.mark.parametrize("k", range(1, QP_MAX_FIELDS + 1))
    def test_qp_compiles_to_one_job(self, system, k):
        workflow = system.compile(qp(k), f"qp{k}")
        assert len(workflow.jobs) == 1
        assert workflow.jobs[0].shuffle_op.kind == "group"

    def test_qp_bounds_checked(self):
        with pytest.raises(ValueError):
            qp(0)
        with pytest.raises(ValueError):
            qp(6)

    def test_qf_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            qf("field1")

    @pytest.mark.parametrize("field", QF_FIELDS)
    def test_qf_executes_and_counts(self, system, field):
        out = f"/out/qf_{field}"
        system.run(qf(field, out_path=out), f"qf_{field}")
        total = sum(
            int(line.split("\t")[0]) for line in system.dfs.read_lines(out)
        )
        position = SYNTH_SCHEMA.position_of(field)
        rows = SynthData(SynthConfig(num_rows=2000, seed=11)).rows()
        assert total == sum(1 for row in rows if row[position] == 0)

    def test_qp_counts_cover_all_rows(self, system):
        system.run(qp(2, out_path="/out/qp2"), "qp2")
        total = sum(
            int(line.split("\t")[0]) for line in system.dfs.read_lines("/out/qp2")
        )
        assert total == 2000
