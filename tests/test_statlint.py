"""Fixture suite for the statlint static-analysis tool (PR 9).

Every checker gets true-positive fixtures (the bug shape it exists to
catch) *and* false-positive fixtures (the idioms it must not flag —
the escape hatches are part of the contract). On top of that: the
suppression grammar (justification required), the baseline round-trip,
and the CLI — including the CI-level proof that a deliberate
lock-discipline violation fails the run, and that the real ``src/``
tree is clean.
"""

import json
import textwrap

import pytest

from repro.tools.statlint import (
    Baseline,
    Finding,
    Project,
    SourceModule,
    analyze_paths,
    rule_ids,
)
from repro.tools.statlint.__main__ import main
from repro.tools.statlint.core import load_project
from repro.tools.statlint.crashorder import CrashOrdering
from repro.tools.statlint.exceptions import ExceptionHygiene
from repro.tools.statlint.forksafety import ForkSafety
from repro.tools.statlint.locks import LockDiscipline, LockOrdering


def _mod(source, relpath="mod.py"):
    return SourceModule(relpath, relpath, textwrap.dedent(source))


def _run(checker_cls, *modules):
    return list(checker_cls().run(Project(list(modules))))


def _rules(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# lock-discipline


class TestLockDiscipline:
    def test_write_outside_with_flagged(self):
        findings = _run(LockDiscipline, _mod('''
            import threading

            class Queue:
                GUARDED_BY = {"_records": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._records = []

                def drop_all(self):
                    self._records = []
        '''))
        assert len(findings) == 1
        assert findings[0].rule == "lock-discipline"
        assert "_records" in findings[0].message
        assert "_lock" in findings[0].message

    def test_read_outside_with_flagged(self):
        findings = _run(LockDiscipline, _mod('''
            import threading

            class Queue:
                GUARDED_BY = {"_records": "_lock", "_closed": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._records = []
                    self._closed = False

                def snapshot(self):
                    with self._lock:
                        records = list(self._records)
                    return records, self._closed
        '''))
        assert [f.message.split("'")[1] for f in findings] == ["_closed"]

    def test_access_inside_with_clean(self):
        findings = _run(LockDiscipline, _mod('''
            import threading

            class Queue:
                GUARDED_BY = {"_records": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._records = []

                def size(self):
                    with self._lock:
                        return len(self._records)
        '''))
        assert findings == []

    def test_locked_suffix_and_holds_marker_clean(self):
        findings = _run(LockDiscipline, _mod('''
            import threading

            class Queue:
                GUARDED_BY = {"_records": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._records = []

                def append_locked(self, record):
                    self._records.append(record)

                def drain(self):  # statlint: holds=_lock
                    records, self._records = self._records, []
                    return records
        '''))
        assert findings == []

    def test_init_exempt(self):
        findings = _run(LockDiscipline, _mod('''
            import threading

            class Queue:
                GUARDED_BY = {"_records": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._records = []
        '''))
        assert findings == []

    def test_dotted_lock_spec(self):
        # The manager's `_kept_paths` is guarded by `_ingest.lock`.
        findings = _run(LockDiscipline, _mod('''
            class Manager:
                GUARDED_BY = {"_kept": "_ingest.lock"}

                def keep(self, path):
                    with self._ingest.lock:
                        self._kept.add(path)

                def leak(self, path):
                    self._kept.add(path)
        '''))
        assert len(findings) == 1
        assert findings[0].line == 10


# ---------------------------------------------------------------------------
# lock-ordering


class TestLockOrdering:
    def test_opposite_nesting_is_a_cycle(self):
        findings = _run(LockOrdering, _mod('''
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
        '''))
        assert len(findings) == 1
        assert "lock-ordering cycle" in findings[0].message

    def test_cycle_through_a_call_is_found(self):
        findings = _run(LockOrdering, _mod('''
            import threading

            class Checkpointer:
                def __init__(self):
                    self._mutex = threading.Lock()

                def checkpoint(self):
                    with self._mutex:
                        drain()


            class Drainer:
                def __init__(self):
                    self.lock = threading.Lock()

                def drain(self):
                    with self.lock:
                        pass


            class Applier:
                def __init__(self):
                    self.lock = threading.Lock()
                    self._mutex = threading.Lock()

                def apply(self):
                    with self.lock:
                        with self._mutex:
                            pass
        '''))
        assert len(findings) == 1
        assert "call to drain()" in findings[0].message

    def test_self_reacquire_of_plain_lock(self):
        findings = _run(LockOrdering, _mod('''
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.helper()

                def helper(self):
                    with self._lock:
                        pass
        '''))
        assert len(findings) == 1
        assert "non-reentrant" in findings[0].message

    def test_consistent_order_clean(self):
        findings = _run(LockOrdering, _mod('''
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
        '''))
        assert findings == []

    def test_rlock_self_nest_clean(self):
        findings = _run(LockOrdering, _mod('''
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.helper()

                def helper(self):
                    with self._lock:
                        pass
        '''))
        assert findings == []

    def test_same_method_name_on_unrelated_class_no_edge(self):
        # `self.flush()` must resolve to *this* class's flush, not every
        # flush in the project — the FP that motivated qualified names.
        findings = _run(LockOrdering, _mod('''
            import threading

            class Wal:
                def __init__(self):
                    self._mutex = threading.Lock()

                def checkpoint(self):
                    with self._mutex:
                        self.flush()

                def flush(self):
                    pass


            class Other:
                def __init__(self):
                    self.lock = threading.Lock()
                    self._mutex_owner = Wal()

                def flush(self):
                    with self.lock:
                        with self._mutex_owner._mutex:
                            pass
        '''))
        assert findings == []


# ---------------------------------------------------------------------------
# fork-safety


class TestForkSafety:
    def test_threading_reachable_from_marked_entrypoint(self):
        findings = _run(ForkSafety, _mod('''
            import threading

            def _worker_main(requests):  # statlint: process-entrypoint
                pump = threading.Thread(target=print)
                pump.start()
        '''))
        assert len(findings) == 1
        assert "threading.Thread" in findings[0].message
        assert "_worker_main" in findings[0].message

    def test_front_end_attr_via_process_target_and_typed_call(self):
        # Roots come from Process(target=...), and `state.probe()`
        # resolves because `state = WorkerState()` names the class.
        findings = _run(ForkSafety, _mod('''
            from multiprocessing import get_context

            class WorkerState:
                def probe(self):
                    return self._repository.scan()

            def worker_loop(requests):
                state = WorkerState()
                state.probe()

            def spawn():
                ctx = get_context("fork")
                return ctx.Process(target=worker_loop, args=(None,))
        '''))
        assert len(findings) == 1
        assert "self._repository" in findings[0].message
        assert "worker_loop" in findings[0].message

    def test_lambda_process_target_flagged(self):
        findings = _run(ForkSafety, _mod('''
            import multiprocessing

            def spawn(state):
                return multiprocessing.Process(target=lambda: state.run())
        '''))
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_bound_method_process_target_flagged(self):
        findings = _run(ForkSafety, _mod('''
            import multiprocessing

            class Pool:
                def spawn(self):
                    return multiprocessing.Process(target=self._loop)

                def _loop(self):
                    pass
        '''))
        assert len(findings) == 1
        assert "bound method" in findings[0].message

    def test_unreachable_threading_clean(self):
        # The front-end may create threads freely; only worker-reachable
        # code is constrained.
        findings = _run(ForkSafety, _mod('''
            import threading

            def _worker_main(requests):  # statlint: process-entrypoint
                return requests.get()

            class FrontEnd:
                def start(self):
                    self._pump = threading.Thread(target=print)
        '''))
        assert findings == []

    def test_worker_owning_its_state_clean(self):
        findings = _run(ForkSafety, _mod('''
            class WorkerState:
                def __init__(self):
                    self._entries = {}

                def apply(self, record):
                    self._entries[record.key] = record

            def _worker_main(requests):  # statlint: process-entrypoint
                state = WorkerState()
                state.apply(requests.get())
        '''))
        assert findings == []

    # Worker-owned durability semantics: a worker may *write* durable
    # files, but only through a gateway client — the real DFS handle
    # (`self.dfs`) is an in-process object whose forked copy is private
    # memory, so touching it from worker-reachable code is a write into
    # the void.

    def test_real_dfs_handle_reachable_from_worker_flagged(self):
        findings = _run(ForkSafety, _mod('''
            class WorkerState:
                def flush(self, segment, lines):
                    self.dfs.append_lines(segment, lines)

            def _worker_main(requests):  # statlint: process-entrypoint
                state = WorkerState()
                state.flush(*requests.get())
        '''))
        assert len(findings) == 1
        assert "self.dfs" in findings[0].message
        assert "_worker_main" in findings[0].message

    def test_gateway_holding_dfs_in_worker_helper_flagged(self):
        # Even read-shaped access counts: the handle itself is parent
        # state, whatever the worker does with it.
        findings = _run(ForkSafety, _mod('''
            class Gateway:
                def describe(self):
                    return repr(self.dfs)

            def _worker_main(requests):  # statlint: process-entrypoint
                gateway = Gateway()
                gateway.describe()
        '''))
        assert len(findings) == 1
        assert "self.dfs" in findings[0].message

    def test_gateway_client_write_path_in_worker_clean(self):
        # The sanctioned shape: the worker writes through a queue-backed
        # client; no DFS handle, no threads, nothing fork-hostile.
        findings = _run(ForkSafety, _mod('''
            class DfsClient:
                def __init__(self, requests, replies):
                    self._requests = requests
                    self._replies = replies

                def append_lines(self, target, lines):
                    self._requests.put(("append_lines", target, lines))
                    return self._replies.get()

            class WorkerState:
                def __init__(self, durable):
                    self._durable = durable

                def flush(self, segment, lines):
                    self._durable.append_lines(segment, lines)

            def _worker_main(requests, replies):  # statlint: process-entrypoint
                state = WorkerState(DfsClient(requests, replies))
                state.flush("seg", ["r"])
        '''))
        assert findings == []

    def test_front_end_pump_owning_real_dfs_clean(self):
        # The gateway's front-end half holds the real DFS and a pump
        # thread — legal, because no worker entrypoint reaches it.
        findings = _run(ForkSafety, _mod('''
            import threading

            class Gateway:
                def __init__(self, dfs):
                    self.dfs = dfs
                    self._pump = threading.Thread(target=self._run)

                def _run(self):
                    self.dfs.append_lines("seg", ["r"])

            def _worker_main(requests):  # statlint: process-entrypoint
                return requests.get()
        '''))
        assert findings == []


# ---------------------------------------------------------------------------
# crash-ordering


class TestCrashOrdering:
    def test_truncate_before_manifest_swap(self):
        findings = _run(CrashOrdering, _mod('''
            class Log:
                def compact(self):
                    segment = self._segment_path(0)
                    self.dfs.write_lines(segment, [])
                    self.dfs.write_lines(self.path, ["m"], overwrite=True)
        ''', relpath="wal.py"))
        assert len(findings) == 1
        assert "precedes the manifest swap" in findings[0].message

    def test_section_write_after_manifest_swap(self):
        findings = _run(CrashOrdering, _mod('''
            class Persistence:
                def checkpoint(self, root):
                    section = section_file_path(root, 1)
                    self.dfs.write_lines(self.path, ["m"], overwrite=True)
                    self.dfs.write_lines(section, ["s"], overwrite=True)
        ''', relpath="persistence.py"))
        assert len(findings) == 1
        assert "follows the manifest swap" in findings[0].message
        assert "section" in findings[0].message

    def test_delete_then_write_manifest(self):
        findings = _run(CrashOrdering, _mod('''
            class Log:
                def save(self):
                    self.dfs.delete_if_exists(self.path)
                    self.dfs.write_lines(self.path, ["m"], overwrite=True)
        ''', relpath="wal.py"))
        assert len(findings) == 1
        assert "delete-then-write" in findings[0].message

    def test_manifest_write_without_overwrite(self):
        findings = _run(CrashOrdering, _mod('''
            class Log:
                def save(self, path):
                    self.dfs.write_lines(path, ["m"])
        ''', relpath="wal.py"))
        assert len(findings) == 1
        assert "overwrite=True" in findings[0].message

    def test_correct_compact_shape_clean(self):
        # The real compaction order: content first, manifest swap,
        # truncations and GC deletes last.
        findings = _run(CrashOrdering, _mod('''
            class Log:
                def compact(self, root):
                    section = section_file_path(root, 1)
                    order_log = order_log_path(root)
                    segment = self._segment_path(0)
                    self.dfs.write_lines(section, ["s"], overwrite=True)
                    self.dfs.write_lines(order_log, ["o"], overwrite=True)
                    self.dfs.write_lines(self.path, ["m"], overwrite=True)
                    self.dfs.write_lines(segment, [])
                    self.dfs.delete_if_exists(order_log)
        ''', relpath="wal.py"))
        assert findings == []

    def test_rules_only_apply_in_persistence_modules(self):
        # The DFS facade implements write_lines; the ordering rules are
        # meaningless there.
        findings = _run(CrashOrdering, _mod('''
            class Log:
                def save(self):
                    self.dfs.delete_if_exists(self.path)
                    self.dfs.write_lines(self.path, ["m"])
        ''', relpath="filesystem.py"))
        assert findings == []

    # R5 — worker modules may write segments and sections but never the
    # manifest: the swap is the front-end coordination point.

    def test_manifest_write_in_worker_module_flagged(self):
        findings = _run(CrashOrdering, _mod('''
            class WorkerState:
                def publish(self, path):
                    self.client.write_lines(path, ["m"], overwrite=True)
        ''', relpath="service.py"))
        assert len(findings) == 1
        assert "worker-side module" in findings[0].message
        assert "front-end" in findings[0].message

    def test_manifest_delete_in_gateway_flagged(self):
        # Deletes count too — a worker un-publishing the manifest is as
        # illegal as publishing it.
        findings = _run(CrashOrdering, _mod('''
            class Gateway:
                def reset(self):
                    self.dfs.delete_if_exists(self.path)
        ''', relpath="gateway.py"))
        assert len(findings) == 1
        assert "worker-side module" in findings[0].message

    def test_worker_segment_and_section_writes_clean(self):
        # The sanctioned worker writes: its own segment tail append and
        # its own generation-named section rewrite.
        findings = _run(CrashOrdering, _mod('''
            class WorkerState:
                def flush(self, segment_lines):
                    segment = segment_file_path(self.root, 0)
                    self.client.append_lines(segment, segment_lines)

                def compact(self, section_lines):
                    section = section_file_path(self.root, 0, 7)
                    self.client.write_lines(section, section_lines,
                                            overwrite=True)
        ''', relpath="service.py"))
        assert findings == []

    def test_unclassified_targets_in_worker_module_clean(self):
        # Variables the classifier cannot tie to the manifest (message
        # payload fields, plain locals) are not R5's business — only the
        # manifest category is front-end-only.
        findings = _run(CrashOrdering, _mod('''
            class WorkerState:
                def flush(self, payload):
                    target = payload["segment"]
                    self.client.append_lines(target, payload["lines"])
        ''', relpath="replication.py"))
        assert findings == []


# ---------------------------------------------------------------------------
# exception-hygiene


class TestExceptionHygiene:
    def test_bare_except_flagged(self):
        findings = _run(ExceptionHygiene, _mod('''
            def risky():
                try:
                    work()
                except:
                    pass
        '''))
        assert _rules(findings) == ["exception-hygiene"]
        assert "bare" in findings[0].message

    def test_base_exception_without_raise_flagged(self):
        findings = _run(ExceptionHygiene, _mod('''
            def drain():
                try:
                    work()
                except BaseException as exc:
                    record(exc)
        '''))
        assert len(findings) == 1
        assert "without a 'raise'" in findings[0].message

    def test_worker_crashed_swallowed_flagged(self):
        findings = _run(ExceptionHygiene, _mod('''
            def flush(shards):
                for shard in shards:
                    try:
                        shard.flush()
                    except WorkerCrashed:
                        continue
        '''))
        assert len(findings) == 1
        assert "WorkerCrashed" in findings[0].message

    def test_base_exception_with_reraise_clean(self):
        findings = _run(ExceptionHygiene, _mod('''
            def drain():
                try:
                    work()
                except BaseException:
                    cleanup()
                    raise
        '''))
        assert findings == []

    def test_narrow_except_clean(self):
        findings = _run(ExceptionHygiene, _mod('''
            def drain():
                try:
                    work()
                except (ValueError, Exception) as exc:
                    log(exc)
        '''))
        assert findings == []

    def test_worker_crashed_recovered_clean(self):
        findings = _run(ExceptionHygiene, _mod('''
            def flush(shards):
                for shard in shards:
                    try:
                        shard.flush()
                    except WorkerCrashed:
                        shard.recover()
        '''))
        assert findings == []

    def test_nested_def_raise_does_not_count(self):
        findings = _run(ExceptionHygiene, _mod('''
            def drain():
                try:
                    work()
                except BaseException:
                    def resurface():
                        raise
                    keep(resurface)
        '''))
        assert len(findings) == 1


# ---------------------------------------------------------------------------
# suppressions


def _write(tmp_path, name, source):
    # "st@tlint" is replaced with the real marker at write time, so
    # deliberately-bad suppression fixtures don't read as suppression
    # comments of *this* file when tests/ itself is scanned.
    target = tmp_path / name
    target.write_text(textwrap.dedent(source).replace("st@tlint",
                                                      "statlint"),
                      encoding="utf-8")
    return str(target)


class TestSuppressions:
    def test_justified_suppression_silences(self, tmp_path):
        path = _write(tmp_path, "a.py", '''
            def risky():
                try:
                    work()
                except BaseException as exc:  # statlint: disable=exception-hygiene -- resurfaced via the poison slot
                    record(exc)
        ''')
        findings, errors = analyze_paths([path])
        assert errors == []
        assert findings == []

    def test_unjustified_suppression_is_a_finding_and_does_not_suppress(
            self, tmp_path):
        path = _write(tmp_path, "a.py", '''
            def risky():
                try:
                    work()
                except BaseException as exc:  # st@tlint: disable=exception-hygiene
                    record(exc)
        ''')
        findings, _ = analyze_paths([path])
        assert sorted(_rules(findings)) == ["exception-hygiene",
                                            "suppression-hygiene"]
        hygiene = [f for f in findings if f.rule == "suppression-hygiene"]
        assert "without justification" in hygiene[0].message

    def test_unknown_rule_in_suppression_is_a_finding(self, tmp_path):
        path = _write(tmp_path, "a.py", '''
            x = 1  # st@tlint: disable=no-such-rule -- because
        ''')
        findings, _ = analyze_paths([path])
        assert _rules(findings) == ["suppression-hygiene"]
        assert "unknown rule 'no-such-rule'" in findings[0].message

    def test_suppression_only_silences_named_rule(self, tmp_path):
        path = _write(tmp_path, "a.py", '''
            def risky():
                try:
                    work()
                except:  # statlint: disable=crash-ordering -- wrong rule named
                    pass
        ''')
        findings, _ = analyze_paths([path])
        assert _rules(findings) == ["exception-hygiene"]


# ---------------------------------------------------------------------------
# baseline


class TestBaseline:
    def _findings(self):
        return [Finding("exception-hygiene", "a.py", 3, "bare 'except:'"),
                Finding("exception-hygiene", "a.py", 9, "bare 'except:'"),
                Finding("lock-discipline", "b.py", 5, "outside lock")]

    def test_round_trip(self, tmp_path):
        target = str(tmp_path / "baseline.json")
        Baseline.from_findings(self._findings()).save(target)
        loaded = Baseline.load(target)
        assert loaded.counts == Baseline.from_findings(
            self._findings()).counts
        payload = json.loads((tmp_path / "baseline.json").read_text())
        assert payload["version"] == Baseline.VERSION
        assert len(payload["findings"]) == 3

    def test_partition_is_line_insensitive(self):
        baseline = Baseline.from_findings(self._findings())
        moved = [Finding("lock-discipline", "b.py", 99, "outside lock")]
        new, old = baseline.partition(moved)
        assert new == [] and old == moved

    def test_partition_budget_is_a_multiset(self):
        baseline = Baseline.from_findings(
            [Finding("r", "a.py", 1, "m")])
        duplicates = [Finding("r", "a.py", 1, "m"),
                      Finding("r", "a.py", 2, "m")]
        new, old = baseline.partition(duplicates)
        assert len(old) == 1 and len(new) == 1

    def test_unsupported_version_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            Baseline.load(str(target))


# ---------------------------------------------------------------------------
# CLI


BAD_FIXTURE = '''
import threading

class Queue:
    GUARDED_BY = {"_records": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._records = []

    def drop_all(self):
        self._records = []
'''


class TestCli:
    def test_deliberate_violation_fails_the_run(self, tmp_path, capsys):
        # The CI contract: a lock-discipline violation makes the
        # analysis job red.
        _write(tmp_path, "bad.py", BAD_FIXTURE)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "lock-discipline" in out

    def test_report_only_is_always_green(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", BAD_FIXTURE)
        assert main([str(tmp_path), "--report-only"]) == 0
        assert "lock-discipline" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", BAD_FIXTURE)
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 1
        assert payload["findings"][0]["rule"] == "lock-discipline"

    def test_baseline_workflow(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", BAD_FIXTURE)
        baseline = str(tmp_path / "baseline.json")
        assert main([str(tmp_path), "--baseline", baseline,
                     "--write-baseline"]) == 0
        # Grandfathered: the finding is known, the run is green.
        assert main([str(tmp_path), "--baseline", baseline,
                     "--fail-on-new"]) == 0
        assert "baselined" in capsys.readouterr().out
        # A *new* finding still fails.
        _write(tmp_path, "worse.py", BAD_FIXTURE.replace("Queue", "Other"))
        assert main([str(tmp_path), "--baseline", baseline,
                     "--fail-on-new"]) == 1

    def test_unknown_rule_is_usage_error(self, tmp_path):
        assert main([str(tmp_path), "--rules", "nope"]) == 2

    def test_rules_filter(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", BAD_FIXTURE)
        assert main([str(tmp_path), "--rules", "crash-ordering"]) == 0

    def test_syntax_error_is_an_error(self, tmp_path, capsys):
        _write(tmp_path, "broken.py", "def f(:\n")
        assert main([str(tmp_path)]) == 2
        assert "cannot analyze" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("lock-discipline", "lock-ordering", "fork-safety",
                     "crash-ordering", "exception-hygiene",
                     "suppression-hygiene"):
            assert rule in out

    def test_repo_src_tree_is_clean(self, capsys):
        # The acceptance bar: the shipped tree has zero findings — every
        # true positive was fixed, not baselined.
        import repro
        src = repro.__file__.rsplit("/", 2)[0]
        assert main([src]) == 0
        assert "clean" in capsys.readouterr().out


class TestRegistry:
    def test_all_five_checkers_registered(self):
        assert set(rule_ids()) >= {"lock-discipline", "lock-ordering",
                                   "fork-safety", "crash-ordering",
                                   "exception-hygiene",
                                   "suppression-hygiene"}

    def test_real_annotations_are_parsed(self):
        # Guard against vacuous passes: the shipped GUARDED_BY maps and
        # the worker entrypoint marker must actually be visible to the
        # checkers.
        import repro
        src = repro.__file__.rsplit("/", 2)[0]
        project, errors = load_project([src])
        assert errors == []
        ingest = [m for m in project.modules
                  if m.relpath.endswith("restore/ingest.py")][0]
        service = [m for m in project.modules
                   if m.relpath.endswith("restore/service.py")][0]
        assert "GUARDED_BY" in ingest.text
        assert service.entrypoint_lines
