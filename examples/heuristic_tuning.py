"""Choosing a sub-job heuristic: Conservative vs Aggressive vs None.

Section 7.3 of the paper compares the heuristics on overhead (extra time
and storage while materializing) and benefit (speedup when reusing).
This example reproduces that trade-off on one workload — a wide GROUP
query like PigMix L6, the case the paper calls out as HA's risk — and on
a cheap projection query where HA shines.

Run:  python examples/heuristic_tuning.py
"""

from repro import PigSystem
from repro.pigmix import PigMixConfig, PigMixData
from repro.restore import (
    AggressiveHeuristic,
    ConservativeHeuristic,
    NoHeuristic,
    Repository,
)

WIDE_GROUP = """
A = load '/data/page_views' as (user:chararray, action:int, timespent:int,
    query_term:chararray, ip_addr:chararray, timestamp:int,
    estimated_revenue:double, page_info:chararray, page_links:chararray);
B = foreach A generate user, action, timespent, query_term;
C = group B by (user, query_term) parallel 40;
D = foreach C generate flatten(group), SUM(B.timespent);
store D into '/out/wide_group';
"""

CHEAP_PROJECTION = """
A = load '/data/page_views' as (user:chararray, action:int, timespent:int,
    query_term:chararray, ip_addr:chararray, timestamp:int,
    estimated_revenue:double, page_info:chararray, page_links:chararray);
B = foreach A generate user, estimated_revenue;
C = group B by user parallel 40;
D = foreach C generate group, SUM(B.estimated_revenue);
store D into '/out/cheap_projection';
"""


def build_system():
    system = PigSystem()
    PigMixData(PigMixConfig(num_page_views=3_000, num_users=150)).install(system.dfs)
    scale = 150 * 1024**3 / system.dfs.file_size("/data/page_views")
    return system.with_scale(scale)


def evaluate(query, label):
    print(f"\n--- {label} ---")
    print(f"{'heuristic':>14}  {'overhead':>9}  {'stored MB':>10}  {'speedup':>8}")
    system = build_system()
    plain = system.run(query, "plain").total_time
    for heuristic in (ConservativeHeuristic(), AggressiveHeuristic(), NoHeuristic()):
        repository = Repository()
        generating = system.restore(
            heuristic=heuristic,
            enable_rewrite=False,
            register_final_outputs=False,
            repository=repository,
        )
        gen_result = generating.submit(system.compile(query, "generate"))
        stored = sum(
            result.stats.injected_store_bytes
            for result in gen_result.job_results.values()
        )
        reusing = system.restore(heuristic=None, enable_registration=False,
                                 repository=repository)
        reuse_result = reusing.submit(system.compile(query, "reuse"))
        overhead = gen_result.total_time / plain
        speedup = plain / max(reuse_result.total_time, 1e-9)
        stored_mb = stored * system.cost_model.config.scale / 1024**2
        print(f"{heuristic.name:>14}  {overhead:8.2f}x  {stored_mb:10,.0f}  "
              f"{speedup:7.1f}x")
    print(f"(no-reuse baseline: {plain:.0f} simulated seconds)")


def main():
    evaluate(CHEAP_PROJECTION, "cheap projection + group (HA shines)")
    evaluate(WIDE_GROUP, "wide group, large bags (HA's risk case, like PigMix L6)")
    print(
        "\nTakeaway (matches Section 7.3): the Aggressive Heuristic gives"
        "\nthe most reuse benefit and usually costs little more than the"
        "\nConservative one — but for wide groups its materialized Group"
        "\noutput is large, so the overhead risk is real. No-Heuristic"
        "\nnever beats Aggressive."
    )


if __name__ == "__main__":
    main()
