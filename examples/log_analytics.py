"""Log analytics: the paper's motivating scenario (Section 1).

An internet company's usage-log warehouse is queried by many analysts.
Every query starts the same way — load the logs, project/filter away most
of the data — and then does its own analysis. ReStore materializes those
shared early steps as sub-jobs the first time they run; every later query,
even a *different* one submitted at a different time, is rewritten to
start from the materialized data.

The script simulates a day of ad-hoc analysis and reports per-query
times with and without ReStore, plus what the repository accumulated.

Run:  python examples/log_analytics.py
"""

from repro import PigSystem
from repro.pigmix import PigMixConfig, PigMixData

LOAD_LOGS = """
A = load '/data/page_views' as (user:chararray, action:int, timespent:int,
    query_term:chararray, ip_addr:chararray, timestamp:int,
    estimated_revenue:double, page_info:chararray, page_links:chararray);
"""

# Five analyst queries sharing the load + project/filter prefix.
ANALYST_QUERIES = {
    "revenue_by_user": LOAD_LOGS + """
B = foreach A generate user, estimated_revenue;
C = group B by user;
D = foreach C generate group, SUM(B.estimated_revenue);
store D into '/out/revenue_by_user';
""",
    "sessions_by_user": LOAD_LOGS + """
B = foreach A generate user, estimated_revenue;
C = group B by user;
D = foreach C generate group, COUNT(B);
store D into '/out/sessions_by_user';
""",
    "morning_traffic": LOAD_LOGS + """
B = foreach A generate user, timestamp;
C = filter B by timestamp < 43200;
D = group C by user;
E = foreach D generate group, COUNT(C);
store E into '/out/morning_traffic';
""",
    "afternoon_traffic": LOAD_LOGS + """
B = foreach A generate user, timestamp;
C = filter B by timestamp >= 43200;
D = group C by user;
E = foreach D generate group, COUNT(C);
store E into '/out/afternoon_traffic';
""",
    "top_spenders": LOAD_LOGS + """
B = foreach A generate user, estimated_revenue;
C = group B by user;
D = foreach C generate group, SUM(B.estimated_revenue) as total;
E = order D by total desc;
F = limit E 10;
store F into '/out/top_spenders';
""",
}


def build_system():
    system = PigSystem()
    PigMixData(PigMixConfig(num_page_views=3_000, num_users=150)).install(system.dfs)
    # Calibrate: the logs count as 150 GB.
    scale = 150 * 1024**3 / system.dfs.file_size("/data/page_views")
    return system.with_scale(scale)


def main():
    print(f"{'query':>20}  {'no reuse':>10}  {'ReStore':>10}  {'speedup':>8}  rewrites")
    baseline_system = build_system()
    restore_system = build_system()
    restore = restore_system.restore()

    total_plain = 0.0
    total_restore = 0.0
    for name, query in ANALYST_QUERIES.items():
        plain = baseline_system.run(query, name)
        result = restore.submit(restore_system.compile(query, name))
        report = restore.last_report
        # Results must agree between the two clusters.
        out_path = f"/out/{name}"
        assert (baseline_system.dfs.read_lines(out_path)
                == restore_system.dfs.read_lines(out_path)), name
        total_plain += plain.total_time
        total_restore += result.total_time
        print(f"{name:>20}  {plain.total_time:9.0f}s  {result.total_time:9.0f}s  "
              f"{plain.total_time / max(result.total_time, 1e-9):7.1f}x  "
              f"{report.num_rewrites}")

    print("-" * 66)
    print(f"{'TOTAL':>20}  {total_plain:9.0f}s  {total_restore:9.0f}s  "
          f"{total_plain / total_restore:7.1f}x")
    print(f"\nrepository: {len(restore.repository)} entries, "
          f"{restore.repository.total_stored_bytes()} stored bytes (actual)")
    reused = [e for e in restore.repository if e.stats.use_count > 0]
    print(f"entries reused at least once: {len(reused)}")
    for entry in reused:
        print(f"  - {entry.describe()} (uses={entry.stats.use_count})")


if __name__ == "__main__":
    main()
