"""Managing the ReStore repository: retention and eviction (Section 5).

The paper's experiments keep every candidate output, but Section 5
proposes four rules for a production deployment:

1. keep a candidate only if its output is smaller than its input;
2. keep a candidate only if Equation 1 predicts a time reduction;
3. evict outputs not reused within a window of time;
4. evict outputs whose inputs were deleted or modified.

This example submits a stream of queries under both policies, then
modifies the source data to show Rule 4 invalidation, runs the same
stream against a sharded repository to show the partitioned match path
(identical decisions, per-shard counters), shows the cost-model
candidate ranker (the matcher tries candidates
best-estimated-savings-first, the report's ranking ledger shows
estimated vs realized savings per rewrite, and the ranker choice is
recorded in the persisted repository's manifest), and finishes with
segmented persistence: a manager wired to a RepositoryLog checkpoints
O(delta) change records per submit into per-shard segment files, a
restart replays manifest+sections+segments into the exact same
repository, and a mutation burst confined to one shard compacts only
that shard's snapshot section (printed file listing before/after).

Run:  python examples/repository_management.py
"""

from repro import PigSystem
from repro.pigmix import PigMixConfig, PigMixData
from repro.pigmix.queries import query_text
from repro.restore import (
    HeuristicRetentionPolicy,
    KeepEverythingPolicy,
    load_repository,
    RepositoryLog,
    save_repository,
    ShardedRepository,
)


def build_system():
    system = PigSystem()
    PigMixData(PigMixConfig(num_page_views=1_500, num_users=80)).install(system.dfs)
    scale = 150 * 1024**3 / system.dfs.file_size("/data/page_views")
    return system.with_scale(scale)


def submit_stream(restore, system, names):
    for name in names:
        restore.submit(system.compile(query_text(name), name))


def main():
    stream = ["L2", "L3", "L6", "L2", "L3", "L7", "L8", "L4"]

    print("=== keep-everything (the paper's experimental mode) ===")
    system = build_system()
    keeper = system.restore(retention=KeepEverythingPolicy())
    submit_stream(keeper, system, stream)
    print(f"entries: {len(keeper.repository)}, "
          f"stored bytes (actual): {keeper.repository.total_stored_bytes():,}")

    print("\n=== Rules 1-4, reuse window = 3 workflows ===")
    system = build_system()
    pruned = system.restore(retention=HeuristicRetentionPolicy(window_ticks=3))
    submit_stream(pruned, system, stream)
    print(f"entries: {len(pruned.repository)}, "
          f"stored bytes (actual): {pruned.repository.total_stored_bytes():,}")
    print("(smaller: Rule 1 rejects outputs bigger than their inputs, Rule 2")
    print(" rejects outputs cheaper to recompute than to reload, and Rule 3")
    print(" evicted entries idle for more than 3 workflows)")

    print("\n=== Rule 4: modifying an input invalidates stored outputs ===")
    before = len(pruned.repository)
    # Simulate a new day of logs: overwrite page_views with fresh data.
    PigMixData(PigMixConfig(num_page_views=1_500, num_users=80, seed=99)).install(
        system.dfs
    )
    pruned.submit(system.compile(query_text("L3"), "L3-after-reload"))
    report = pruned.last_report
    print(f"entries before reload: {before}, after: {len(pruned.repository)}")
    print(f"evicted by the sweep: {len(report.evicted_entries)}")
    print(f"rewrites against stale data: {report.num_rewrites} (must be 0)")
    assert report.num_rewrites == 0

    print("\nrepository after the sweep:")
    print(pruned.repository.describe())

    print("\n=== sharded repository: same decisions, partitioned matching ===")
    system = build_system()
    repository = ShardedRepository(num_shards=4)
    sharded = system.restore(repository=repository)
    submit_stream(sharded, system, stream)
    print(f"entries: {len(repository)} across {repository.num_shards} shards")
    for row in repository.shard_report():
        print(f"  shard {row['shard']:>2}: {row['occupancy']} entr(ies), "
              f"{row['probes']} probe(s), {row['match_hits']} hit(s)")
    merged = repository.merged_shard_stats()
    print(f"merged: {merged['probes']} logical probe(s) over "
          f"{merged['shard_consults']} shard consult(s), "
          f"{merged['match_hits']} hit(s)")
    print("(per-shard probe counters count consultations — a probe that")
    print(" fans out to an owned shard AND the catch-all appears in both")
    print(" rows; the merged view counts each logical probe once)")
    print(f"last workflow's matcher: "
          f"{sharded.last_report.match_counters.describe()}")

    print("\n=== cost-model ranking: best estimated savings first ===")
    system = build_system()
    ranked = system.restore(ranker="savings",
                            repository=ShardedRepository(num_shards=4))
    decisions = []
    for name in stream:
        ranked.submit(system.compile(query_text(name), name))
        decisions.extend(ranked.last_report.ranking.decisions)
    print(f"{len(decisions)} ranked rewrite(s) across the stream "
          f"(estimated vs realized savings per decision):")
    for decision in decisions[:6]:
        print(f"  {decision.job_id} reused {decision.entry_id}: "
              f"estimated {decision.estimated_savings:.1f}s, "
              f"realized {decision.realized_savings:.1f}s")
    save_repository(ranked.repository, system.dfs, ranker=ranked.ranker)
    reloaded = load_repository(system.dfs)
    if getattr(reloaded, "manifest_metadata", None):
        print(f"persisted manifest records ranker="
              f"{reloaded.manifest_metadata.get('ranker')!r}")

    print("\n=== segmented persistence: O(delta) checkpoints, "
          "O(dirty shards) compaction ===")
    system = build_system()
    log = RepositoryLog(system.dfs, compact_ratio=2.0)
    durable = system.restore(repository=ShardedRepository(num_shards=4),
                             persistence=log)
    for name in stream:
        durable.submit(system.compile(query_text(name), name))
        outcome = durable.last_report.checkpoint
        if outcome["compacted"]:
            what = (f"compacted shard(s) "
                    f"{', '.join(outcome['compacted_shards'])}")
        else:
            what = "appended to their shards' segments"
        print(f"  {name}: {outcome['appended']} change record(s) {what}")
    print(log.describe())
    restarted = load_repository(system.dfs)
    print(f"restart replayed {restarted.loader_report.replayed_records} "
          f"log record(s): {len(restarted)} entr(ies), scan order "
          f"{'identical' if [e.output_path for e in restarted.scan()] == [e.output_path for e in durable.repository.scan()] else 'DIVERGED'}")

    print("\n=== on disk: per-shard sections + segments, dirty-only "
          "compaction ===")

    def show_layout(header):
        print(header)
        for path in system.dfs.list_files("/restore/repository.jsonl"):
            print(f"  {path}  ({system.dfs.status(path).num_lines} line(s))")

    # A burst of use-stamps confined to one shard dirties only it.
    repo = durable.repository
    target = repo.shard_id_of(repo.scan()[0])
    victims = [e for e in repo.scan() if repo.shard_id_of(e) == target]
    for tick in range(100, 100 + 2 * len(repo)):
        repo.record_use(victims[tick % len(victims)], tick)
    log.flush()
    show_layout("after the burst (one shard's segment has the backlog):")
    print(f"  dirty shard(s): {log.dirty_shards()} "
          f"(mutations were confined to shard {target})")
    compacted = log.compact(log.dirty_shards())
    show_layout(f"after compacting only {compacted} — the other shards' "
                f"section files are untouched:")


if __name__ == "__main__":
    main()
