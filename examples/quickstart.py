"""Quickstart: the paper's running example (queries Q1 and Q2).

Q1 joins page_views with users; Q2 performs the same join and then groups
and aggregates. With ReStore, executing Q1 stores its job outputs (and the
outputs of materialized sub-jobs); submitting Q2 afterwards rewrites its
workflow to reuse the stored join instead of recomputing it (paper
Figures 2-4).

Run:  python examples/quickstart.py
"""

from repro import PigSystem
from repro.pigmix import PigMixConfig, PigMixData

Q1 = """
A = load '/data/page_views' as (user:chararray, action:int, timespent:int,
    query_term:chararray, ip_addr:chararray, timestamp:int,
    estimated_revenue:double, page_info:chararray, page_links:chararray);
B = foreach A generate user, estimated_revenue;
alpha = load '/data/users' as (name:chararray, phone:chararray,
    address:chararray, city:chararray, state:chararray, zip:chararray);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into '/out/L2_out';
"""

Q2 = """
A = load '/data/page_views' as (user:chararray, action:int, timespent:int,
    query_term:chararray, ip_addr:chararray, timestamp:int,
    estimated_revenue:double, page_info:chararray, page_links:chararray);
B = foreach A generate user, estimated_revenue;
alpha = load '/data/users' as (name:chararray, phone:chararray,
    address:chararray, city:chararray, state:chararray, zip:chararray);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.estimated_revenue);
store E into '/out/L3_out';
"""


def main():
    # A simulated 15-node cluster with a small PigMix-style dataset,
    # cost-calibrated so that page_views counts as the paper's 15 GB.
    system = PigSystem()
    PigMixData(PigMixConfig(num_page_views=2_000, num_users=100)).install(system.dfs)
    system = system.with_scale(15 * 1024**3 / system.dfs.file_size("/data/page_views"))

    # Baseline: Q2 with no reuse at all.
    baseline = system.run(Q2, "q2-baseline")
    baseline_output = system.dfs.read_lines("/out/L3_out")
    print(f"Q2 without reuse:      {baseline.total_time:8.1f} simulated seconds "
          f"({len(baseline.workflow.jobs)} MapReduce jobs)")

    # With ReStore: run Q1 first (populates the repository)...
    restore = system.restore()
    q1_result = restore.submit(system.compile(Q1, "q1"))
    print(f"Q1 with ReStore:       {q1_result.total_time:8.1f} simulated seconds; "
          f"repository now holds {len(restore.repository)} entr(ies)")

    # ... then submit Q2: its join job is rewritten away.
    q2_result = restore.submit(system.compile(Q2, "q2"))
    report = restore.last_report
    print(f"Q2 with ReStore:       {q2_result.total_time:8.1f} simulated seconds; "
          f"{report.num_rewrites} rewrite(s), "
          f"{len(report.eliminated_jobs)} job(s) eliminated")

    # Reuse never changes results.
    assert system.dfs.read_lines("/out/L3_out") == baseline_output
    speedup = baseline.total_time / q2_result.total_time
    print(f"Speedup from reuse:    {speedup:8.1f}x  (outputs verified identical)")

    # Re-submitting Q2 finds everything in the repository: the whole
    # workflow collapses.
    q2_again = restore.submit(system.compile(Q2, "q2-again"))
    print(f"Q2 re-submitted:       {q2_again.total_time:8.1f} simulated seconds "
          f"({baseline.total_time / max(q2_again.total_time, 1e-9):.0f}x)")
    assert system.dfs.read_lines("/out/L3_out") == baseline_output

    print("\nRepository contents:")
    print(restore.repository.describe())


if __name__ == "__main__":
    main()
