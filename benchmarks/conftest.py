"""Shared benchmark fixtures: result recording for EXPERIMENTS.md."""

import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
#: machine-readable aggregate of every ablation arm, written at the
#: repo root so CI can upload it as a build artifact
ABLATION_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_ablation.json")


@pytest.fixture(scope="session")
def record_experiment():
    """Write an ExperimentResult's table under benchmarks/results/; fold
    ablation results into ``BENCH_ablation.json`` at the repo root
    (merged per exp_id, so partial runs update rather than clobber)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def record(result):
        path = os.path.join(RESULTS_DIR, f"{result.exp_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(result.format() + "\n")
        if result.exp_id.startswith("ablation"):
            aggregate = {}
            if os.path.exists(ABLATION_JSON):
                with open(ABLATION_JSON, "r", encoding="utf-8") as handle:
                    aggregate = json.load(handle)
            aggregate[result.exp_id] = {
                "title": result.title,
                "headers": result.headers,
                "rows": result.rows,
                "notes": result.notes,
            }
            with open(ABLATION_JSON, "w", encoding="utf-8") as handle:
                json.dump(aggregate, handle, indent=2, sort_keys=True)
                handle.write("\n")
        print()
        print(result.format())
        return result

    return record
