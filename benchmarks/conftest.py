"""Shared benchmark fixtures: result recording for EXPERIMENTS.md."""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def record_experiment():
    """Write an ExperimentResult's table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def record(result):
        path = os.path.join(RESULTS_DIR, f"{result.exp_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(result.format() + "\n")
        print()
        print(result.format())
        return result

    return record
