"""Figure 11: Store-injection overhead at 15 GB vs 150 GB.

Paper: average overhead 2.4x on the 15 GB instance vs 1.6x on 150 GB —
fixed per-store costs and small reducer counts weigh more at small scale.
"""

import pytest

from repro.harness import fig11_overhead


@pytest.mark.benchmark(group="fig11")
def test_fig11_overhead(benchmark, record_experiment):
    result = benchmark.pedantic(fig11_overhead, args=("default",),
                                rounds=1, iterations=1)
    record_experiment(result)
    average = result.row_for("query", "average")
    # Shape: overhead is higher at the smaller data size.
    assert average["15GB"] > average["150GB"]
    # Every query pays some overhead at both scales.
    for row in result.rows:
        assert row["15GB"] >= 1.0
        assert row["150GB"] >= 1.0
