"""Figure 15: reusing whole jobs vs sub-jobs (HC/HA) on L3/L11 variants.

Paper: all reuse types are beneficial; whole jobs give the maximum
benefit; HA sub-jobs come close; HC trails.
"""

import pytest

from repro.harness import fig15_jobs_vs_subjobs


@pytest.mark.benchmark(group="fig15")
def test_fig15_jobs_vs_subjobs(benchmark, record_experiment):
    result = benchmark.pedantic(fig15_jobs_vs_subjobs, args=("default",),
                                rounds=1, iterations=1)
    record_experiment(result)
    for row in result.rows:
        # Whole-job reuse gives the maximum benefit.
        assert row["whole_jobs_min"] <= row["HA_min"] * 1.001
        # HA is at least as good as HC (it stores strictly more sub-jobs).
        assert row["HA_min"] <= row["HC_min"] * 1.001
    # On the big-input variants every reuse mode beats no-reuse.
    for name in ("L3", "L3a", "L3b", "L3c", "L11", "L11a", "L11c"):
        row = result.row_for("query", name)
        for mode in ("HC_min", "HA_min", "whole_jobs_min"):
            assert row[mode] < row["no_reuse_min"]
