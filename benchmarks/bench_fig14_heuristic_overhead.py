"""Figure 14: execution time WITH injected Store operators per heuristic.

Paper: NH is always the worst; HA is usually only slightly worse than HC,
with wide-group queries (L6) the exception where HA is much worse.
"""

import pytest

from repro.harness import fig14_heuristic_overhead


@pytest.mark.benchmark(group="fig14")
def test_fig14_heuristic_overhead(benchmark, record_experiment):
    result = benchmark.pedantic(fig14_heuristic_overhead, args=("default",),
                                rounds=1, iterations=1)
    record_experiment(result)
    for row in result.rows:
        # Injecting stores always costs at least the plain time.
        for mode in ("HC_min", "HA_min", "NH_min"):
            assert row[mode] >= row["no_reuse_min"] * 0.999
        # The cheap heuristic never costs more than the aggressive one,
        # and NH never costs less than HA.
        assert row["HC_min"] <= row["HA_min"] * 1.001
        assert row["NH_min"] >= row["HA_min"] * 0.999
    # L6 (wide group) is where HA hurts most, as the paper calls out.
    l6 = result.row_for("query", "L6")
    gaps = {
        row["query"]: row["HA_min"] - row["HC_min"]
        for row in result.rows
    }
    assert gaps["L6"] == max(gaps.values())
