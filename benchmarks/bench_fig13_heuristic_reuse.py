"""Figure 13: execution time when reusing sub-jobs chosen by NH/HC/HA.

Paper: HA matches NH (the extra sub-jobs NH stores provide no benefit);
HC stores fewer sub-jobs and therefore benefits less; all beat no-reuse.
"""

import pytest

from repro.harness import fig13_heuristic_reuse


@pytest.mark.benchmark(group="fig13")
def test_fig13_heuristic_reuse(benchmark, record_experiment):
    result = benchmark.pedantic(fig13_heuristic_reuse, args=("default",),
                                rounds=1, iterations=1)
    record_experiment(result)
    for row in result.rows:
        # Every reuse mode beats no reuse.
        for mode in ("HC_min", "HA_min", "NH_min"):
            assert row[mode] < row["no_reuse_min"]
        # HA is at least as good as HC; NH adds nothing over HA.
        assert row["HA_min"] <= row["HC_min"] * 1.001
        assert row["NH_min"] >= row["HA_min"] * 0.90
