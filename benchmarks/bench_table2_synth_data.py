"""Table 2: the synthetic data set's cardinalities and selectivities."""

import pytest

from repro.harness import table2_synth_data


@pytest.mark.benchmark(group="table2")
def test_table2_synth_data(benchmark, record_experiment):
    result = benchmark.pedantic(table2_synth_data, args=("default",),
                                rounds=1, iterations=1)
    record_experiment(result)
    for row in result.rows:
        expected = 2 if row["cardinality_spec"] == 1.6 else row["cardinality_spec"]
        assert row["cardinality_measured"] == expected
        assert row["selected_measured_pct"] == pytest.approx(
            row["selected_spec_pct"], rel=0.30
        )
