"""Micro-benchmarks of the substrate: codec, shuffle, matcher, compiler.

These are conventional multi-round pytest benchmarks (wall-clock), useful
for tracking regressions in the engine underlying all experiments.
"""

import pytest

from repro.data import decode_row, encode_row
from repro.logical import build_logical_plan
from repro.mapreduce.shuffle import grouped_partitions, stable_hash
from repro.physical import logical_to_physical
from repro.piglatin import parse_query
from repro.pigmix import PAGE_VIEWS_SCHEMA, PigMixConfig, PigMixData
from repro.restore.matcher import find_containment

from repro.pigmix.queries import PigMixPaths, query_text


@pytest.fixture(scope="module")
def page_views_rows():
    return PigMixData(PigMixConfig(num_page_views=2000)).page_views_rows()


@pytest.mark.benchmark(group="micro-codec")
def test_codec_encode(benchmark, page_views_rows):
    def encode_all():
        return [encode_row(row, PAGE_VIEWS_SCHEMA) for row in page_views_rows]

    lines = benchmark(encode_all)
    assert len(lines) == 2000


@pytest.mark.benchmark(group="micro-codec")
def test_codec_decode(benchmark, page_views_rows):
    lines = [encode_row(row, PAGE_VIEWS_SCHEMA) for row in page_views_rows]

    def decode_all():
        return [decode_row(line, PAGE_VIEWS_SCHEMA) for line in lines]

    rows = benchmark(decode_all)
    assert rows == page_views_rows


@pytest.mark.benchmark(group="micro-shuffle")
def test_shuffle_partition_and_group(benchmark, page_views_rows):
    keyed = [(0, row[0], row) for row in page_views_rows]

    def shuffle():
        return grouped_partitions(keyed, 28)

    partitions = benchmark(shuffle)
    assert sum(len(groups) for groups in partitions) > 0


@pytest.mark.benchmark(group="micro-shuffle")
def test_stable_hash_throughput(benchmark, page_views_rows):
    keys = [row[0] for row in page_views_rows]

    def hash_all():
        return [stable_hash(key) for key in keys]

    hashes = benchmark(hash_all)
    assert len(set(hashes)) > 1


@pytest.mark.benchmark(group="micro-compiler")
def test_compile_l3_to_physical(benchmark):
    text = query_text("L3", PigMixPaths())

    def compile_query():
        return logical_to_physical(build_logical_plan(parse_query(text)))

    plan = benchmark(compile_query)
    assert len(plan.operators()) > 5


@pytest.mark.benchmark(group="micro-matcher")
def test_containment_check(benchmark):
    paths = PigMixPaths()
    entry = logical_to_physical(build_logical_plan(parse_query(
        query_text("L2", paths))))
    target = logical_to_physical(build_logical_plan(parse_query(
        query_text("L3", paths))))

    def match():
        return find_containment(entry, target)

    result = benchmark(match)
    # L2 projects page_views like L3 but joins power_users, not users:
    # containment must (correctly) fail, exercising the full traversal.
    assert result is None
