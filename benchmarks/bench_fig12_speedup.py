"""Figure 12: sub-job reuse speedup at 15 GB vs 150 GB.

Paper: average speedup 3.0x at 15 GB vs 24.4x at 150 GB — reuse is more
beneficial for larger data because Tload dominates Equation 2.
"""

import pytest

from repro.harness import fig12_speedup


@pytest.mark.benchmark(group="fig12")
def test_fig12_speedup(benchmark, record_experiment):
    result = benchmark.pedantic(fig12_speedup, args=("default",),
                                rounds=1, iterations=1)
    record_experiment(result)
    average = result.row_for("query", "average")
    # Shape: speedup grows with data size.
    assert average["150GB"] > average["15GB"]
    # Both scales benefit from reuse on every query.
    for row in result.rows:
        assert row["15GB"] > 1.0
        assert row["150GB"] > 1.0
