"""Figure 17: overhead & speedup vs percentage of filtered data (QF).

Paper: as the filter keeps more data, the Store overhead rises and the
reuse speedup falls (six QF instantiations over Table 2's fields).
"""

import pytest

from repro.harness import fig17_filter


@pytest.mark.benchmark(group="fig17")
def test_fig17_filter(benchmark, record_experiment):
    result = benchmark.pedantic(fig17_filter, args=("default",),
                                rounds=1, iterations=1)
    record_experiment(result)
    overheads = result.column("overhead")
    # Overhead grows with the kept fraction.
    assert overheads == sorted(overheads)
    # Speedup at the most selective point is the strongest (or near it),
    # and the least selective point is the weakest.
    speedups = result.column("speedup")
    assert speedups[-1] == min(speedups)
    assert max(speedups[:3]) == max(speedups)
    # Strong filters are a clear net win.
    assert result.rows[0]["speedup"] > result.rows[0]["overhead"]
