"""Async ingest under load: submit latency must stay flat (PR 8).

The scenario the ingest front-end exists for: registrations arrive
faster than the registrar drains them. Inline registration would put
the clone + dedup + index-insert + sweep on every submitter's critical
path; async registration makes the submit-side cost one bounded-queue
append, whatever the backlog. The enforced bar: with **>= 1000
registrations queued** and the registrar actively catching up, the p99
submit (enqueue) latency is **<= 1.5x** the single-submitter baseline
measured against an empty queue.

Methodology notes (this is a GIL-bound process, so the measurement is
arranged to isolate the enqueue path):

* both the baseline and the loaded probes are timed on the main thread
  — the comparison is empty-queue vs deep-queue, not
  thread-scheduling noise;
* the backlog is built with the registrar paused, probes are timed
  right after resume, and the queue depth is re-checked *after* the
  probe window so every timed put demonstrably ran against >= 1000
  queued records with the drain running;
* the GC is disabled inside the timed windows and each phase keeps the
  best of 3 passes, mirroring the repo's other contention benchmarks.

Every record is applied by the real manager sink (clone, dedup,
insert into an 8-shard repository, grouped flushes), and the run ends
with a drained queue and every distinct plan registered — throughput
is deferred, never dropped.
"""

import gc
import time

import pytest

from repro import PigSystem
from repro.harness.reporting import ExperimentResult
from repro.physical.operators import POLoad, POStore
from repro.physical.plan import PhysicalPlan
from repro.restore import ReStoreReport, ShardedRepository
from repro.restore.ingest import RegistrationRecord
from repro.restore.persistence import SkeletonOp

_SHARDS = 8
_POOL = 64            # distinct load paths (shard + leaf-index spread)
_BASELINE = 300       # single-submitter puts per pass, empty queue
_BACKLOG = 1600       # records queued before each loaded pass
_PROBES = 200         # timed puts per pass while the backlog drains
_PASSES = 3           # best-of-3 per phase
_REQUIRED_DEPTH = 1000
_LATENCY_BAR = 1.5


def _fabricated_record(index, report):
    """A distinct single-chain registration (the bench_ablation idiom):
    unique filter predicate per record, load paths drawn from a small
    pool so the shard hash and leaf-load index both have real work."""
    load = POLoad(f"/data/d{index % _POOL}", None, 0)
    chain = SkeletonOp("filter", f"FILTER[a>{index}]", None, [load])
    plan = PhysicalPlan([POStore(chain, f"/stored/s{index}")])
    return RegistrationRecord(
        job_plan=plan, frontier_op=chain,
        output_path=f"/stored/s{index}", owns_file=False,
        origin="whole-job", report=report,
        input_bytes=1000 + (index % 7) * 500,
        output_bytes=10 + (index % 5) * 30,
        producing_job_time=1.0 + (index % 11),
        map_time=0.5, reduce_time=0.5, created_tick=1)


def _percentile(samples, fraction):
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered)) - 1))
    return ordered[rank]


def _timed_puts(ingest, records):
    """Enqueue each record, returning per-put seconds (GC parked)."""
    samples = []
    gc.collect()
    gc.disable()
    try:
        for record in records:
            start = time.perf_counter()
            ingest.submit(record)
            samples.append(time.perf_counter() - start)
    finally:
        gc.enable()
    return samples


@pytest.mark.benchmark(group="ablation-ingest")
def test_submit_latency_flat_under_backlog(benchmark, record_experiment):
    """The acceptance bar for PR 8: enqueue p99 with >= 1000 records
    queued (registrar draining) <= 1.5x the empty-queue baseline."""
    system = PigSystem()
    manager = system.restore(
        repository=ShardedRepository(num_shards=_SHARDS, executor="serial"),
        heuristic=None, ingest="async", ingest_queue_size=1 << 16,
        ingest_batch_size=64)
    report = ReStoreReport("bench-ingest")
    total = _PASSES * (_BASELINE + _BACKLOG + _PROBES)
    records = iter([_fabricated_record(index, report)
                    for index in range(total)])
    ingest = manager._ingest
    registrar = ingest.registrar

    def take(count):
        return [next(records) for _ in range(count)]

    def measure():
        phases = {"single": [], "loaded": []}
        depths = []
        for _ in range(_PASSES):
            # Baseline: one submitter, empty queue, registrar running.
            ingest.flush()
            phases["single"].append(_timed_puts(ingest, take(_BASELINE)))
            # Load: build the backlog with the registrar paused, then
            # time the probes while it catches up.
            registrar.pause()
            for record in take(_BACKLOG):
                ingest.submit(record)
            registrar.resume()
            probes = _timed_puts(ingest, take(_PROBES))
            depth_after = len(ingest.queue)
            depths.append(depth_after)
            phases["loaded"].append(probes)
        return phases, depths

    (phases, depths), _ = benchmark.pedantic(
        lambda: (measure(), manager.flush()), rounds=1, iterations=1)

    # Every loaded pass demonstrably probed a deep queue: the depth
    # *after* the probe window still exceeded the floor, so each timed
    # put ran against >= _REQUIRED_DEPTH queued records mid-drain.
    assert min(depths) >= _REQUIRED_DEPTH, depths
    assert ingest.stats.max_queue_depth >= _REQUIRED_DEPTH

    single_p99 = min(_percentile(passes, 0.99)
                     for passes in phases["single"])
    loaded_p99 = min(_percentile(passes, 0.99)
                     for passes in phases["loaded"])
    single_p50 = min(_percentile(passes, 0.50)
                     for passes in phases["single"])
    loaded_p50 = min(_percentile(passes, 0.50)
                     for passes in phases["loaded"])
    ratio = loaded_p99 / max(single_p99, 1e-9)

    # Deferred, never dropped: every distinct fabricated plan ended up
    # registered once the queue drained.
    assert len(manager.repository) == total
    assert ingest.stats.applied == total
    assert ingest.stats.rejected == 0
    drain_p99 = ingest.stats.drain_p99
    batches = ingest.stats.batches
    manager.close()

    record_experiment(ExperimentResult(
        "ablation_ingest",
        f"Async ingest submit latency, empty queue vs >= "
        f"{_REQUIRED_DEPTH}-record backlog ({total} registrations, "
        f"{_SHARDS}-shard repository, batch=64, best of {_PASSES})",
        ["arm", "p50_us", "p99_us", "vs_single_p99"],
        [
            {"arm": "single submitter (empty queue)",
             "p50_us": round(single_p50 * 1e6, 2),
             "p99_us": round(single_p99 * 1e6, 2),
             "vs_single_p99": 1.0},
            {"arm": f"probe under >= {_REQUIRED_DEPTH} backlog "
                    f"(registrar draining)",
             "p50_us": round(loaded_p50 * 1e6, 2),
             "p99_us": round(loaded_p99 * 1e6, 2),
             "vs_single_p99": round(ratio, 2)},
        ],
        notes=[
            "submit cost is one bounded-queue append — independent of "
            "queue depth and of the clone/dedup/insert work behind it",
            f"loaded vs single p99: {ratio:.2f}x (bar <= "
            f"{_LATENCY_BAR}x); min probe-window depth "
            f"{min(depths)}; drain p99 "
            f"{(drain_p99 or 0) * 1e3:.2f}ms over {batches} batch(es)",
        ],
    ))
    assert ratio <= _LATENCY_BAR, (
        f"submit p99 must stay flat under a {_REQUIRED_DEPTH}+ backlog, "
        f"got {ratio:.2f}x (single {single_p99 * 1e6:.1f}us, "
        f"loaded {loaded_p99 * 1e6:.1f}us)"
    )
