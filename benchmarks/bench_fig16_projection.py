"""Figure 16: overhead & speedup vs percentage of projected data (QP).

Paper: as projection keeps more data, the Store overhead rises and the
reuse speedup falls; there is a net benefit (speedup > overhead) when the
Project reduces the input by more than half.
"""

import pytest

from repro.harness import fig16_projection


@pytest.mark.benchmark(group="fig16")
def test_fig16_projection(benchmark, record_experiment):
    result = benchmark.pedantic(fig16_projection, args=("default",),
                                rounds=1, iterations=1)
    record_experiment(result)
    overheads = result.column("overhead")
    speedups = result.column("speedup")
    # Monotone trends across the sweep.
    assert overheads == sorted(overheads)
    assert speedups == sorted(speedups, reverse=True)
    # Net benefit at strong projection (< half the data kept)...
    first = result.rows[0]
    assert first["projected_pct"] < 50
    assert first["speedup"] > first["overhead"]
    # ... and none when almost everything is kept.
    last = result.rows[-1]
    assert last["projected_pct"] > 50
    assert last["speedup"] < last["overhead"]
