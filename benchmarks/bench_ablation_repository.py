"""Ablations beyond the paper's figures (design choices in DESIGN.md):

* matcher cost as the repository grows (ReStore scans sequentially, so
  matching is linear in repository size — Section 5 motivates eviction
  partly by "the increasing number of plans to match");
* repository ordering on/off: first-match must be best-match only when
  the partial order is maintained;
* retention policy: Rules 1-4 keep the repository small at little cost.
"""

import pytest

from repro import PigSystem
from repro.pigmix import PigMixConfig, PigMixData
from repro.pigmix.queries import query_text
from repro.restore import (
    HeuristicRetentionPolicy,
    KeepEverythingPolicy,
    Repository,
)
from repro.restore.matcher import find_containment


def _system_with_data():
    system = PigSystem()
    PigMixData(PigMixConfig(num_page_views=400, num_users=40,
                            num_power_users=8)).install(system.dfs)
    return system


def _populated_repository(system, num_queries):
    """Fill a repository by running PigMix queries repeatedly with
    slightly different projections (distinct plans)."""
    restore = system.restore()
    names = ["L2", "L3", "L4", "L5", "L6", "L7", "L8", "L11"]
    for index in range(num_queries):
        name = names[index % len(names)]
        restore.submit(system.compile(query_text(name), f"fill{index}"))
    return restore.repository


@pytest.mark.benchmark(group="ablation-matcher-scaling")
@pytest.mark.parametrize("fill", [4, 8, 16])
def test_matcher_cost_vs_repository_size(benchmark, fill):
    system = _system_with_data()
    repository = _populated_repository(system, fill)
    workflow = system.compile(query_text("L3"), "probe")
    job = workflow.topological_jobs()[0]

    def scan_all():
        hits = 0
        for entry in repository.scan():
            if find_containment(entry.plan, job.plan) is not None:
                hits += 1
        return hits

    hits = benchmark(scan_all)
    assert hits >= 1  # the join structure is in the repository


@pytest.mark.benchmark(group="ablation-ordering")
def test_repository_ordering_first_match_is_best(benchmark):
    """With the partial order maintained, the first matching entry for Q2
    is the subsuming join plan, not one of the projection sub-plans.

    Rewriting is disabled while populating so that the whole-job entries
    stay expressed over the original datasets (a rewritten job registers
    its plan over materialized inputs, forming chains that the manager's
    rescan loop walks instead)."""
    system = _system_with_data()
    restore = system.restore(enable_rewrite=False)
    restore.submit(system.compile(query_text("L2"), "l2"))
    restore.submit(system.compile(query_text("L3"), "l3"))
    repository = restore.repository
    workflow = system.compile(query_text("L3"), "probe")
    join_job = workflow.topological_jobs()[0]

    def first_match():
        for entry in repository.scan():
            if find_containment(entry.plan, join_job.plan) is not None:
                return entry
        return None

    entry = benchmark(first_match)
    assert entry is not None
    matched_kinds = {op.kind for op in entry.plan.operators()}
    # Best match contains the join, not just a projection.
    assert "join" in matched_kinds


@pytest.mark.benchmark(group="ablation-retention")
def test_retention_policy_bounds_repository(benchmark, record_experiment):
    """Rules 1-4 vs keep-everything: entries and stored bytes."""

    def run_policy(policy_factory, window):
        system = _system_with_data()
        restore = system.restore(retention=policy_factory())
        if window is not None:
            restore.retention.window_ticks = window
        for round_index in range(3):
            for name in ("L2", "L3", "L6"):
                restore.submit(system.compile(query_text(name), name))
        return restore

    def measure():
        keep_all = run_policy(KeepEverythingPolicy, None)
        pruned = run_policy(lambda: HeuristicRetentionPolicy(window_ticks=3), 3)
        return keep_all, pruned

    keep_all, pruned = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert len(pruned.repository) <= len(keep_all.repository)
    # Both policies still allow reuse of the shared join.
    assert any(
        "join" in {op.kind for op in entry.plan.operators()}
        for entry in pruned.repository
    )

    from repro.harness.reporting import ExperimentResult

    record_experiment(ExperimentResult(
        "ablation_retention",
        "Retention policy ablation (3 rounds of L2/L3/L6)",
        ["policy", "entries", "stored_bytes"],
        [
            {"policy": "keep-everything",
             "entries": len(keep_all.repository),
             "stored_bytes": keep_all.repository.total_stored_bytes()},
            {"policy": "rules-1-4 (window=3)",
             "entries": len(pruned.repository),
             "stored_bytes": pruned.repository.total_stored_bytes()},
        ],
        notes=["beyond the paper: quantifies Section 5's guidelines"],
    ))
