"""Ablations beyond the paper's figures (design choices in DESIGN.md):

* matcher cost as the repository grows (ReStore scans sequentially, so
  matching is linear in repository size — Section 5 motivates eviction
  partly by "the increasing number of plans to match");
* repository ordering on/off: first-match must be best-match only when
  the partial order is maintained;
* retention policy: Rules 1-4 keep the repository small at little cost;
* **naive vs indexed repository** (PR 1): scan/insert/match timings of
  the frozen seed linear scan against the fingerprint + leaf-load
  indexed repository at 10/100/1000 entries;
* **candidate ranking** (PR 3): the paper's structural try-order vs the
  cost-model ``SavingsRanker`` over a PigMix-style stream — identical
  outputs, total simulated workflow time never worse, estimator error
  reported per arm;
* **incremental persistence** (PR 4): per-checkpoint cost of the full
  ``save_repository`` rewrite (O(repository)) vs the append-only
  ``RepositoryLog`` (O(delta)) at 1000 entries under a steady stream of
  small deltas — with the replayed state verified bit-identical;
* **segmented persistence** (PR 5, v5 order-delta manifests in PR 6):
  dirty-only compaction vs whole-repository compaction at 1000 entries
  across 8 shards with mutations confined to one shard — only the dirty
  shard's snapshot section is rewritten, only its segment truncated,
  and only a scan-order *delta* appended (O(dirty shards), bar ≥3x),
  replay verified bit-identical;
* **worker-process service** (PR 6): the 8-shard workload with each
  partition promoted to a worker process behind the routing front-end,
  probes shipped through the batched IPC-amortized path — candidate
  sequences bit-identical to the serial executor (asserted on any
  hardware), throughput bar ≥1.2x enforced on ≥4 cores;
* **worker-owned durability** (PR 10): checkpoint (flush + full
  compaction) throughput at 8 worker-backed shards with the partition
  files owned by the shard workers vs the front end — durable bytes
  bit-identical on any hardware, throughput bar ≥1.5x enforced on
  ≥4 cores.
"""

import json
import os
import time

import pytest

from repro import PigSystem
from repro.dfs import DistributedFileSystem
from repro.harness.reporting import ExperimentResult
from repro.physical.operators import POLoad, POStore
from repro.physical.plan import PhysicalPlan
from repro.pigmix import PigMixConfig, PigMixData
from repro.pigmix.queries import query_text
from repro.restore import (
    HeuristicRetentionPolicy,
    KeepEverythingPolicy,
    LinearScanRepository,
    load_repository,
    Repository,
    RepositoryEntry,
    RepositoryLog,
    save_repository,
    ShardedRepository,
)
from repro.restore.matcher import find_containment
from repro.restore.persistence import SkeletonOp
from repro.restore.stats import EntryStats


def _system_with_data():
    system = PigSystem()
    PigMixData(PigMixConfig(num_page_views=400, num_users=40,
                            num_power_users=8)).install(system.dfs)
    return system


def _populated_repository(system, num_queries):
    """Fill a repository by running PigMix queries repeatedly with
    slightly different projections (distinct plans)."""
    restore = system.restore()
    names = ["L2", "L3", "L4", "L5", "L6", "L7", "L8", "L11"]
    for index in range(num_queries):
        name = names[index % len(names)]
        restore.submit(system.compile(query_text(name), f"fill{index}"))
    return restore.repository


@pytest.mark.benchmark(group="ablation-matcher-scaling")
@pytest.mark.parametrize("fill", [4, 8, 16])
def test_matcher_cost_vs_repository_size(benchmark, fill):
    system = _system_with_data()
    repository = _populated_repository(system, fill)
    workflow = system.compile(query_text("L3"), "probe")
    job = workflow.topological_jobs()[0]

    def scan_all():
        hits = 0
        for entry in repository.scan():
            if find_containment(entry.plan, job.plan) is not None:
                hits += 1
        return hits

    hits = benchmark(scan_all)
    assert hits >= 1  # the join structure is in the repository


@pytest.mark.benchmark(group="ablation-ordering")
def test_repository_ordering_first_match_is_best(benchmark):
    """With the partial order maintained, the first matching entry for Q2
    is the subsuming join plan, not one of the projection sub-plans.

    Rewriting is disabled while populating so that the whole-job entries
    stay expressed over the original datasets (a rewritten job registers
    its plan over materialized inputs, forming chains that the manager's
    rescan loop walks instead)."""
    system = _system_with_data()
    restore = system.restore(enable_rewrite=False)
    restore.submit(system.compile(query_text("L2"), "l2"))
    restore.submit(system.compile(query_text("L3"), "l3"))
    repository = restore.repository
    workflow = system.compile(query_text("L3"), "probe")
    join_job = workflow.topological_jobs()[0]

    def first_match():
        for entry in repository.scan():
            if find_containment(entry.plan, join_job.plan) is not None:
                return entry
        return None

    entry = benchmark(first_match)
    assert entry is not None
    matched_kinds = {op.kind for op in entry.plan.operators()}
    # Best match contains the join, not just a projection.
    assert "join" in matched_kinds


@pytest.mark.benchmark(group="ablation-retention")
def test_retention_policy_bounds_repository(benchmark, record_experiment):
    """Rules 1-4 vs keep-everything: entries and stored bytes."""

    def run_policy(policy_factory, window):
        system = _system_with_data()
        restore = system.restore(retention=policy_factory())
        if window is not None:
            restore.retention.window_ticks = window
        for round_index in range(3):
            for name in ("L2", "L3", "L6"):
                restore.submit(system.compile(query_text(name), name))
        return restore

    def measure():
        keep_all = run_policy(KeepEverythingPolicy, None)
        pruned = run_policy(lambda: HeuristicRetentionPolicy(window_ticks=3), 3)
        return keep_all, pruned

    keep_all, pruned = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert len(pruned.repository) <= len(keep_all.repository)
    # Both policies still allow reuse of the shared join.
    assert any(
        "join" in {op.kind for op in entry.plan.operators()}
        for entry in pruned.repository
    )

    from repro.harness.reporting import ExperimentResult

    record_experiment(ExperimentResult(
        "ablation_retention",
        "Retention policy ablation (3 rounds of L2/L3/L6)",
        ["policy", "entries", "stored_bytes"],
        [
            {"policy": "keep-everything",
             "entries": len(keep_all.repository),
             "stored_bytes": keep_all.repository.total_stored_bytes()},
            {"policy": "rules-1-4 (window=3)",
             "entries": len(pruned.repository),
             "stored_bytes": pruned.repository.total_stored_bytes()},
        ],
        notes=["beyond the paper: quantifies Section 5's guidelines"],
    ))


# --- Naive (seed linear scan) vs indexed repository (PR 1) --------------------
#
# Fabricated single-chain skeleton plans keep the fixture cheap while
# exercising exactly what the repository indexes: signatures, DAG edges,
# and leaf loads. Entries share a small pool of load paths so the
# leaf-load index has real work to do (candidate sets are non-trivial),
# and every entry's operator chain is unique so the subsumption DAG stays
# sparse — the common shape of a production repository.

_MARGINAL_INSERTS = 3
_MATCH_PROBES = 8
_EQUIV_PROBES = 8


def _fabricated_plan(index, pool_size, extra_op=None):
    load = POLoad(f"/data/d{index % pool_size}", None, 0)
    chain = SkeletonOp("filter", f"FILTER[a>{index}]", None, [load])
    if extra_op is not None:
        chain = SkeletonOp("foreach", f"FOREACH[{extra_op}]", None, [chain])
    return PhysicalPlan([POStore(chain, f"/stored/s{index}")])


def _entry_pair(index, pool_size):
    """Twin entries (indexed repo, naive repo) over one fabricated plan."""
    plan = _fabricated_plan(index, pool_size)
    stats = EntryStats(
        input_bytes=1000 + (index % 7) * 500,
        output_bytes=10 + (index % 5) * 30,
        producing_job_time=1.0 + (index % 11),
    )
    path = f"/stored/s{index}"
    return (RepositoryEntry(plan, path, stats),
            RepositoryEntry(plan, path, stats))


def _bulk_load_naive(naive, entries):
    """Populate the seed repository without paying O(n^3): the greedy
    order is a pure function of the entry set, so appending everything
    and reordering once is equivalent to n sequential inserts."""
    for sequence, entry in enumerate(entries):
        entry._sequence = sequence
    naive._entries = list(entries)
    naive._sequence = len(entries)
    naive._reorder()


def _run_matcher_pass(repository, probe):
    hits = 0
    for entry in repository.match_candidates(probe):
        if find_containment(entry.plan, probe) is not None:
            hits += 1
    return hits


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


@pytest.mark.benchmark(group="ablation-indexed-repository")
@pytest.mark.parametrize("size", [10, 100, 1000])
def test_indexed_repository_vs_naive(benchmark, record_experiment, size):
    """Insert+match timings, seed linear scan vs indexed repository.

    The acceptance bar for PR 1: >=5x combined insert+match speedup at
    1000 entries, with bit-identical scan orders throughout.
    """
    pool_size = max(4, size // 10)
    pairs = [_entry_pair(index, pool_size) for index in range(size)]

    indexed = Repository()
    for indexed_entry, _ in pairs:
        indexed.insert(indexed_entry)
    naive = LinearScanRepository()
    _bulk_load_naive(naive, [naive_entry for _, naive_entry in pairs])
    assert [e.output_path for e in indexed.scan()] == \
        [e.output_path for e in naive.scan()]

    fresh = [_entry_pair(size + offset, pool_size)
             for offset in range(_MARGINAL_INSERTS)]
    # Half the probes contain a stored chain (a hit), half are foreign.
    probes = [
        _fabricated_plan(index if index % 2 == 0 else size * 2 + index,
                         pool_size, extra_op=f"probe{index}")
        for index in range(_MATCH_PROBES)
    ]
    equiv_plans = [_fabricated_plan(index * (size // _EQUIV_PROBES or 1),
                                    pool_size)
                   for index in range(_EQUIV_PROBES)]

    def measure():
        timings = {}
        timings["naive_insert"], _ = _timed(
            lambda: [naive.insert(entry) for _, entry in fresh])
        timings["indexed_insert"], _ = _timed(
            lambda: [indexed.insert(entry) for entry, _ in fresh])
        timings["naive_match"], naive_hits = _timed(
            lambda: [_run_matcher_pass(naive, probe) for probe in probes])
        timings["indexed_match"], indexed_hits = _timed(
            lambda: [_run_matcher_pass(indexed, probe) for probe in probes])
        assert naive_hits == indexed_hits
        timings["naive_equiv"], naive_found = _timed(
            lambda: [naive.find_equivalent(plan) for plan in equiv_plans])
        timings["indexed_equiv"], indexed_found = _timed(
            lambda: [indexed.find_equivalent(plan) for plan in equiv_plans])
        assert ([e and e.output_path for e in naive_found]
                == [e and e.output_path for e in indexed_found])
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert [e.output_path for e in indexed.scan()] == \
        [e.output_path for e in naive.scan()]

    naive_total = timings["naive_insert"] + timings["naive_match"]
    indexed_total = timings["indexed_insert"] + timings["indexed_match"]
    speedup = naive_total / max(indexed_total, 1e-9)
    record_experiment(ExperimentResult(
        f"ablation_indexed_repository_{size}",
        f"Naive vs indexed repository at {size} entries "
        f"({_MARGINAL_INSERTS} inserts, {_MATCH_PROBES} matcher passes, "
        f"{_EQUIV_PROBES} find_equivalent probes)",
        ["operation", "naive_s", "indexed_s", "speedup"],
        [
            {"operation": op,
             "naive_s": round(timings[f"naive_{op}"], 6),
             "indexed_s": round(timings[f"indexed_{op}"], 6),
             "speedup": round(timings[f"naive_{op}"]
                              / max(timings[f"indexed_{op}"], 1e-9), 1)}
            for op in ("insert", "match", "equiv")
        ],
        notes=[f"combined insert+match speedup: {speedup:.1f}x"],
    ))
    if size >= 1000:
        assert speedup >= 5.0, (
            f"indexed repository must be >=5x faster at {size} entries, "
            f"got {speedup:.1f}x (naive {naive_total:.4f}s, "
            f"indexed {indexed_total:.4f}s)"
        )


# --- Sharded repository: match throughput vs shard count (PR 2) ---------------
#
# The same fabricated 1000-entry workload, partitioned by leaf-load key.
# A probe reads one load key, so it consults exactly one shard; the
# per-probe filter cost drops from O(n) to O(n/N), which is what the
# throughput ratio measures (the serial executor is used so the numbers
# are pure algorithmic gains, not thread scheduling).

_SHARD_COUNTS = [1, 2, 8]
_SHARDED_SIZE = 1000
_SHARDED_PROBE_ROUNDS = 3


@pytest.mark.benchmark(group="ablation-sharded-repository")
def test_sharded_match_throughput_scales(benchmark, record_experiment):
    """match_candidates throughput must scale with shard count: the
    acceptance bar for PR 2 is >=2x at 8 shards vs 1 shard on the
    1000-entry workload, with identical candidate sequences throughout.
    """
    pool_size = max(4, _SHARDED_SIZE // 10)
    plans = [_fabricated_plan(index, pool_size)
             for index in range(_SHARDED_SIZE)]

    def populate(repository):
        for index, plan in enumerate(plans):
            stats = EntryStats(
                input_bytes=1000 + (index % 7) * 500,
                output_bytes=10 + (index % 5) * 30,
                producing_job_time=1.0 + (index % 11),
            )
            repository.insert(
                RepositoryEntry(plan, f"/stored/s{index}", stats))
        return repository

    repositories = {"unsharded": populate(Repository())}
    for shard_count in _SHARD_COUNTS:
        repositories[f"sharded-{shard_count}"] = populate(
            ShardedRepository(num_shards=shard_count, executor="serial"))

    # One probe per pool load key; every repository must hand the
    # matcher identical candidate sequences.
    probes = [_fabricated_plan(_SHARDED_SIZE * 2 + index, pool_size,
                               extra_op=f"shardprobe{index}")
              for index in range(pool_size)]
    reference = [[e.output_path for e in
                  repositories["unsharded"].match_candidates(probe)]
                 for probe in probes]
    for label, repository in repositories.items():
        assert [[e.output_path for e in repository.match_candidates(probe)]
                for probe in probes] == reference, label

    def measure():
        # Best-of-3 per repository: the ratio assertion below should
        # reflect algorithmic cost, not a scheduler hiccup in one pass.
        timings = {}
        for label, repository in repositories.items():
            passes = []
            for _ in range(3):
                seconds, _ = _timed(
                    lambda repo=repository: [repo.match_candidates(probe)
                                             for _ in range(_SHARDED_PROBE_ROUNDS)
                                             for probe in probes])
                passes.append(seconds)
            timings[label] = min(passes)
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    num_probes = len(probes) * _SHARDED_PROBE_ROUNDS
    throughput = {label: num_probes / max(seconds, 1e-9)
                  for label, seconds in timings.items()}
    scaling = throughput["sharded-8"] / max(throughput["sharded-1"], 1e-9)
    record_experiment(ExperimentResult(
        "ablation_sharded_repository",
        f"match_candidates throughput vs shard count "
        f"({_SHARDED_SIZE} entries, {num_probes} probes, serial executor)",
        ["repository", "seconds", "probes_per_s", "vs_1_shard"],
        [
            {"repository": label,
             "seconds": round(timings[label], 6),
             "probes_per_s": round(throughput[label], 1),
             "vs_1_shard": round(throughput[label]
                                 / max(throughput["sharded-1"], 1e-9), 2)}
            for label in ("unsharded", "sharded-1", "sharded-2", "sharded-8")
        ],
        notes=[f"8-shard vs 1-shard throughput: {scaling:.1f}x "
               f"(acceptance bar: >=2x)"],
    ))
    assert scaling >= 2.0, (
        f"sharded match_candidates must scale >=2x from 1 to 8 shards at "
        f"{_SHARDED_SIZE} entries, got {scaling:.1f}x "
        f"({throughput['sharded-1']:.0f} -> {throughput['sharded-8']:.0f} "
        f"probes/s)"
    )


# --- Worker-process service: routed batched probes vs serial fan-out (PR 6) ---
#
# The same 1000-entry 8-shard workload, with the partitions promoted to
# worker processes behind the routing front-end. Probes ship through the
# IPC-amortized batch API (one message per consulted worker per batch),
# so the per-worker filters genuinely overlap across cores. Candidate
# sequences must be bit-identical to the serial executor's throughout —
# that assertion is unconditional; the throughput bar only applies on
# hardware that can actually overlap the workers.

_SERVICE_SIZE = 1000
_SERVICE_SHARDS = 8
_SERVICE_ROUNDS = 3


@pytest.mark.benchmark(group="ablation-worker-service")
def test_worker_service_match_throughput(benchmark, record_experiment):
    """The service arm of the ablation: match throughput of the
    process-backed 8-shard repository (batched probes) vs the serial
    executor, decisions bit-identical. On >=4 cores the overlapped
    workers must win (bar: >=1.2x)."""
    pool_size = max(4, _SERVICE_SIZE // 10)
    plans = [_fabricated_plan(index, pool_size)
             for index in range(_SERVICE_SIZE)]

    def populate(repository):
        for index, plan in enumerate(plans):
            stats = EntryStats(
                input_bytes=1000 + (index % 7) * 500,
                output_bytes=10 + (index % 5) * 30,
                producing_job_time=1.0 + (index % 11),
            )
            repository.insert(
                RepositoryEntry(plan, f"/stored/s{index}", stats))
        return repository

    serial = populate(ShardedRepository(num_shards=_SERVICE_SHARDS,
                                        executor="serial"))
    service = populate(ShardedRepository(num_shards=_SERVICE_SHARDS,
                                         executor="processes"))
    probes = [_fabricated_plan(_SERVICE_SIZE * 2 + index, pool_size,
                               extra_op=f"svcprobe{index}")
              for index in range(pool_size)]

    # Unconditional: the routed batch answers exactly what the serial
    # fan-out answers, probe for probe, entry for entry.
    reference = [[e.output_path for e in cs]
                 for cs in serial.match_candidates_batch(probes)]
    assert [[e.output_path for e in cs]
            for cs in service.match_candidates_batch(probes)] == reference

    def measure():
        timings = {}
        for label, run in (
                ("serial",
                 lambda: [serial.match_candidates(probe)
                          for _ in range(_SERVICE_ROUNDS)
                          for probe in probes]),
                ("processes-batched",
                 lambda: [service.match_candidates_batch(probes)
                          for _ in range(_SERVICE_ROUNDS)])):
            passes = []
            for _ in range(3):
                seconds, _ = _timed(run)
                passes.append(seconds)
            timings[label] = min(passes)
        return timings

    try:
        timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    finally:
        service.close()
        serial.close()
    num_probes = len(probes) * _SERVICE_ROUNDS
    throughput = {label: num_probes / max(seconds, 1e-9)
                  for label, seconds in timings.items()}
    speedup = throughput["processes-batched"] / max(throughput["serial"],
                                                    1e-9)
    cores = os.cpu_count() or 1
    record_experiment(ExperimentResult(
        "ablation_worker_service",
        f"Worker-process service vs serial executor "
        f"({_SERVICE_SIZE} entries, {_SERVICE_SHARDS} shards, "
        f"{num_probes} probes, batched routing, {cores} core(s))",
        ["arm", "seconds", "probes_per_s", "speedup"],
        [
            {"arm": "serial executor",
             "seconds": round(timings["serial"], 6),
             "probes_per_s": round(throughput["serial"], 1),
             "speedup": 1.0},
            {"arm": "worker processes (batched probes)",
             "seconds": round(timings["processes-batched"], 6),
             "probes_per_s": round(throughput["processes-batched"], 1),
             "speedup": round(speedup, 2)},
        ],
        notes=[
            "decisions bit-identical to the serial fan-out (asserted "
            "unconditionally)",
            f"service vs serial throughput: {speedup:.2f}x on {cores} "
            f"core(s) (bar >=1.2x, enforced at >=4 cores)",
        ],
    ))
    if cores >= 4:
        assert speedup >= 1.2, (
            f"the worker-process service must beat the serial executor "
            f"on {cores} cores at {_SERVICE_SHARDS} shards, got "
            f"{speedup:.2f}x (serial {timings['serial']:.4f}s, "
            f"batched {timings['processes-batched']:.4f}s)"
        )


# --- In-memory replication: fan-out throughput + warm failover (PR 7) ---------
#
# The hot-shard scenario replication exists for: every entry and every
# probe routes to ONE partition (all plans share the lexicographically
# smallest load key "/data/hot"), so the single-worker pool serializes
# the whole probe batch on one process while the replicated pool splits
# it across the shard's replica set. The failover half measures the
# latency of the first probe after a worker kill: the plain pool pays a
# respawn plus a durable partition replay (snapshot_reads moves), the
# replicated pool a warm promotion (snapshot_reads must NOT move).

_REPL_SIZE = 800
_REPL_SHARDS = 8
_REPL_PROBES = 200
_REPL_ROUNDS = 3


def _hot_join_plan(index, extra_op=None):
    """join(/data/hot, /data/u<index>) [-> foreach] -> store: min load
    key "/data/hot" routes every plan to the same shard, and the entry's
    load set matches exactly the probe of the same index."""
    left = POLoad("/data/hot", None, 0)
    right = POLoad(f"/data/u{index}", None, 0)
    chain = SkeletonOp("join", f"JOIN[hot+u{index}]", None, [left, right])
    if extra_op is not None:
        chain = SkeletonOp("foreach", f"FOREACH[{extra_op}]", None, [chain])
    return PhysicalPlan([POStore(chain, f"/stored/h{index}")])


@pytest.mark.benchmark(group="ablation-replication")
def test_replication_fanout_and_failover(benchmark, record_experiment):
    """The replication arm of the ablation: batched match throughput on
    one hot shard, single worker vs the k=2 replica set (bar: >=1.5x on
    >=4 cores), plus warm-failover latency vs the cold durable replay —
    with snapshot reads witnessing that only the cold path replays."""
    from repro.restore.sharding import shard_index_for_key

    def populate(repository):
        for index in range(_REPL_SIZE):
            stats = EntryStats(
                input_bytes=1000 + (index % 7) * 500,
                output_bytes=10 + (index % 5) * 30,
                producing_job_time=1.0 + (index % 11),
            )
            repository.insert(RepositoryEntry(
                _hot_join_plan(index), f"/stored/h{index}", stats))
        return repository

    serial = populate(ShardedRepository(num_shards=_REPL_SHARDS,
                                        executor="serial"))
    single = populate(ShardedRepository(num_shards=_REPL_SHARDS,
                                        executor="processes"))
    replicated = populate(ShardedRepository(num_shards=_REPL_SHARDS,
                                            executor="processes",
                                            replicas=2))
    probes = [_hot_join_plan(index, extra_op=f"rprobe{index}")
              for index in range(_REPL_PROBES)]

    # Unconditional: one candidate per probe (its same-index entry), and
    # both process-backed pools answer exactly like the serial fan-out.
    reference = [[e.output_path for e in cs]
                 for cs in serial.match_candidates_batch(probes)]
    assert all(len(paths) == 1 for paths in reference)
    assert [[e.output_path for e in cs]
            for cs in single.match_candidates_batch(probes)] == reference
    assert [[e.output_path for e in cs]
            for cs in replicated.match_candidates_batch(probes)] == reference

    def measure():
        timings = {}
        for label, repo in (("single-worker", single),
                            ("replicated-2x", replicated)):
            passes = []
            for _ in range(3):
                seconds, _ = _timed(
                    lambda: [repo.match_candidates_batch(probes)
                             for _ in range(_REPL_ROUNDS)])
                passes.append(seconds)
            timings[label] = min(passes)
        return timings

    hot_shard = shard_index_for_key(("/data/hot", 0), _REPL_SHARDS)
    latency_probe = _hot_join_plan(0, extra_op="failover-latency")
    expected_latency = [e.output_path
                        for e in serial.match_candidates(latency_probe)]
    try:
        timings = benchmark.pedantic(measure, rounds=1, iterations=1)

        # Cold path: kill the single pool's only worker; the next probe
        # pays respawn + durable partition replay (one snapshot read).
        cold_log = RepositoryLog(DistributedFileSystem())
        cold_log.attach(single)
        cold_reads = cold_log.snapshot_reads
        victim = single.worker_pool._workers[hot_shard]
        victim.process.kill()
        victim.process.join()
        cold_s, cold_answer = _timed(
            lambda: single.match_candidates(latency_probe))
        assert [e.output_path for e in cold_answer] == expected_latency
        assert cold_log.snapshot_reads == cold_reads + 1
        assert single.worker_pool.recoveries == 1
        cold_log.close()

        # Warm path: kill the replica the round-robin cursor points at;
        # the next probe is answered by the promoted peer — no durable
        # read, no replay.
        warm_log = RepositoryLog(DistributedFileSystem())
        warm_log.attach(replicated)
        warm_reads = warm_log.snapshot_reads
        pool = replicated.worker_pool
        replicas = pool._replica_sets[hot_shard]
        victim = replicas[pool._cursors.get(hot_shard, 0) % len(replicas)]
        victim.process.kill()
        victim.process.join()
        warm_s, warm_answer = _timed(
            lambda: replicated.match_candidates(latency_probe))
        assert [e.output_path for e in warm_answer] == expected_latency
        assert warm_log.snapshot_reads == warm_reads
        assert pool.failovers == 1
        assert pool.recoveries == 0
        warm_log.close()
    finally:
        replicated.close()
        single.close()
        serial.close()

    num_probes = _REPL_PROBES * _REPL_ROUNDS
    throughput = {label: num_probes / max(seconds, 1e-9)
                  for label, seconds in timings.items()}
    speedup = throughput["replicated-2x"] / max(throughput["single-worker"],
                                                1e-9)
    recovery_ratio = cold_s / max(warm_s, 1e-9)
    cores = os.cpu_count() or 1
    record_experiment(ExperimentResult(
        "ablation_replication",
        f"Replicated worker pool (k=2) vs single worker on one hot shard "
        f"({_REPL_SIZE} entries, {_REPL_SHARDS} shards, {num_probes} "
        f"batched probes, {cores} core(s))",
        ["arm", "seconds", "probes_per_s", "speedup"],
        [
            {"arm": "single worker (batched probes)",
             "seconds": round(timings["single-worker"], 6),
             "probes_per_s": round(throughput["single-worker"], 1),
             "speedup": 1.0},
            {"arm": "replicated k=2 (batch split across replicas)",
             "seconds": round(timings["replicated-2x"], 6),
             "probes_per_s": round(throughput["replicated-2x"], 1),
             "speedup": round(speedup, 2)},
            {"arm": "cold failover (respawn + durable replay)",
             "seconds": round(cold_s, 6),
             "probes_per_s": "",
             "speedup": 1.0},
            {"arm": "warm failover (promote surviving replica)",
             "seconds": round(warm_s, 6),
             "probes_per_s": "",
             "speedup": round(recovery_ratio, 2)},
        ],
        notes=[
            "candidate sequences bit-identical to the serial fan-out "
            "(asserted unconditionally, both pools)",
            f"replica fan-out throughput: {speedup:.2f}x on {cores} "
            f"core(s) (bar >=1.5x, enforced at >=4 cores)",
            f"first probe after a kill: cold {cold_s * 1000:.2f}ms "
            f"(snapshot_reads +1) vs warm {warm_s * 1000:.2f}ms "
            f"(snapshot_reads unchanged) — {recovery_ratio:.1f}x",
        ],
    ))
    if cores >= 4:
        assert speedup >= 1.5, (
            f"splitting the hot shard's probe batch across 2 replicas "
            f"must beat the single worker on {cores} cores, got "
            f"{speedup:.2f}x (single {timings['single-worker']:.4f}s, "
            f"replicated {timings['replicated-2x']:.4f}s)"
        )


# --- Worker-owned durability: checkpoint throughput (PR 10) -------------------
#
# The steady-state checkpoint scenario worker-owned durability exists
# for: a 1000-entry repository across 8 worker-backed shards, every
# shard dirtied between checkpoints, each checkpoint a flush plus a
# full compaction. The front-end arm (``worker_durable=False``)
# serializes all 8 snapshot sections itself; the worker arm ships each
# shard's segment appends and section rewrite to the worker that owns
# the partition (a compact spec of stat patches, not entry payloads),
# so the O(repository) serialization overlaps across cores. The two
# arms must leave bit-identical durable files — the worker writes
# exactly the bytes the front end would have written — and that is
# asserted on any hardware; the throughput bar only applies where the
# workers can actually overlap.

_DURABLE_SIZE = 1000
_DURABLE_SHARDS = 8
_DURABLE_CHECKPOINTS = 5
_DURABLE_STAMPS = 64


@pytest.mark.benchmark(group="ablation-worker-durable")
def test_worker_durable_checkpoint_throughput(benchmark, record_experiment):
    """The durability arm of the ablation (PR 10): checkpoint (flush +
    full compact) throughput with partition files owned by the shard
    workers vs the front end, durable bytes bit-identical. On >=4
    cores the overlapped section writes must win (bar: >=1.5x)."""
    pool_size = max(4, _DURABLE_SIZE // 10)

    def build(worker_durable):
        dfs = DistributedFileSystem()
        repository = ShardedRepository(num_shards=_DURABLE_SHARDS,
                                       executor="processes")
        for index in range(_DURABLE_SIZE):
            plan = _fabricated_plan(index, pool_size)
            stats = EntryStats(
                input_bytes=1000 + (index % 7) * 500,
                output_bytes=10 + (index % 5) * 30,
                producing_job_time=1.0 + (index % 11),
            )
            repository.insert(
                RepositoryEntry(plan, f"/stored/s{index}", stats))
        log = RepositoryLog(dfs, worker_durable=worker_durable)
        log.attach(repository)
        # Workers spawn lazily on probes; durable ownership needs every
        # partition's worker alive before the first checkpoint, so warm
        # one probe per load key (covers every populated shard).
        probes = [_fabricated_plan(_DURABLE_SIZE * 2 + index, pool_size,
                                   extra_op=f"durprobe{index}")
                  for index in range(pool_size)]
        repository.match_candidates_batch(probes)
        return dfs, repository, log

    front_dfs, front_repo, front_log = build(False)
    worker_dfs, worker_repo, worker_log = build(None)  # auto-negotiated: on
    assert worker_repo.worker_pool.durable_enabled
    # Every hash shard populated (shard -1 holds leafless plans: none).
    assert all(size for shard_id, size in worker_repo.shard_sizes().items()
               if shard_id >= 0)

    def run_checkpoints(repository, log):
        total = 0.0
        for round_index in range(_DURABLE_CHECKPOINTS):
            entries = repository.scan()
            for stamp in range(_DURABLE_STAMPS):
                # Evenly spread over the scan order so every shard takes
                # appends (and section rewrites) each round.
                position = (stamp * len(entries) // _DURABLE_STAMPS
                            + round_index) % len(entries)
                repository.record_use(entries[position],
                                      round_index * 1000 + stamp + 1)
            seconds, _ = _timed(lambda: (log.flush(), log.compact()))
            total += seconds
        return total

    def measure():
        return {"front-end": run_checkpoints(front_repo, front_log),
                "worker-owned": run_checkpoints(worker_repo, worker_log)}

    try:
        timings = benchmark.pedantic(measure, rounds=1, iterations=1)

        # Unconditional: same checkpoints, same files, same bytes —
        # manifest, every section generation, every segment, order log.
        front_files = sorted(front_dfs.list_files(prefix="/restore/"))
        worker_files = sorted(worker_dfs.list_files(prefix="/restore/"))
        assert front_files == worker_files
        for file in front_files:
            assert front_dfs.read_lines(file) \
                == worker_dfs.read_lines(file), file
        # The worker arm really took the worker path (and only it did).
        assert worker_log.worker_sections \
            >= _DURABLE_CHECKPOINTS * _DURABLE_SHARDS
        assert worker_log.worker_flushes >= _DURABLE_CHECKPOINTS
        assert front_log.worker_sections == front_log.worker_flushes == 0
        # Durability: replaying the worker-written files rebuilds the
        # live state exactly.
        reloaded = load_repository(worker_dfs)
        assert [(e.output_path, e.stats.use_count, e.stats.last_used_tick)
                for e in reloaded.scan()] == \
            [(e.output_path, e.stats.use_count, e.stats.last_used_tick)
             for e in worker_repo.scan()]
    finally:
        worker_log.close()
        front_log.close()
        worker_repo.close()
        front_repo.close()

    throughput = {label: _DURABLE_CHECKPOINTS / max(seconds, 1e-9)
                  for label, seconds in timings.items()}
    speedup = throughput["worker-owned"] / max(throughput["front-end"], 1e-9)
    cores = os.cpu_count() or 1
    record_experiment(ExperimentResult(
        "ablation_worker_durable",
        f"Worker-owned vs front-end checkpointing ({_DURABLE_SIZE} "
        f"entries, {_DURABLE_SHARDS} shards, {_DURABLE_CHECKPOINTS} "
        f"checkpoints of {_DURABLE_STAMPS} use-stamps + flush + full "
        f"compaction, {cores} core(s))",
        ["arm", "seconds", "checkpoints_per_s", "speedup"],
        [
            {"arm": "front-end durable writes (worker_durable=False)",
             "seconds": round(timings["front-end"], 6),
             "checkpoints_per_s": round(throughput["front-end"], 2),
             "speedup": 1.0},
            {"arm": "worker-owned partitions (segment + section in worker)",
             "seconds": round(timings["worker-owned"], 6),
             "checkpoints_per_s": round(throughput["worker-owned"], 2),
             "speedup": round(speedup, 2)},
        ],
        notes=[
            "durable files bit-identical across arms (asserted "
            "unconditionally, every file every byte)",
            f"worker-owned vs front-end checkpoint throughput: "
            f"{speedup:.2f}x on {cores} core(s) (bar >=1.5x, enforced "
            f"at >=4 cores)",
        ],
    ))
    if cores >= 4:
        assert speedup >= 1.5, (
            f"worker-owned checkpointing must beat the front end on "
            f"{cores} cores at {_DURABLE_SHARDS} shards, got "
            f"{speedup:.2f}x (front-end {timings['front-end']:.4f}s, "
            f"worker-owned {timings['worker-owned']:.4f}s)"
        )


# --- Candidate ranking: structural order vs cost-model savings (PR 3) ---------
#
# Both arms run the same PigMix-style stream (repeats included, so the
# matcher has real candidates to rank). Ranking only reorders the
# matcher's walk — outputs must stay byte-identical — and because the
# savings ranker keeps subsumption a hard constraint, its total simulated
# workflow time can never exceed the structural order's.

_RANKING_STREAM = ["L2", "L3", "L3a", "L6", "L2", "L3", "L3b", "L7",
                   "L8", "L3c", "L3", "L2"]


@pytest.mark.benchmark(group="ablation-ranking")
def test_ranking_savings_never_loses_to_structural(benchmark, record_experiment):
    """The acceptance bar for PR 3's ranking arm: SavingsRanker total
    simulated workflow time <= structural order's on the PigMix-style
    stream, with identical outputs and the per-candidate estimated vs
    realized savings surfaced in the recorded experiment."""

    def run_arm(ranker):
        system = _system_with_data()
        restore = system.restore(ranker=ranker)
        totals = {"time": 0.0, "estimated": 0.0, "realized": 0.0,
                  "rewrites": 0}
        for index, name in enumerate(_RANKING_STREAM):
            result = restore.submit(
                system.compile(query_text(name), f"rank{index}"))
            totals["time"] += result.total_execution_time
            ledger = restore.last_report.ranking
            totals["estimated"] += ledger.total_estimated_savings
            totals["realized"] += ledger.total_realized_savings
            totals["rewrites"] += len(ledger)
        outputs = {path: system.dfs.read_lines(path)
                   for path in system.dfs.list_files("/out")}
        return totals, outputs

    def measure():
        return {"structural": run_arm(None), "savings": run_arm("savings")}

    arms = benchmark.pedantic(measure, rounds=1, iterations=1)
    (structural, structural_outputs) = arms["structural"]
    (savings, savings_outputs) = arms["savings"]
    assert savings_outputs == structural_outputs  # ranking changes no result
    assert savings["rewrites"] >= 1

    record_experiment(ExperimentResult(
        "ablation_ranking",
        f"Candidate ranking ablation over a {len(_RANKING_STREAM)}-query "
        f"PigMix-style stream",
        ["ranker", "total_time_s", "rewrites", "estimated_savings_s",
         "realized_savings_s"],
        [
            {"ranker": label,
             "total_time_s": round(arm["time"], 1),
             "rewrites": arm["rewrites"],
             "estimated_savings_s": round(arm["estimated"], 1),
             "realized_savings_s": round(arm["realized"], 1)}
            for label, (arm, _) in arms.items()
        ],
        notes=[
            "beyond the paper: rule 2's structural metrics replaced by "
            "Equation-2 estimated savings (subsumption kept hard)",
            f"savings vs structural total time: {savings['time']:.1f}s "
            f"vs {structural['time']:.1f}s (bar: never worse)",
        ],
    ))
    assert savings["time"] <= structural["time"] + 1e-6, (
        f"SavingsRanker must never lose to structural order, got "
        f"{savings['time']:.2f}s vs {structural['time']:.2f}s"
    )


# --- Incremental persistence: append-only log vs full rewrite (PR 4) ----------
#
# The steady-state checkpoint scenario the v3 format exists for: a
# repository of 1000 entries, mutated by a small delta (2 inserts + 1
# use-stamp) between checkpoints. The full-rewrite arm re-serializes all
# ~1000 entries every time; the incremental arm appends 3 records. Both
# arms maintain bit-identical repository state, and the incremental
# arm's durability is verified by reloading snapshot+log at the end.

_PERSIST_SIZE = 1000
_PERSIST_CHECKPOINTS = 30
_PERSIST_INSERTS_PER_ROUND = 2


@pytest.mark.benchmark(group="ablation-incremental-persistence")
def test_incremental_checkpoint_beats_full_rewrite(benchmark, record_experiment):
    """The acceptance bar for PR 4: steady-state incremental
    checkpointing must beat the full rewrite by >=5x at 1000 entries
    with small deltas, while replay rebuilds the exact same state."""
    pool_size = max(4, _PERSIST_SIZE // 10)
    full_dfs = DistributedFileSystem()
    inc_dfs = DistributedFileSystem()
    full_repo = Repository()
    inc_repo = Repository()
    for index in range(_PERSIST_SIZE):
        full_entry, inc_entry = _entry_pair(index, pool_size)
        full_repo.insert(full_entry)
        inc_repo.insert(inc_entry)
    # Baseline durability (untimed): one full save each. The default
    # compact_ratio never triggers inside the measured window (90 log
    # records over ~1000 entries), so the timings isolate the append
    # path — the steady state between compactions.
    save_repository(full_repo, full_dfs)
    log = RepositoryLog(inc_dfs).attach(inc_repo)

    def run_checkpoints():
        timings = {"full": 0.0, "incremental": 0.0}
        next_index = _PERSIST_SIZE
        for round_index in range(_PERSIST_CHECKPOINTS):
            for _ in range(_PERSIST_INSERTS_PER_ROUND):
                full_entry, inc_entry = _entry_pair(next_index, pool_size)
                next_index += 1
                full_repo.insert(full_entry)
                inc_repo.insert(inc_entry)
            position = round_index % _PERSIST_SIZE
            full_repo.scan()[position].stats.record_use(round_index)
            inc_repo.record_use(inc_repo.scan()[position], round_index)
            seconds, _ = _timed(lambda: save_repository(full_repo, full_dfs))
            timings["full"] += seconds
            seconds, outcome = _timed(log.checkpoint)
            assert not outcome["compacted"]  # steady state: appends only
            timings["incremental"] += seconds
        return timings

    timings = benchmark.pedantic(run_checkpoints, rounds=1, iterations=1)
    # Durability check: the incremental arm's snapshot+log replay must be
    # bit-identical to the live state (which equals the full arm's).
    reloaded = load_repository(inc_dfs)
    assert [e.output_path for e in reloaded.scan()] == \
        [e.output_path for e in inc_repo.scan()] == \
        [e.output_path for e in full_repo.scan()]
    assert [(e.stats.use_count, e.stats.last_used_tick)
            for e in reloaded.scan()] == \
        [(e.stats.use_count, e.stats.last_used_tick)
         for e in inc_repo.scan()]

    speedup = timings["full"] / max(timings["incremental"], 1e-9)
    per_checkpoint = {label: seconds / _PERSIST_CHECKPOINTS
                      for label, seconds in timings.items()}
    record_experiment(ExperimentResult(
        "ablation_incremental_persistence",
        f"Full rewrite vs append-only log over {_PERSIST_CHECKPOINTS} "
        f"checkpoints at {_PERSIST_SIZE}+ entries "
        f"({_PERSIST_INSERTS_PER_ROUND} inserts + 1 use-stamp per delta)",
        ["arm", "total_s", "per_checkpoint_s", "speedup"],
        [
            {"arm": "full-rewrite (v1 save_repository)",
             "total_s": round(timings["full"], 6),
             "per_checkpoint_s": round(per_checkpoint["full"], 6),
             "speedup": 1.0},
            {"arm": "incremental (v3 RepositoryLog)",
             "total_s": round(timings["incremental"], 6),
             "per_checkpoint_s": round(per_checkpoint["incremental"], 6),
             "speedup": round(speedup, 1)},
        ],
        notes=[
            "steady-state checkpoint cost is O(delta), not O(repository)",
            f"incremental vs full rewrite: {speedup:.1f}x "
            f"(acceptance bar: >=5x)",
        ],
    ))
    assert speedup >= 5.0, (
        f"incremental checkpointing must be >=5x cheaper than the full "
        f"rewrite at {_PERSIST_SIZE} entries, got {speedup:.1f}x "
        f"(full {timings['full']:.4f}s, "
        f"incremental {timings['incremental']:.4f}s)"
    )


# --- Segmented persistence: dirty-only vs whole-repository compaction (PR 5) ---
#
# The steady-state compaction scenario the v4 format exists for: a
# 1000-entry repository partitioned across 8 shards, with a mutation
# burst confined to a single shard. The dirty-only arm compacts just
# that shard (one section rewrite + one segment truncation + the
# keys-only manifest line); the full arm re-serializes every section.
# Both arms are driven from identical twin states, and the dirty twin's
# durability is verified by reloading manifest+sections+segments.

_SEGMENTED_SIZE = 1000
_SEGMENTED_SHARDS = 8
_SEGMENTED_STAMPS = 400


@pytest.mark.benchmark(group="ablation-segmented-persistence")
def test_segmented_compaction_is_dirty_only(benchmark, record_experiment):
    """The acceptance bar for PR 5: with 8 shards and mutations confined
    to one shard, ``compact()`` rewrites only that shard's snapshot
    section and truncates only its segment — >=3x cheaper than
    compacting the whole repository."""
    from repro.restore.persistence import (
        DEFAULT_REPOSITORY_PATH,
        section_file_prefix,
        shard_label,
    )

    pool_size = max(4, _SEGMENTED_SIZE // 10)

    def build():
        dfs = DistributedFileSystem()
        repository = ShardedRepository(num_shards=_SEGMENTED_SHARDS)
        for index in range(_SEGMENTED_SIZE):
            entry, _ = _entry_pair(index, pool_size)
            repository.insert(entry)
        # The initial full snapshot (untimed) seeds every section.
        log = RepositoryLog(dfs).attach(repository)
        return dfs, repository, log

    dirty_dfs, dirty_repo, dirty_log = build()
    full_dfs, full_repo, full_log = build()
    # Both twins share the layout (placement is a pure load-key hash).
    target = dirty_repo.shard_id_of(dirty_repo.scan()[0])
    target_label = shard_label(target)

    def stamp_one_shard(repository, log):
        victims = [entry for entry in repository.scan()
                   if repository.shard_id_of(entry) == target]
        for tick in range(_SEGMENTED_STAMPS):
            repository.record_use(victims[tick % len(victims)], tick + 1)
        log.flush()

    stamp_one_shard(dirty_repo, dirty_log)
    stamp_one_shard(full_repo, full_log)
    assert dirty_log.dirty_shards() == [target_label]

    section_prefix = section_file_prefix(DEFAULT_REPOSITORY_PATH)
    sections_before = {file: dirty_dfs.status(file).version
                       for file in dirty_dfs.list_files(prefix=section_prefix)}
    segments_before = {file: dirty_dfs.status(file).version
                       for file in dirty_dfs.list_files(
                           prefix=f"{dirty_log.log_path}.")}

    def measure():
        timings = {}
        timings["dirty_only"], compacted = _timed(
            lambda: dirty_log.compact(dirty_log.dirty_shards()))
        assert compacted == [target_label]
        timings["full"], _ = _timed(full_log.compact)
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Only the dirty shard's section was rewritten: every clean section
    # is the same file at the same version, and the one replaced file
    # belongs to the target shard.
    sections_after = {file: dirty_dfs.status(file).version
                      for file in dirty_dfs.list_files(prefix=section_prefix)}
    replaced = set(sections_before) ^ set(sections_after)
    assert {file.split(".sec-")[1].split(".g")[0] for file in replaced} \
        == {target_label}
    for file in set(sections_before) & set(sections_after):
        assert sections_before[file] == sections_after[file]
    # Only the dirty shard's segment was truncated.
    for file, version in segments_before.items():
        if file == dirty_log.segment_path(target):
            assert dirty_dfs.read_lines(file) == []
        else:
            assert dirty_dfs.status(file).version == version
    # Durability: the dirty-only twin replays bit-identical state.
    reloaded = load_repository(dirty_dfs)
    for twin in (dirty_repo, full_repo):
        assert [(e.output_path, e.stats.use_count, e.stats.last_used_tick)
                for e in reloaded.scan()] == \
            [(e.output_path, e.stats.use_count, e.stats.last_used_tick)
             for e in twin.scan()]

    # v5 order-delta manifests: the dirty-only compaction's manifest
    # write is O(dirty shards) — the global order is NOT re-embedded or
    # rewritten. Use-stamps change no scan position, so the appended
    # delta record is empty, however many entries the repository holds;
    # the full arm's rebase re-records all _SEGMENTED_SIZE pairs.
    manifest = json.loads(
        dirty_dfs.read_lines(DEFAULT_REPOSITORY_PATH)[0])
    assert "order" not in manifest
    order_records = [json.loads(line)
                     for line in dirty_dfs.read_lines(manifest["order_log"])]
    delta = order_records[-1]
    assert "full" not in delta
    assert delta["removed"] == [] and delta["inserted"] == []
    full_manifest = json.loads(
        full_dfs.read_lines(DEFAULT_REPOSITORY_PATH)[0])
    [full_record] = [json.loads(line) for line in
                     full_dfs.read_lines(full_manifest["order_log"])]
    assert len(full_record["full"]) == _SEGMENTED_SIZE
    delta_bytes = len(json.dumps(delta))
    full_bytes = len(json.dumps(full_record))
    assert delta_bytes * 10 < full_bytes  # O(changes), not O(repository)

    speedup = timings["full"] / max(timings["dirty_only"], 1e-9)
    record_experiment(ExperimentResult(
        "ablation_segmented_persistence",
        f"Dirty-only vs whole-repository compaction at {_SEGMENTED_SIZE} "
        f"entries across {_SEGMENTED_SHARDS} shards "
        f"({_SEGMENTED_STAMPS} use-stamps confined to shard "
        f"{target_label})",
        ["arm", "seconds", "sections_rewritten", "speedup"],
        [
            {"arm": "full compaction (every section)",
             "seconds": round(timings["full"], 6),
             "sections_rewritten": _SEGMENTED_SHARDS,
             "speedup": 1.0},
            {"arm": "dirty-only (v5 order-delta RepositoryLog)",
             "seconds": round(timings["dirty_only"], 6),
             "sections_rewritten": 1,
             "speedup": round(speedup, 1)},
        ],
        notes=[
            "steady-state compaction cost is O(dirty shards), not "
            "O(repository)",
            f"dirty-only vs full compaction: {speedup:.1f}x "
            f"(acceptance bar: >=3x)",
        ],
    ))
    assert speedup >= 3.0, (
        f"dirty-only compaction must be >=3x cheaper than the full "
        f"rewrite when 1 of {_SEGMENTED_SHARDS} shards is dirty, got "
        f"{speedup:.1f}x (full {timings['full']:.4f}s, "
        f"dirty-only {timings['dirty_only']:.4f}s)"
    )


@pytest.mark.benchmark(group="ablation-scan-snapshot")
def test_scan_returns_cached_immutable_snapshot(benchmark):
    """The matcher's rescan loop calls scan() per pass; the repository
    must hand back one cached tuple, not allocate a fresh list per call
    (micro-benchmark assertion for the PR 1 satellite fix)."""
    repository = Repository()
    for index in range(50):
        entry, _ = _entry_pair(index, pool_size=8)
        repository.insert(entry)

    snapshot = benchmark(repository.scan)
    assert isinstance(snapshot, tuple)
    assert repository.scan() is snapshot  # cached: no per-call allocation
