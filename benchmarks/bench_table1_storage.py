"""Table 1: input bytes, injected-Store bytes per heuristic, final output.

Paper: HA stores far less than NH and usually close to HC, except for
wide-group queries (L6) where HA stores much more than HC. Note that in
this reproduction NH is close to HA on most queries because our compiled
plans are minimal (the paper's Pig plans contain implicit operators that
NH also materializes) — see EXPERIMENTS.md.
"""

import pytest

from repro.harness import table1_storage


@pytest.mark.benchmark(group="table1")
def test_table1_storage(benchmark, record_experiment):
    result = benchmark.pedantic(table1_storage, args=("default",),
                                rounds=1, iterations=1)
    record_experiment(result)
    for row in result.rows:
        # HC <= HA <= NH for every query.
        assert row["HC_GB"] <= row["HA_GB"] * 1.001
        assert row["HA_GB"] <= row["NH_GB"] * 1.001
        # Stored sub-jobs are a small fraction of the input.
        assert row["HA_GB"] < row["input_GB"] * 0.5
    # L6's wide group makes HA store much more than HC (paper's callout).
    l6 = result.row_for("query", "L6")
    assert l6["HA_GB"] > l6["HC_GB"] * 1.5
    # L2's join feeds a Store directly, so HA == HC there (paper: 3.1/3.1).
    l2 = result.row_for("query", "L2")
    assert l2["HA_GB"] == pytest.approx(l2["HC_GB"])
