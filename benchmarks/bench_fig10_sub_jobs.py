"""Figure 10: the effect of reusing sub-job outputs (HA, 150 GB).

Paper: average speedup 24.4x when all HA-selected sub-jobs are available;
average Store-injection overhead 1.6x.
"""

import pytest

from repro.harness import fig10_sub_jobs


@pytest.mark.benchmark(group="fig10")
def test_fig10_sub_jobs(benchmark, record_experiment):
    result = benchmark.pedantic(fig10_sub_jobs, args=("default",),
                                rounds=1, iterations=1)
    record_experiment(result)
    average = result.row_for("query", "average")
    # Shape: an order-of-magnitude average speedup, like the paper's 24.4.
    assert average["speedup"] > 10.0
    # Generating sub-jobs costs extra time but not catastrophically
    # (paper: 1.6x average).
    assert 1.0 < average["overhead"] < 3.0
    # Reuse must beat no-reuse for every query.
    for row in result.rows:
        assert row["reusing_min"] < row["no_reuse_min"]
        assert row["generating_min"] >= row["no_reuse_min"] * 0.999
