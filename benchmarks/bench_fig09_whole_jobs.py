"""Figure 9: the effect of reusing whole job outputs (150 GB instance).

Paper: L3/L11 variants sped up 9.8x on average by reusing intermediate
whole-job outputs stored during prior executions; zero overhead (no extra
Store operators are injected).
"""

import pytest

from repro.harness import fig9_whole_jobs


@pytest.mark.benchmark(group="fig9")
def test_fig9_whole_jobs(benchmark, record_experiment):
    result = benchmark.pedantic(fig9_whole_jobs, args=("default",),
                                rounds=1, iterations=1)
    record_experiment(result)
    average = result.row_for("query", "average")
    # Shape: reuse is a large win on multi-job workflows.
    assert average["speedup"] > 3.0
    # Every variant must be at least as fast with reuse.
    for row in result.rows:
        assert row["reusing_jobs_min"] <= row["no_reuse_min"] * 1.001
    # The L3 family shares its join job; all variants see similar reuse.
    l3_times = [result.row_for("query", name)["reusing_jobs_min"]
                for name in ("L3", "L3a", "L3b", "L3c")]
    assert max(l3_times) < min(l3_times) * 1.25
