"""The logical plan container: a DAG of LogicalOps with STORE sinks."""

from repro.common.errors import PlanError


class LogicalPlan:
    """Holds the sinks (LOStore ops); the DAG is reachable from them."""

    def __init__(self, sinks):
        self.sinks = list(sinks)
        if not self.sinks:
            raise PlanError("a query must have at least one STORE")

    def operators(self):
        """All reachable operators in topological (inputs-first) order."""
        ordered = []
        seen = set()

        def visit(op):
            if id(op) in seen:
                return
            seen.add(id(op))
            for parent in op.inputs:
                visit(parent)
            ordered.append(op)

        for sink in self.sinks:
            visit(sink)
        return ordered

    def sources(self):
        return [op for op in self.operators() if not op.inputs]

    def consumers_of(self, target):
        """Operators that read ``target``'s output."""
        return [op for op in self.operators() if target in op.inputs]

    def describe(self):
        lines = []
        for op in self.operators():
            inputs = ", ".join(f"#{parent.op_id}" for parent in op.inputs)
            lines.append(f"#{op.op_id} {op.describe()} <- [{inputs}]")
        return "\n".join(lines)
