"""Logical plans: the typed operator DAG built from a parsed query.

The logical layer resolves aliases, compiles expressions enough to infer
schemas, and validates the query. The physical layer
(:mod:`repro.physical`) then translates it 1:1 into executable operators;
the MR compiler (:mod:`repro.mrcompiler`) splits those into MapReduce jobs
— mirroring Pig's pipeline (paper Section 6.1).
"""

from repro.logical.builder import build_logical_plan
from repro.logical.plan import LogicalPlan

__all__ = ["build_logical_plan", "LogicalPlan"]
