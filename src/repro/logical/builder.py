"""Translate a parsed query (AST) into a :class:`LogicalPlan`.

Mirrors Pig's front end: resolves aliases in statement order, validates
references, and produces a DAG rooted at the STORE statements.
"""

from repro.common.errors import PlanError
from repro.piglatin import ast
from repro.piglatin.expressions import schema_from_load_fields
from repro.logical import operators as lo
from repro.logical.plan import LogicalPlan


def build_logical_plan(query, catalog=None):
    """Build a logical plan for ``query``.

    ``catalog`` optionally maps dataset paths to schemas, used when a LOAD
    has no AS clause (like Pig reading from HCatalog).
    """
    builder = _Builder(catalog or {})
    return builder.build(query)


class _Builder:
    def __init__(self, catalog):
        self._catalog = catalog
        self._env = {}
        self._sinks = []

    def build(self, query):
        for statement in query.statements:
            self._statement(statement)
        if not self._sinks:
            raise PlanError("query has no STORE statement; nothing to execute")
        return LogicalPlan(self._sinks)

    def _lookup(self, alias):
        try:
            return self._env[alias]
        except KeyError as exc:
            raise PlanError(f"unknown alias {alias!r}") from exc

    def _define(self, alias, op):
        # Pig allows alias redefinition; the newest definition wins.
        self._env[alias] = op

    def _statement(self, statement):
        if isinstance(statement, ast.LoadStmt):
            self._load(statement)
        elif isinstance(statement, ast.ForEachStmt):
            op = lo.LOForEach(self._lookup(statement.input_alias), statement.items,
                              alias=statement.alias, inner=statement.inner)
            self._define(statement.alias, op)
        elif isinstance(statement, ast.FilterStmt):
            op = lo.LOFilter(self._lookup(statement.input_alias), statement.condition,
                             alias=statement.alias)
            self._define(statement.alias, op)
        elif isinstance(statement, ast.JoinStmt):
            (left_name, left_keys), (right_name, right_keys) = statement.inputs
            op = lo.LOJoin(
                self._lookup(left_name),
                self._lookup(right_name),
                left_keys,
                right_keys,
                alias=statement.alias,
                parallel=statement.parallel,
            )
            self._define(statement.alias, op)
        elif isinstance(statement, ast.GroupStmt):
            op = lo.LOGroup(self._lookup(statement.input_alias), statement.keys,
                            alias=statement.alias, parallel=statement.parallel)
            self._define(statement.alias, op)
        elif isinstance(statement, ast.CoGroupStmt):
            inputs = [self._lookup(name) for name, _ in statement.inputs]
            key_lists = [keys for _, keys in statement.inputs]
            op = lo.LOCoGroup(inputs, key_lists, alias=statement.alias,
                              parallel=statement.parallel)
            self._define(statement.alias, op)
        elif isinstance(statement, ast.DistinctStmt):
            op = lo.LODistinct(self._lookup(statement.input_alias),
                               alias=statement.alias, parallel=statement.parallel)
            self._define(statement.alias, op)
        elif isinstance(statement, ast.UnionStmt):
            inputs = [self._lookup(name) for name in statement.input_aliases]
            op = lo.LOUnion(inputs, alias=statement.alias)
            self._define(statement.alias, op)
        elif isinstance(statement, ast.OrderStmt):
            op = lo.LOSort(self._lookup(statement.input_alias), statement.keys,
                           alias=statement.alias, parallel=statement.parallel)
            self._define(statement.alias, op)
        elif isinstance(statement, ast.LimitStmt):
            op = lo.LOLimit(self._lookup(statement.input_alias), statement.count,
                            alias=statement.alias)
            self._define(statement.alias, op)
        elif isinstance(statement, ast.SplitStmt):
            # Desugar: each branch is a FILTER over the split input (rows
            # satisfying several conditions go to several branches, as in
            # Pig). The physical Split operator proper is used by ReStore's
            # sub-job materialization.
            source = self._lookup(statement.input_alias)
            for branch_alias, condition in statement.branches:
                self._define(branch_alias,
                             lo.LOFilter(source, condition, alias=branch_alias))
        elif isinstance(statement, ast.StoreStmt):
            self._sinks.append(lo.LOStore(self._lookup(statement.alias), statement.path,
                                          alias=statement.alias))
        else:
            raise PlanError(f"unsupported statement {statement!r}")

    def _load(self, statement):
        if statement.fields:
            schema = schema_from_load_fields(statement.fields)
        elif statement.path in self._catalog:
            schema = self._catalog[statement.path]
        else:
            raise PlanError(
                f"LOAD {statement.path!r} needs an AS clause or a catalog entry"
            )
        self._define(statement.alias, lo.LOLoad(statement.path, schema,
                                                alias=statement.alias))
