"""Logical operators: schema-aware nodes that still carry AST expressions."""

import itertools

from repro.common.errors import PlanError
from repro.data.schema import Field, Schema
from repro.data.types import DataType
from repro.piglatin import ast
from repro.piglatin.expressions import BOOLEAN, compile_expression, compile_predicate

_ids = itertools.count(1)

GROUP_FIELD = "group"


class LogicalOp:
    """Base logical operator: ``inputs`` are upstream LogicalOps."""

    kind = "abstract"

    def __init__(self, inputs, alias=None):
        self.op_id = next(_ids)
        self.inputs = list(inputs)
        self.alias = alias
        self.schema = None  # set by _infer_schema in subclasses

    @property
    def input_schemas(self):
        return [op.schema for op in self.inputs]

    def describe(self):
        return f"{self.kind}({self.alias or ''})"

    def __repr__(self):
        return f"<{type(self).__name__} #{self.op_id} {self.alias or ''}>"


class LOLoad(LogicalOp):
    kind = "load"

    def __init__(self, path, schema, alias=None):
        super().__init__([], alias)
        self.path = path
        self.schema = schema


class LOForEach(LogicalOp):
    """FOREACH ... GENERATE, optionally with a nested inner block."""

    kind = "foreach"

    def __init__(self, input_op, items, alias=None, inner=()):
        super().__init__([input_op], alias)
        self.items = tuple(items)
        self.inner = tuple(inner)
        self.schema = self._infer_schema()

    def _infer_schema(self):
        from repro.piglatin.nested import compile_inner_pipeline

        input_schema = self.inputs[0].schema
        if self.inner:
            input_schema, _ = compile_inner_pipeline(input_schema, self.inner)
        fields = []
        used_names = set()
        for index, item in enumerate(self.items):
            if item.flatten:
                fields.extend(self._flatten_fields(item, input_schema))
                used_names.update(field.name for field in fields)
                continue
            compiled = compile_expression(item.expr, input_schema)
            if compiled.dtype is DataType.BAG or compiled.is_bag_projection:
                raise PlanError(
                    f"GENERATE item {index} produces a bag; wrap it in an "
                    "aggregate or FLATTEN"
                )
            if compiled.dtype is BOOLEAN:
                raise PlanError(f"GENERATE item {index} is a bare boolean predicate")
            name = item.alias or compiled.name_hint or f"f{index}"
            if name in used_names:
                name = f"{name}_{index}"
            used_names.add(name)
            fields.append(Field(name, compiled.dtype))
        return Schema(fields)

    def _flatten_fields(self, item, input_schema):
        if not isinstance(item.expr, ast.FieldRef) or item.expr.name != GROUP_FIELD:
            raise PlanError("only FLATTEN(group) is supported in this dialect")
        group_fields = [
            field
            for field in input_schema.fields
            if field.name == GROUP_FIELD or field.name.startswith(GROUP_FIELD + "::")
        ]
        if not group_fields:
            raise PlanError("FLATTEN(group) requires a grouped input")
        return [field.renamed(field.short_name) for field in group_fields]


class LOFilter(LogicalOp):
    kind = "filter"

    def __init__(self, input_op, condition, alias=None):
        super().__init__([input_op], alias)
        self.condition = condition
        compile_predicate(condition, input_op.schema)  # validate + type-check
        self.schema = input_op.schema


class LOJoin(LogicalOp):
    kind = "join"

    def __init__(self, left, right, left_keys, right_keys, alias=None, parallel=None):
        super().__init__([left, right], alias)
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)
        self.parallel = parallel
        if len(self.left_keys) != len(self.right_keys):
            raise PlanError("JOIN key lists must have equal length")
        left_compiled = [compile_expression(key, left.schema) for key in self.left_keys]
        right_compiled = [compile_expression(key, right.schema) for key in self.right_keys]
        for a, b in zip(left_compiled, right_compiled):
            numeric = (DataType.INT, DataType.DOUBLE)
            compatible = a.dtype == b.dtype or (a.dtype in numeric and b.dtype in numeric)
            if not compatible:
                raise PlanError(
                    f"join key type mismatch: {a.canonical}:{a.dtype} vs "
                    f"{b.canonical}:{b.dtype}"
                )
        self.schema = Schema.join(
            left.schema, right.schema, left.alias or "L", right.alias or "R"
        )


class LOGroup(LogicalOp):
    """GROUP BY (keys) or GROUP ALL (keys=None)."""

    kind = "group"

    def __init__(self, input_op, keys, alias=None, parallel=None):
        super().__init__([input_op], alias)
        self.keys = None if keys is None else tuple(keys)
        self.parallel = parallel
        self.schema = self._infer_schema()

    @property
    def is_group_all(self):
        return self.keys is None

    def _infer_schema(self):
        input_op = self.inputs[0]
        bag_field = Field(input_op.alias or "bag", DataType.BAG, input_op.schema)
        if self.is_group_all:
            return Schema([Field(GROUP_FIELD, DataType.CHARARRAY), bag_field])
        compiled = [compile_expression(key, input_op.schema) for key in self.keys]
        if len(compiled) == 1:
            return Schema([Field(GROUP_FIELD, compiled[0].dtype), bag_field])
        key_fields = []
        for index, key in enumerate(compiled):
            name = key.name_hint or f"k{index}"
            key_fields.append(Field(f"{GROUP_FIELD}::{name}", key.dtype))
        return Schema(key_fields + [bag_field])


class LOCoGroup(LogicalOp):
    """COGROUP input1 BY keys1, input2 BY keys2, ..."""

    kind = "cogroup"

    def __init__(self, input_ops, key_lists, alias=None, parallel=None):
        super().__init__(list(input_ops), alias)
        self.key_lists = tuple(tuple(keys) for keys in key_lists)
        self.parallel = parallel
        arity = {len(keys) for keys in self.key_lists}
        if len(arity) != 1:
            raise PlanError("COGROUP key lists must all have the same length")
        self.schema = self._infer_schema()

    def _infer_schema(self):
        first_compiled = [
            compile_expression(key, self.inputs[0].schema) for key in self.key_lists[0]
        ]
        if len(first_compiled) == 1:
            key_fields = [Field(GROUP_FIELD, first_compiled[0].dtype)]
        else:
            key_fields = [
                Field(f"{GROUP_FIELD}::{key.name_hint or f'k{index}'}", key.dtype)
                for index, key in enumerate(first_compiled)
            ]
        bag_fields = []
        seen = set()
        for position, input_op in enumerate(self.inputs):
            name = input_op.alias or f"in{position}"
            if name in seen:
                name = f"{name}_{position}"
            seen.add(name)
            bag_fields.append(Field(name, DataType.BAG, input_op.schema))
        return Schema(key_fields + bag_fields)


class LODistinct(LogicalOp):
    kind = "distinct"

    def __init__(self, input_op, alias=None, parallel=None):
        super().__init__([input_op], alias)
        self.parallel = parallel
        self.schema = input_op.schema


class LOUnion(LogicalOp):
    kind = "union"

    def __init__(self, input_ops, alias=None):
        super().__init__(list(input_ops), alias)
        first = self.inputs[0].schema
        for other in self.inputs[1:]:
            if len(other.schema) != len(first):
                raise PlanError(
                    f"UNION inputs must have the same arity: "
                    f"{len(first)} vs {len(other.schema)}"
                )
            for a, b in zip(first.fields, other.schema.fields):
                if a.dtype != b.dtype:
                    raise PlanError(
                        f"UNION field type mismatch: {a.canonical()} vs {b.canonical()}"
                    )
        self.schema = first


class LOSort(LogicalOp):
    """ORDER BY; ``keys`` are (expr_ast, direction) pairs."""

    kind = "sort"

    def __init__(self, input_op, keys, alias=None, parallel=None):
        super().__init__([input_op], alias)
        self.keys = tuple(keys)
        self.parallel = parallel
        for expr, direction in self.keys:
            if direction not in ("asc", "desc"):
                raise PlanError(f"bad sort direction {direction!r}")
            compile_expression(expr, input_op.schema)
        self.schema = input_op.schema


class LOLimit(LogicalOp):
    kind = "limit"

    def __init__(self, input_op, count, alias=None):
        super().__init__([input_op], alias)
        if count < 0:
            raise PlanError(f"LIMIT must be non-negative, got {count}")
        self.count = count
        self.schema = input_op.schema


class LOStore(LogicalOp):
    kind = "store"

    def __init__(self, input_op, path, alias=None):
        super().__init__([input_op], alias)
        self.path = path
        self.schema = input_op.schema
