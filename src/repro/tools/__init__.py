"""Developer tools built on the public API (currently: EXPLAIN)."""

from repro.tools.explain import explain

__all__ = ["explain"]
