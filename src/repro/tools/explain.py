"""EXPLAIN for the Pig dialect: show every compilation stage of a query.

Usage from code::

    from repro.tools import explain
    print(explain(query_text))

or from a shell::

    python -m repro.tools.explain "A = load '/d' as (x:int); store A into '/o';"
"""

import sys

from repro.logical import build_logical_plan
from repro.logical.optimizer import optimize as optimize_logical
from repro.mrcompiler import compile_to_workflow
from repro.physical import logical_to_physical
from repro.piglatin import parse_query


def explain(query_text, optimize=False, dataset_versions=None):
    """Render the logical plan, physical plan, and MapReduce workflow."""
    logical = build_logical_plan(parse_query(query_text))
    sections = ["-- logical plan " + "-" * 40, logical.describe()]
    if optimize:
        logical = optimize_logical(logical)
        sections += ["-- optimized logical plan " + "-" * 30, logical.describe()]
    physical = logical_to_physical(logical, dataset_versions or {})
    sections += ["-- physical plan " + "-" * 39, physical.describe()]
    workflow = compile_to_workflow(physical, "explain")
    sections += ["-- mapreduce workflow " + "-" * 34, workflow.describe()]
    return "\n".join(sections)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] != "-":
        query = " ".join(argv)
    else:
        query = sys.stdin.read()
    print(explain(query))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
