"""``fork-safety`` — keep worker-process code free of front-end state.

Shard workers are spawned with the ``fork`` multiprocessing context
(ARCHITECTURE §6): whatever the child touches must be its own
(``ShardWorkerState``), never the front-end's threads, locks, queues or
repository. This checker walks the static call graph from the worker
entrypoints and flags, in any reachable function:

* creation of ``threading`` primitives (``Thread``, ``Lock``, ...) —
  thread state does not survive a fork and must not exist in workers;
* access to front-end-only attributes (``self._workers``,
  ``self._buffers``, ``self._repository``, ...) — state that lives in
  the parent process only.

Worker-owned durability (PERSISTENCE §6) makes DFS *writes* legal in
worker code — but only through the gateway's ``DfsClient`` (two queues
and an id, fork-inheritable by construction). The real file-system
handle stays front-end state: the simulated DFS is an in-process
object, so a forked worker writing to its inherited copy would mutate
private memory the front-end never sees. Hence ``dfs`` is a front-end-
only attribute — ``self.dfs`` reachable from a worker entrypoint is a
write into the void, even though the same spelling is fine in
coordinator code.

Roots are functions marked ``# statlint: process-entrypoint`` on their
``def`` line plus any function passed as ``target=`` to a
``Process(...)`` call. Independently of reachability, a ``Process``
target that is a lambda, a bound method, or a function nested in the
enclosing scope is flagged: it would not survive a switch to the
``spawn`` context (pickling), and closures capture front-end state.

Call-graph resolution is deliberately conservative — an edge exists
only when the callee is nameable: bare-name calls resolve to
module-level functions and class constructors anywhere in the project;
``self.m()`` resolves within the enclosing class and its
project-visible bases; ``v.m()`` resolves only when ``v`` was assigned
``v = ClassName(...)`` in the same function. Attribute calls on
untyped receivers are not followed.
"""

import ast

from repro.tools.statlint.core import register


@register
class ForkSafety:
    rule = "fork-safety"
    description = ("no threading primitives or front-end-only state "
                   "reachable from worker-process entrypoints; Process "
                   "targets must be module-level functions")

    #: attributes that only exist in the front-end process (the routing
    #: pool, its mutation buffers, the authoritative repository, the
    #: ingest facade, and the real DFS handle — workers write through a
    #: gateway DfsClient, never the in-process file system itself);
    #: touching them from worker-reachable code reads another process's
    #: state.
    FRONT_END_ATTRS = {"_workers", "_buffers", "_repository", "_context",
                       "_ingest", "worker_pool", "persistence",
                       "persistence_log", "dfs"}
    THREADING_FACTORIES = {"Thread", "Lock", "RLock", "Condition", "Event",
                           "Semaphore", "BoundedSemaphore", "Barrier",
                           "Timer", "local"}

    def run(self, project):
        table = _FunctionTable(project)
        findings = list(table.target_findings(self.rule))
        reachable = table.reachable()
        for node in reachable:
            root = node.root_name or "worker entrypoint"
            for line, what in node.threading_creations:
                findings.append(node.mod.finding(
                    self.rule, line,
                    "threading.%s created in code reachable from process "
                    "entrypoint '%s'; workers must not own thread state"
                    % (what, root)))
            for line, attr in node.front_end_accesses:
                findings.append(node.mod.finding(
                    self.rule, line,
                    "front-end-only attribute 'self.%s' reachable from "
                    "process entrypoint '%s'; that state lives in the "
                    "parent process" % (attr, root)))
        return findings


class _FuncNode:
    def __init__(self, mod, func, class_name):
        self.mod = mod
        self.func = func
        self.class_name = class_name
        self.edges = []        # ("bare"|"self"|"typed", [class], name)
        self.threading_creations = []
        self.front_end_accesses = []
        self.is_root = False
        self.root_name = None  # entrypoint this node was reached from


class _FunctionTable:
    def __init__(self, project):
        self.project = project
        self.nodes = []
        self.module_funcs = {}   # name -> [node]
        self.classes = {}        # name -> [{"methods": {}, "bases": []}]
        self.bad_targets = []    # (mod, line, description)
        self._target_names = []  # Name targets, resolved after the build
        self._build()
        for name in self._target_names:
            for target_node in self.module_funcs.get(name, ()):
                target_node.is_root = True

    def _build(self):
        for mod in self.project.modules:
            threading_names = _threading_imports(mod.tree)
            for cls in [n for n in ast.walk(mod.tree)
                        if isinstance(n, ast.ClassDef)]:
                entry = {"methods": {}, "bases":
                         [b.id for b in cls.bases
                          if isinstance(b, ast.Name)]}
                self.classes.setdefault(cls.name, []).append(entry)
                for func in cls.body:
                    if isinstance(func, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        node = self._scan(mod, func, cls.name,
                                          threading_names)
                        entry["methods"][func.name] = node
            for func in mod.tree.body:
                if isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    node = self._scan(mod, func, None, threading_names)
                    self.module_funcs.setdefault(func.name,
                                                 []).append(node)

    def _scan(self, mod, func, class_name, threading_names):
        node = _FuncNode(mod, func, class_name)
        self.nodes.append(node)
        node.is_root = mod.func_is_entrypoint(func)

        var_types = {}
        nested = {child.name for child in ast.walk(func)
                  if isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))
                  and child is not func}
        for stmt in ast.walk(func):
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Name)):
                var_types[stmt.targets[0].id] = stmt.value.func.id

        for child in ast.walk(func):
            if isinstance(child, ast.Call):
                self._scan_call(node, child, var_types, nested,
                                threading_names)
            elif (isinstance(child, ast.Attribute)
                    and isinstance(child.value, ast.Name)
                    and child.value.id == "self"
                    and child.attr in ForkSafety.FRONT_END_ATTRS):
                node.front_end_accesses.append((child.lineno, child.attr))
        return node

    def _scan_call(self, node, call, var_types, nested, threading_names):
        func = call.func
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id == "threading"
                    and func.attr in ForkSafety.THREADING_FACTORIES):
                node.threading_creations.append((call.lineno, func.attr))
            if isinstance(func.value, ast.Name):
                receiver = func.value.id
                if receiver == "self":
                    node.edges.append(("self", node.class_name, func.attr))
                elif receiver in var_types:
                    node.edges.append(("typed", var_types[receiver],
                                       func.attr))
            if func.attr == "Process":
                self._scan_process_target(node, call, nested)
        elif isinstance(func, ast.Name):
            if func.id in threading_names:
                node.threading_creations.append((call.lineno, func.id))
            node.edges.append(("bare", None, func.id))
            if func.id == "Process":
                self._scan_process_target(node, call, nested)

    def _scan_process_target(self, node, call, nested):
        for keyword in call.keywords:
            if keyword.arg != "target":
                continue
            value = keyword.value
            if isinstance(value, ast.Lambda):
                self.bad_targets.append(
                    (node.mod, value.lineno,
                     "Process target is a lambda; use a module-level "
                     "function (spawn-context pickling, closure capture)"))
            elif isinstance(value, ast.Attribute):
                self.bad_targets.append(
                    (node.mod, value.lineno,
                     "Process target '%s' is a bound method; use a "
                     "module-level function so no instance state is "
                     "shipped to the worker" % (ast.unparse(value),)))
            elif isinstance(value, ast.Name):
                if value.id in nested:
                    self.bad_targets.append(
                        (node.mod, value.lineno,
                         "Process target '%s' is a nested function; use "
                         "a module-level function" % (value.id,)))
                self._target_names.append(value.id)

    def target_findings(self, rule):
        for mod, line, message in self.bad_targets:
            yield mod.finding(rule, line, message)

    # -- reachability ------------------------------------------------------

    def _methods_of(self, class_name, method):
        """Resolve ``method`` on ``class_name`` or its visible bases."""
        results, queue, seen = [], [class_name], set()
        while queue:
            name = queue.pop()
            if name in seen or name not in self.classes:
                continue
            seen.add(name)
            for entry in self.classes[name]:
                if method in entry["methods"]:
                    results.append(entry["methods"][method])
                else:
                    queue.extend(entry["bases"])
        return results

    def _callees(self, node):
        for kind, class_name, name in node.edges:
            if kind == "bare":
                yield from self.module_funcs.get(name, ())
                for entry in self.classes.get(name, ()):
                    init = entry["methods"].get("__init__")
                    if init is not None:
                        yield init
            elif kind in ("self", "typed") and class_name is not None:
                yield from self._methods_of(class_name, name)

    def reachable(self):
        queue = [node for node in self.nodes if node.is_root]
        for node in queue:
            node.root_name = node.func.name
        seen = set(map(id, queue))
        order = list(queue)
        while queue:
            node = queue.pop()
            for callee in self._callees(node):
                if id(callee) not in seen:
                    seen.add(id(callee))
                    callee.root_name = node.root_name
                    queue.append(callee)
                    order.append(callee)
        return order


def _threading_imports(tree):
    """Names imported directly from ``threading`` at module level."""
    names = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.ImportFrom)
                and node.module == "threading"):
            names.update(alias.asname or alias.name
                         for alias in node.names)
    return names & ForkSafety.THREADING_FACTORIES
