"""Lock checkers: ``lock-discipline`` and ``lock-ordering``.

**lock-discipline** — a class declares its locking contract with a
``GUARDED_BY`` class attribute mapping field names to the lock that
protects them::

    class IngestQueue:
        GUARDED_BY = {"_records": "_lock", "_closed": "_lock"}

Every ``self.<field>`` access in the class's methods must then sit
lexically inside ``with self.<lock>:``. Three escape hatches, all
conventions this repo already uses:

* ``__init__``/``__del__`` are exempt (no concurrency yet/anymore);
* methods named ``*_locked`` assert "caller holds the lock";
* ``# statlint: holds=<lock>`` on the ``def`` line records an
  interprocedural contract (e.g. the manager's apply hooks, which the
  registrar only invokes under the ingest lock).

Nested functions defined inside a method are not analyzed: the lock
held at the definition site says nothing about the call site.

**lock-ordering** — builds the static lock-acquisition graph: locks are
``self.X = threading.Lock()/RLock()`` assignments (aggregated by
attribute name across classes; ``Condition(lock)`` aliases to its
lock), and an edge A→B means code acquires B while holding A, either
via a nested ``with`` or via a call whose transitive callees (matched
by function name) acquire B. Repository mutators (``insert``,
``remove``, ...) fan out to change-event listeners the AST cannot see,
so those call names imply ``_on_event`` — the edge through which the
ingest lock orders before the wal mutex. Cycles are findings, as is
re-acquiring a non-reentrant lock already held.
"""

import ast

from repro.tools.statlint.core import register


def _unparse(node):
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed synthetic nodes
        return ""


def _functions(tree):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _guarded_by(cls):
    """Parse a ``GUARDED_BY = {"field": "lock"}`` class attribute."""
    for stmt in cls.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not (isinstance(target, ast.Name)
                and target.id == "GUARDED_BY"
                and isinstance(stmt.value, ast.Dict)):
            continue
        mapping = {}
        for key, value in zip(stmt.value.keys, stmt.value.values):
            if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                mapping[key.value] = value.value
        return mapping
    return None


def _with_self_specs(node):
    """Lock specs acquired by a ``with`` statement: ``self.`` paths."""
    specs = set()
    for item in node.items:
        text = _unparse(item.context_expr)
        if text.startswith("self."):
            specs.add(text[len("self."):])
    return specs


@register
class LockDiscipline:
    rule = "lock-discipline"
    description = ("fields named in a class's GUARDED_BY map are only "
                   "read/written inside 'with self.<lock>:'")

    EXEMPT = ("__init__", "__del__")

    def run(self, project):
        for mod in project.modules:
            for cls in ast.walk(mod.tree):
                if not isinstance(cls, ast.ClassDef):
                    continue
                guarded = _guarded_by(cls)
                if not guarded:
                    continue
                for func in cls.body:
                    if not isinstance(func, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                        continue
                    if (func.name in self.EXEMPT
                            or func.name.endswith("_locked")):
                        continue
                    yield from self._check_method(mod, guarded, func)

    def _check_method(self, mod, guarded, func):
        findings = []
        assumed = frozenset(mod.func_holds(func))

        def visit(node, held):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                return
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = held | _with_self_specs(node)
                for item in node.items:
                    visit(item.context_expr, held)
                for child in node.body:
                    visit(child, inner)
                return
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guarded
                    and guarded[node.attr] not in held):
                lock = guarded[node.attr]
                findings.append(mod.finding(
                    self.rule, node,
                    "'%s' is GUARDED_BY 'self.%s' but is accessed outside "
                    "'with self.%s:'" % (node.attr, lock, lock)))
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in func.body:
            visit(stmt, assumed)
        return findings


class _Edge:
    __slots__ = ("src", "dst", "path", "line", "via")

    def __init__(self, src, dst, path, line, via):
        self.src = src
        self.dst = dst
        self.path = path
        self.line = line
        self.via = via


@register
class LockOrdering:
    rule = "lock-ordering"
    description = ("the static lock-acquisition graph (nested 'with's "
                   "plus name-matched transitive calls) must be acyclic")

    #: Repository mutation entry points call ``_notify``, which fans
    #: out to change-event listeners (``RepositoryLog._on_event`` takes
    #: ``_mutex`` there). The listener list is runtime state the AST
    #: cannot see, so these call names imply a ``_on_event`` call.
    NOTIFY_CALLS = {"insert", "insert_batch", "remove", "record_use",
                    "force_scan_order"}
    LOCK_FACTORIES = {"Lock": False, "RLock": True}

    def run(self, project):
        locks, aliases = self._lock_nodes(project)

        def resolve(spec):
            attr = spec.split(".")[-1]
            seen = set()
            while attr in aliases and attr not in seen:
                seen.add(attr)
                attr = aliases[attr]
            return attr if attr in locks else None

        infos = []
        by_name = {}
        for mod in project.modules:
            owners = {}
            for cls in ast.walk(mod.tree):
                if isinstance(cls, ast.ClassDef):
                    for member in cls.body:
                        if isinstance(member, (ast.FunctionDef,
                                               ast.AsyncFunctionDef)):
                            owners[member] = cls
            for func in _functions(mod.tree):
                cls = owners.get(func)
                own_methods = ({m.name for m in cls.body
                                if isinstance(m, (ast.FunctionDef,
                                                  ast.AsyncFunctionDef))}
                               if cls is not None else set())
                info = self._scan_function(mod, func, resolve,
                                           cls.name if cls else None,
                                           own_methods)
                infos.append(info)
                by_name.setdefault(func.name, []).append(info)
                if cls is not None:
                    by_name.setdefault("%s.%s" % (cls.name, func.name),
                                       []).append(info)

        self._close_over_calls(infos, by_name)

        edges = {}
        for info in infos:
            for held, lock, line in info["nested"]:
                for src in held:
                    edges.setdefault((src, lock),
                                     _Edge(src, lock, info["path"], line,
                                           "nested 'with'"))
            for held, name, line in info["scoped_calls"]:
                for callee in by_name.get(name, ()):
                    for lock in callee["all_locks"]:
                        for src in held:
                            edges.setdefault(
                                (src, lock),
                                _Edge(src, lock, info["path"], line,
                                      "call to %s()" % (name,)))

        yield from self._report(edges, locks)

    # -- graph construction ------------------------------------------------

    def _lock_nodes(self, project):
        """Lock attributes (name -> reentrant?) and Condition aliases."""
        locks, aliases = {}, {}
        for mod in project.modules:
            for node in ast.walk(mod.tree):
                if not (isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Call)):
                    continue
                call = node.value
                factory = (call.func.attr
                           if isinstance(call.func, ast.Attribute)
                           else call.func.id
                           if isinstance(call.func, ast.Name) else None)
                for target in node.targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    if factory in self.LOCK_FACTORIES:
                        reentrant = self.LOCK_FACTORIES[factory]
                        locks[target.attr] = (locks.get(target.attr, False)
                                              or reentrant)
                    elif factory == "Condition":
                        if (call.args
                                and isinstance(call.args[0], ast.Attribute)):
                            aliases[target.attr] = call.args[0].attr
                        else:
                            locks.setdefault(target.attr, False)
        return locks, aliases

    def _scan_function(self, mod, func, resolve, class_name=None,
                       own_methods=()):
        info = {"path": mod.relpath, "name": func.name,
                "direct_locks": set(), "all_calls": set(),
                "scoped_calls": [], "nested": [], "all_locks": set()}

        def record_call(node, held):
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
                # `self.m()` where the enclosing class defines m is
                # resolved precisely — same-named methods on unrelated
                # classes (e.g. every `flush`) must not create edges.
                if (isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"
                        and class_name is not None
                        and name in own_methods):
                    name = "%s.%s" % (class_name, name)
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            else:
                return
            names = {name}
            if name.rsplit(".", 1)[-1] in self.NOTIFY_CALLS:
                names.add("_on_event")
            for called in names:
                info["all_calls"].add(called)
                if held:
                    info["scoped_calls"].append(
                        (tuple(held), called, node.lineno))

        def visit(node, held):
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)) and node is not func):
                return
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired = [lock for lock in
                            (resolve(spec)
                             for spec in _with_self_specs(node))
                            if lock is not None]
                inner = held
                for lock in acquired:
                    info["direct_locks"].add(lock)
                    info["nested"].append((tuple(inner), lock, node.lineno))
                    inner = inner + (lock,)
                for item in node.items:
                    visit(item.context_expr, held)
                for child in node.body:
                    visit(child, inner)
                return
            if isinstance(node, ast.Call):
                record_call(node, held)
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        visit(func, ())
        return info

    def _close_over_calls(self, infos, by_name):
        """Fixpoint: a function's lock set includes its callees'."""
        for info in infos:
            info["all_locks"] = set(info["direct_locks"])
        changed = True
        while changed:
            changed = False
            for info in infos:
                for name in info["all_calls"]:
                    for callee in by_name.get(name, ()):
                        if not callee["all_locks"] <= info["all_locks"]:
                            info["all_locks"] |= callee["all_locks"]
                            changed = True

    # -- reporting ---------------------------------------------------------

    def _report(self, edges, locks):
        adjacency = {}
        for (src, dst), edge in edges.items():
            if src == dst:
                if not locks.get(src, False):
                    yield edge_finding(edge, (
                        "non-reentrant lock '%s' may be re-acquired while "
                        "already held (%s)" % (src, edge.via)))
                continue
            adjacency.setdefault(src, set()).add(dst)

        def reaches(start, goal):
            stack, seen = [start], set()
            while stack:
                node = stack.pop()
                if node == goal:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(adjacency.get(node, ()))
            return False

        reported = set()
        for (src, dst), edge in sorted(edges.items()):
            if src == dst or frozenset((src, dst)) in reported:
                continue
            if reaches(dst, src):
                reported.add(frozenset((src, dst)))
                yield edge_finding(edge, (
                    "lock-ordering cycle: '%s' is acquired while holding "
                    "'%s' (%s) but other code orders '%s' before '%s'"
                    % (dst, src, edge.via, dst, src)))


def edge_finding(edge, message):
    from repro.tools.statlint.core import Finding
    return Finding(LockOrdering.rule, edge.path, edge.line, message)
