"""``exception-hygiene`` — no silent failure channels.

Three shapes are findings:

* ``except:`` (bare) — catches ``SystemExit``/``KeyboardInterrupt``
  and hides typos alike; name the exception;
* ``except BaseException`` without a ``raise`` anywhere in the handler
  — a BaseException catch is only legitimate as a *poisoning* pattern
  that re-surfaces the error on another path, and that contract is
  exactly what a justified suppression documents (the registrar's
  batch handler in ingest.py is the exemplar);
* an ``except WorkerCrashed`` handler whose body is only
  ``pass``/``continue``/docstrings — a crashed shard worker holds
  un-replayed mutations, so swallowing the crash silently loses data;
  real handlers recover (``_recover``), retry, or count casualties.

``raise`` statements inside functions nested in the handler do not
count as a re-surface path.
"""

import ast

from repro.tools.statlint.core import register


def _exception_names(type_node):
    """Names a handler catches: ``X``, ``mod.X`` or a tuple of both."""
    if type_node is None:
        return set()
    nodes = (type_node.elts if isinstance(type_node, ast.Tuple)
             else [type_node])
    names = set()
    for node in nodes:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _contains_raise(body):
    stack = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _only_swallows(body):
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value,
                                                     ast.Constant):
            continue
        return False
    return True


@register
class ExceptionHygiene:
    rule = "exception-hygiene"
    description = ("no bare 'except:'; 'except BaseException' must "
                   "re-raise (or justify its poisoning contract); "
                   "'except WorkerCrashed' must not swallow the crash")

    def run(self, project):
        for mod in project.modules:
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                caught = _exception_names(node.type)
                if node.type is None:
                    yield mod.finding(
                        self.rule, node,
                        "bare 'except:' catches KeyboardInterrupt/"
                        "SystemExit; name the exception type")
                elif ("BaseException" in caught
                        and not _contains_raise(node.body)):
                    yield mod.finding(
                        self.rule, node,
                        "'except BaseException' without a 'raise'; "
                        "narrow it, re-raise, or document the re-surface "
                        "path with a justified suppression")
                if ("WorkerCrashed" in caught
                        and _only_swallows(node.body)):
                    yield mod.finding(
                        self.rule, node,
                        "'except WorkerCrashed' swallows the crash; a "
                        "dead worker holds un-replayed mutations — "
                        "recover, retry, or surface it")
