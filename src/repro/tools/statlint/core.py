"""Core statlint machinery: findings, suppressions, baseline, registry.

A checker is a class with a ``rule`` id, a ``description``, and a
``run(project)`` method yielding :class:`Finding`s; ``@register`` adds
it to the registry the CLI runs. Checkers see a :class:`Project` — every
parsed module — so cross-module analyses (lock ordering, fork-safety
reachability) get the whole picture in one pass.

Suppressions are per-line comments with a *required* justification::

    risky()  # statlint: disable=lock-discipline -- snapshot read; staleness is fine

A suppression without the ``-- <why>`` tail does not suppress anything
and is itself reported under the ``suppression-hygiene`` rule, as is a
``disable=`` naming an unknown rule.

The baseline file (``.statlint-baseline.json``) grandfathers known
findings: with ``--fail-on-new`` only findings *not* in the baseline
fail the run. Baseline identity is ``(rule, path, message)`` — line
numbers are deliberately excluded so unrelated edits don't churn it.
"""

import ast
import json
import os
import re
import tokenize
from collections import Counter

#: ``# statlint: disable=rule[,rule] -- justification``
_SUPPRESS = re.compile(
    r"#\s*statlint:\s*disable=([A-Za-z0-9_,-]+)\s*(?:--\s*(\S.*))?$")
#: ``# statlint: process-entrypoint`` — marks a fork-safety root.
_ENTRYPOINT = re.compile(r"#\s*statlint:\s*process-entrypoint\b")
#: ``# statlint: holds=<lock>[,<lock>]`` — caller-holds-lock contract.
_HOLDS = re.compile(r"#\s*statlint:\s*holds=([A-Za-z0-9_.,]+)")


class Finding:
    """One reported violation, anchored to a file and line."""

    __slots__ = ("rule", "path", "line", "message")

    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def key(self):
        return (self.rule, self.path, self.message)

    def to_json(self):
        return {"rule": self.rule, "path": self.path,
                "line": self.line, "message": self.message}

    def render(self):
        return "%s:%d: %s: %s" % (self.path, self.line, self.rule,
                                  self.message)

    def __repr__(self):  # pragma: no cover - debugging aid
        return "Finding(%r)" % (self.render(),)

    def __eq__(self, other):
        return (isinstance(other, Finding)
                and self.to_json() == other.to_json())


class Suppression:
    __slots__ = ("line", "rules", "justification")

    def __init__(self, line, rules, justification):
        self.line = line
        self.rules = rules
        self.justification = justification


class SourceModule:
    """A parsed python file plus its statlint comment annotations."""

    def __init__(self, path, relpath, text):
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=relpath)
        self.suppressions = {}   # line -> Suppression
        self.entrypoint_lines = set()
        self.holds = {}          # line -> set of lock specs
        self._scan_comments()

    def _scan_comments(self):
        for number, line in enumerate(self.lines, start=1):
            if "statlint" not in line:
                continue
            match = _SUPPRESS.search(line)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")
                         if part.strip()}
                self.suppressions[number] = Suppression(
                    number, rules, match.group(2))
            if _ENTRYPOINT.search(line):
                self.entrypoint_lines.add(number)
            match = _HOLDS.search(line)
            if match:
                self.holds[number] = {part.strip()
                                      for part in match.group(1).split(",")
                                      if part.strip()}

    def finding(self, rule, node_or_line, message):
        line = getattr(node_or_line, "lineno", node_or_line)
        return Finding(rule, self.relpath, line, message)

    def def_comment_lines(self, func):
        """Lines whose comments annotate ``func``'s signature.

        The def line through the line the body starts on, so markers
        survive signatures wrapped over several lines.
        """
        body_start = func.body[0].lineno if func.body else func.lineno
        return range(func.lineno, body_start + 1)

    def func_is_entrypoint(self, func):
        return any(line in self.entrypoint_lines
                   for line in self.def_comment_lines(func))

    def func_holds(self, func):
        held = set()
        for line in self.def_comment_lines(func):
            held |= self.holds.get(line, set())
        return held


class Project:
    """All modules under analysis, shared by every checker."""

    def __init__(self, modules):
        self.modules = list(modules)
        self._by_relpath = {mod.relpath: mod for mod in self.modules}

    def module(self, relpath):
        return self._by_relpath.get(relpath)


# --------------------------------------------------------------------------
# Checker registry

_CHECKERS = []


def register(cls):
    """Class decorator adding a checker to the global registry."""
    _CHECKERS.append(cls)
    return cls


def all_checkers():
    return [cls() for cls in _CHECKERS]


def rule_ids():
    return sorted(cls.rule for cls in _CHECKERS)


@register
class SuppressionHygiene:
    """Suppression comments must be justified and name real rules."""

    rule = "suppression-hygiene"
    description = ("a '# statlint: disable=' comment must carry a "
                   "'-- <justification>' tail and name known rules")

    def run(self, project):
        known = set(rule_ids())
        for mod in project.modules:
            for sup in mod.suppressions.values():
                if not sup.justification:
                    yield mod.finding(
                        self.rule, sup.line,
                        "suppression without justification: append "
                        "'-- <why this is safe>' or remove it")
                for name in sorted(sup.rules - known):
                    yield mod.finding(
                        self.rule, sup.line,
                        "suppression names unknown rule '%s'" % (name,))


# --------------------------------------------------------------------------
# Running

def iter_python_files(paths):
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith(".")
                                 and d != "__pycache__")
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        elif path.endswith(".py"):
            yield path


def load_project(paths):
    """Parse every python file under ``paths``; unparsable files error."""
    modules = []
    errors = []
    for filename in iter_python_files(paths):
        relpath = os.path.relpath(filename).replace(os.sep, "/")
        try:
            with tokenize.open(filename) as handle:
                text = handle.read()
            modules.append(SourceModule(filename, relpath, text))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            errors.append("%s: cannot analyze: %s" % (relpath, exc))
    return Project(modules), errors


def _apply_suppressions(project, findings):
    """Drop findings silenced by a *justified* same-line suppression."""
    kept = []
    for finding in findings:
        if finding.rule == SuppressionHygiene.rule:
            kept.append(finding)
            continue
        mod = project.module(finding.path)
        sup = mod.suppressions.get(finding.line) if mod else None
        if (sup is not None and sup.justification
                and (finding.rule in sup.rules or "all" in sup.rules)):
            continue
        kept.append(finding)
    return kept


def analyze_paths(paths, rules=None):
    """Run (selected) checkers over ``paths``.

    Returns ``(findings, errors)``; findings are suppression-filtered
    and sorted by location.
    """
    project, errors = load_project(paths)
    findings = []
    for checker in all_checkers():
        if rules is not None and checker.rule not in rules:
            continue
        findings.extend(checker.run(project))
    findings = _apply_suppressions(project, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings, errors


# --------------------------------------------------------------------------
# Baseline

class Baseline:
    """Multiset of grandfathered findings keyed by (rule, path, message)."""

    VERSION = 1

    def __init__(self, counts=None):
        self.counts = Counter(counts or ())

    @classmethod
    def from_findings(cls, findings):
        return cls(finding.key() for finding in findings)

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != cls.VERSION:
            raise ValueError("unsupported baseline version: %r"
                             % (payload.get("version"),))
        return cls((entry["rule"], entry["path"], entry["message"])
                   for entry in payload["findings"])

    def save(self, path):
        entries = [{"rule": rule, "path": rel, "message": message}
                   for (rule, rel, message), count in
                   sorted(self.counts.items()) for _ in range(count)]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"version": self.VERSION, "findings": entries},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")

    def partition(self, findings):
        """Split ``findings`` into (new, grandfathered) against this
        baseline; a baseline entry absorbs at most ``count`` findings."""
        budget = Counter(self.counts)
        new, old = [], []
        for finding in findings:
            if budget[finding.key()] > 0:
                budget[finding.key()] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old
