"""``crash-ordering`` — persistence writes must publish before they
destroy.

docs/PERSISTENCE.md's crash-ordering table states the rule in prose:
every segment/order-log truncation and section GC happens *after* the
manifest swap that stops referencing the old data, and the manifest
swap itself happens *after* the section/order-log writes it points to —
so a crash between any two steps leaves a loadable tree. This checker
enforces that write order statically, per function, in the persistence
modules (files named ``wal.py`` or ``persistence.py``; the rules are
meaningless elsewhere, e.g. for the DFS primitive that *implements*
``write_lines``).

Events are DFS calls (``write_lines``, ``append_lines``, ``delete``,
``delete_if_exists``) collected in source pre-order — a linear
approximation of the CFG that matches this codebase's straight-line
persistence functions. Targets are classified: the **manifest** is
``self.path`` or a parameter named ``path``; **section/order-log/
segment** files are variables assigned from the path helpers
(``section_file_path``, ``order_log_path``, ``segment_file_path``,
``self._segment_path``). A ``write_lines(target, [])`` is a
truncation.

Rules, within one function:

* R1 *truncate-after-publish* — a truncation or delete that precedes a
  manifest write destroys data the old manifest still references;
* R2 *publish-after-content* — a section/order-log/segment write after
  the manifest write means the new manifest references files that do
  not exist yet;
* R3 *atomic-manifest* — deleting the manifest in a function that also
  writes it is the non-atomic delete-then-write idiom; the swap must be
  one ``write_lines(..., overwrite=True)`` call (write-new-then-swap);
* R4 — a manifest ``write_lines`` without ``overwrite=True`` (or via
  ``append_lines``) is not a swap at all.

Worker-owned durability adds a fifth rule over the *worker-side*
modules (``service.py``, ``gateway.py``, ``replication.py`` — the code
a shard worker process runs or a worker request flows through):

* R5 *manifest-is-front-end-only* — any write or delete whose target
  classifies as the manifest (``self.path`` / ``path``) in a worker
  module is flagged, ``overwrite`` or not. Workers own their segment
  appends and section rewrites; the manifest swap is the coordination
  point and belongs to ``RepositoryLog`` alone — a worker touching it
  could publish sections its siblings have not written yet. (This is
  why the gateway's ``DfsClient`` has no manifest operation: the rule
  holds by construction, and R5 keeps it holding as the code grows.)
"""

import ast

from repro.tools.statlint.core import register

_PATH_HELPERS = {"section_file_path": "section",
                 "order_log_path": "order log",
                 "segment_file_path": "segment",
                 "_segment_path": "segment"}
_DFS_CALLS = {"write_lines", "append_lines", "delete", "delete_if_exists"}


class _Event:
    __slots__ = ("kind", "category", "line", "overwrite")

    def __init__(self, kind, category, line, overwrite):
        self.kind = kind            # "write" | "truncate" | "delete"
        self.category = category    # "manifest" | helper category | None
        self.line = line
        self.overwrite = overwrite


@register
class CrashOrdering:
    rule = "crash-ordering"
    description = ("in wal.py/persistence.py, truncations/deletes follow "
                   "the manifest swap, content writes precede it, and "
                   "the swap is one overwrite=True write")

    MODULES = ("wal.py", "persistence.py")
    #: Modules a shard worker runs in (or a worker durable request flows
    #: through): the manifest is front-end-only there (R5).
    WORKER_MODULES = ("service.py", "gateway.py", "replication.py")

    def run(self, project):
        for mod in project.modules:
            basename = mod.relpath.rsplit("/", 1)[-1]
            if basename in self.WORKER_MODULES:
                for func in ast.walk(mod.tree):
                    if isinstance(func, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        yield from self._check_worker_function(mod, func)
                continue
            if basename not in self.MODULES:
                continue
            for func in ast.walk(mod.tree):
                if isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    yield from self._check_function(mod, func)

    def _check_worker_function(self, mod, func):
        for event in _collect_events(func):
            if event.category == "manifest":
                yield mod.finding(self.rule, event.line, (
                    "manifest %s in a worker-side module; the manifest "
                    "swap is the coordination point and is written by "
                    "the front-end RepositoryLog only (workers own "
                    "segments and sections, never the manifest)"
                    % (event.kind,)))

    def _check_function(self, mod, func):
        events = _collect_events(func)
        manifest_writes = [e for e in events
                           if e.kind == "write" and e.category == "manifest"]
        if not manifest_writes:
            return
        last_publish = max(e.line for e in manifest_writes)
        first_publish = min(e.line for e in manifest_writes)
        for event in events:
            if event.kind in ("truncate", "delete"):
                if event.category == "manifest" and event.kind == "delete":
                    yield mod.finding(self.rule, event.line, (
                        "delete-then-write of the manifest is not crash-"
                        "atomic; replace with a single "
                        "write_lines(..., overwrite=True) swap"))
                elif event.line < last_publish:
                    yield mod.finding(self.rule, event.line, (
                        "%s at line %d precedes the manifest swap at line "
                        "%d; a crash between them loses data the old "
                        "manifest still references"
                        % (event.kind, event.line, last_publish)))
            elif event.kind == "write" and event.category not in (
                    "manifest", None):
                if event.line > first_publish:
                    yield mod.finding(self.rule, event.line, (
                        "%s write at line %d follows the manifest swap at "
                        "line %d; the new manifest references data not "
                        "yet durable" % (event.category, event.line,
                                         first_publish)))
        for event in manifest_writes:
            if not event.overwrite:
                yield mod.finding(self.rule, event.line, (
                    "manifest write is not an atomic swap; use "
                    "write_lines(..., overwrite=True)"))


def _collect_events(func):
    categories = _target_categories(func)
    events = []

    def classify(expr):
        text = ast.unparse(expr)
        if text in ("self.path", "path"):
            return "manifest"
        if isinstance(expr, ast.Name):
            return categories.get(expr.id)
        if isinstance(expr, ast.Call):
            name = (expr.func.attr if isinstance(expr.func, ast.Attribute)
                    else expr.func.id if isinstance(expr.func, ast.Name)
                    else None)
            return _PATH_HELPERS.get(name)
        return None

    def visit(node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not func:
            return
        if isinstance(node, ast.Call):
            name = (node.func.attr
                    if isinstance(node.func, ast.Attribute) else None)
            if name in _DFS_CALLS and node.args:
                category = classify(node.args[0])
                if name in ("delete", "delete_if_exists"):
                    events.append(_Event("delete", category,
                                         node.lineno, False))
                else:
                    truncates = (name == "write_lines" and len(node.args) > 1
                                 and isinstance(node.args[1], ast.List)
                                 and not node.args[1].elts)
                    overwrite = (name == "write_lines" and any(
                        kw.arg == "overwrite"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in node.keywords))
                    events.append(_Event(
                        "truncate" if truncates else "write",
                        category, node.lineno, overwrite))
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(func)
    return events


def _target_categories(func):
    """Map local variable names to path-helper categories."""
    categories = {}
    for node in ast.walk(func):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            call = node.value
            name = (call.func.attr if isinstance(call.func, ast.Attribute)
                    else call.func.id if isinstance(call.func, ast.Name)
                    else None)
            if name in _PATH_HELPERS:
                categories[node.targets[0].id] = _PATH_HELPERS[name]
    return categories
