"""CLI for statlint (CI's ``analysis`` job).

Usage::

    python -m repro.tools.statlint [paths...] [options]

Paths default to ``src``. Options:

``--format text|json``
    Output format (default text). JSON emits ``{"findings": [...],
    "summary": {...}}`` for tooling.
``--baseline FILE``
    Baseline of grandfathered findings. Defaults to
    ``.statlint-baseline.json`` when that file exists.
``--fail-on-new``
    Report and fail only on findings *not* covered by the baseline.
``--write-baseline``
    Rewrite the baseline file from the current findings and exit 0.
``--report-only``
    Print findings but always exit 0 (CI uses this for ``tests/``).
``--rules r1,r2``
    Run only the named rules.
``--list-rules``
    Print the registered rule ids and exit.

Exit status: 0 clean (or only baselined findings under
``--fail-on-new``), 1 findings, 2 usage or parse error.
"""

import argparse
import json
import os
import sys

from repro.tools.statlint import (Baseline, all_checkers, analyze_paths,
                                  rule_ids)

DEFAULT_BASELINE = ".statlint-baseline.json"


def _parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.statlint",
        description="Invariant-aware static analysis for this repo "
                    "(see docs/ANALYSIS.md).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: %s if present)"
                             % (DEFAULT_BASELINE,))
    parser.add_argument("--fail-on-new", action="store_true",
                        help="fail only on findings absent from the "
                             "baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--report-only", action="store_true",
                        help="always exit 0 (informational run)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run")
    parser.add_argument("--list-rules", action="store_true")
    return parser


def main(argv=None):
    options = _parser().parse_args(argv)
    if options.list_rules:
        for checker in sorted(all_checkers(), key=lambda c: c.rule):
            print("%-20s %s" % (checker.rule, checker.description))
        return 0

    rules = None
    if options.rules:
        rules = {part.strip() for part in options.rules.split(",")}
        unknown = rules - set(rule_ids())
        if unknown:
            print("unknown rule(s): %s" % (", ".join(sorted(unknown))),
                  file=sys.stderr)
            return 2

    findings, errors = analyze_paths(options.paths, rules=rules)
    for error in errors:
        print("error: %s" % (error,), file=sys.stderr)
    if errors:
        return 2

    baseline_path = options.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE

    if options.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(findings).save(target)
        print("wrote %d finding(s) to %s" % (len(findings), target))
        return 0

    reported, grandfathered = findings, []
    if options.fail_on_new and baseline_path:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print("error: cannot load baseline %s: %s"
                  % (baseline_path, exc), file=sys.stderr)
            return 2
        reported, grandfathered = baseline.partition(findings)

    summary = {"findings": len(reported),
               "baselined": len(grandfathered),
               "files": len({f.path for f in reported})}
    if options.format == "json":
        print(json.dumps({"findings": [f.to_json() for f in reported],
                          "summary": summary}, indent=2, sort_keys=True))
    else:
        for finding in reported:
            print(finding.render())
        if reported:
            print("%d finding(s) in %d file(s)%s"
                  % (summary["findings"], summary["files"],
                     " (+%d baselined)" % len(grandfathered)
                     if grandfathered else ""))
        else:
            print("clean%s" % (" (%d baselined finding(s) grandfathered)"
                               % len(grandfathered)
                               if grandfathered else ""))
    if options.report_only:
        return 0
    return 1 if reported else 0


if __name__ == "__main__":
    sys.exit(main())
