"""statlint — invariant-aware static analysis for this repository.

An AST-based lint framework whose checkers encode *this codebase's*
concurrency and durability invariants (the ones ARCHITECTURE §6/§7 and
docs/PERSISTENCE.md state in prose): lock discipline for
``GUARDED_BY``-annotated fields, a cycle-free lock-acquisition order,
fork-safety of code reachable from shard-worker entrypoints, crash-safe
write ordering in the persistence layer, and exception hygiene.

See docs/ANALYSIS.md for the checker catalog, the annotation
conventions (``GUARDED_BY``, ``# statlint: holds=...``,
``# statlint: process-entrypoint``), the suppression / baseline
workflow, and how to add a checker.

Usage::

    python -m repro.tools.statlint src/ --fail-on-new
"""

from repro.tools.statlint.core import (  # noqa: F401
    Baseline,
    Finding,
    Project,
    SourceModule,
    all_checkers,
    analyze_paths,
    register,
    rule_ids,
)

# Importing the checker modules registers them with the core registry.
from repro.tools.statlint import (  # noqa: F401  isort: skip
    crashorder,
    exceptions,
    forksafety,
    locks,
)
