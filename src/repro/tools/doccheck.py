"""Check intra-repo links in markdown docs (CI's ``docs`` job).

Scans markdown files for inline links and images (``[text](target)``)
and fails when a relative target does not exist on disk, so README and
docs references cannot rot silently as files move. External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#section``)
are skipped; a relative target's own ``#anchor`` suffix is ignored.

Usage::

    python -m repro.tools.doccheck README.md docs ROADMAP.md --orphans docs

Each argument is a markdown file or a directory scanned recursively for
``*.md``. ``--orphans DIR`` additionally fails for every ``*.md`` under
``DIR`` that no scanned file links to — a reference doc nothing points
at is unreachable to readers and rots invisibly. Exits non-zero listing
every broken link and orphan.
"""

import os
import re
import sys

#: inline markdown link/image: [text](target) — target captured lazily,
#: stopping at the first unescaped closing parenthesis.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def iter_markdown_files(arguments):
    for argument in arguments:
        if os.path.isdir(argument):
            for root, _dirs, files in os.walk(argument):
                for name in sorted(files):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        else:
            yield argument


def check_file(path):
    """Broken links in one markdown file as (line, target) pairs."""
    broken = []
    base = os.path.dirname(os.path.abspath(path))
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                if not os.path.exists(os.path.join(base, relative)):
                    broken.append((line_number, target))
    return broken


def link_targets(path):
    """Absolute (normalized) paths of ``path``'s relative link targets."""
    targets = set()
    base = os.path.dirname(os.path.abspath(path))
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                relative = target.split("#", 1)[0]
                if relative:
                    targets.add(
                        os.path.normpath(os.path.join(base, relative)))
    return targets


def find_orphans(directory, referenced):
    """``*.md`` files under ``directory`` no scanned file links to."""
    return [path for path in iter_markdown_files([directory])
            if os.path.normpath(os.path.abspath(path)) not in referenced]


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    orphan_dirs = []
    paths = []
    arguments = iter(argv)
    for argument in arguments:
        if argument == "--orphans":
            orphan_dir = next(arguments, None)
            if orphan_dir is None:
                print("doccheck: --orphans needs a directory",
                      file=sys.stderr)
                return 2
            orphan_dirs.append(orphan_dir)
        else:
            paths.append(argument)
    if not paths:
        print("usage: python -m repro.tools.doccheck FILE_OR_DIR... "
              "[--orphans DIR]", file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    referenced = set()
    for path in iter_markdown_files(paths):
        if not os.path.exists(path):
            print(f"doccheck: no such file: {path}", file=sys.stderr)
            failures += 1
            continue
        checked += 1
        referenced |= link_targets(path)
        for line_number, target in check_file(path):
            print(f"{path}:{line_number}: broken link -> {target}",
                  file=sys.stderr)
            failures += 1
    for directory in orphan_dirs:
        if not os.path.isdir(directory):
            print(f"doccheck: --orphans: no such directory: {directory}",
                  file=sys.stderr)
            failures += 1
            continue
        for path in find_orphans(directory, referenced):
            print(f"{path}: orphaned doc: no scanned file links to it",
                  file=sys.stderr)
            failures += 1
    if failures:
        print(f"doccheck: {failures} problem(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"doccheck: {checked} file(s) ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
