"""Check intra-repo links in markdown docs (CI's ``docs`` job).

Scans markdown files for inline links and images (``[text](target)``)
and fails when a relative target does not exist on disk, so README and
docs references cannot rot silently as files move. External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#section``)
are skipped; a relative target's own ``#anchor`` suffix is ignored.

Usage::

    python -m repro.tools.doccheck README.md docs ROADMAP.md

Each argument is a markdown file or a directory scanned recursively for
``*.md``. Exits non-zero listing every broken link.
"""

import os
import re
import sys

#: inline markdown link/image: [text](target) — target captured lazily,
#: stopping at the first unescaped closing parenthesis.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def iter_markdown_files(arguments):
    for argument in arguments:
        if os.path.isdir(argument):
            for root, _dirs, files in os.walk(argument):
                for name in sorted(files):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        else:
            yield argument


def check_file(path):
    """Broken links in one markdown file as (line, target) pairs."""
    broken = []
    base = os.path.dirname(os.path.abspath(path))
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                if not os.path.exists(os.path.join(base, relative)):
                    broken.append((line_number, target))
    return broken


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.tools.doccheck FILE_OR_DIR...",
              file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for path in iter_markdown_files(argv):
        if not os.path.exists(path):
            print(f"doccheck: no such file: {path}", file=sys.stderr)
            failures += 1
            continue
        checked += 1
        for line_number, target in check_file(path):
            print(f"{path}:{line_number}: broken link -> {target}",
                  file=sys.stderr)
            failures += 1
    if failures:
        print(f"doccheck: {failures} problem(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"doccheck: {checked} file(s) ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
