"""Shuffle machinery: stable partitioning, sorting, grouping.

Partitioning must be deterministic across processes (Python's builtin
``hash`` is salted), so keys are hashed with CRC32 over a canonical text
form.
"""

import zlib

from repro.data.comparators import key_sort_key


def stable_hash(key):
    """Deterministic 32-bit hash of a shuffle key (scalar or tuple)."""
    return zlib.crc32(_canonical_bytes(key))


def _canonical_bytes(key):
    if key is None:
        return b"\x00N"
    if isinstance(key, bool):
        return b"\x00B" + (b"1" if key else b"0")
    if isinstance(key, int):
        return b"\x00I" + str(key).encode("ascii")
    if isinstance(key, float):
        if key == int(key):  # 2.0 must hash like 2 (they compare equal)
            return b"\x00I" + str(int(key)).encode("ascii")
        return b"\x00F" + repr(key).encode("ascii")
    if isinstance(key, str):
        return b"\x00S" + key.encode("utf-8")
    if isinstance(key, tuple):
        return b"\x00T" + b"|".join(_canonical_bytes(item) for item in key)
    raise TypeError(f"cannot hash shuffle key of type {type(key).__name__}")


def partition_index(key, num_partitions):
    return stable_hash(key) % num_partitions


def estimate_row_bytes(row):
    """Cheap serialized-size estimate used for shuffle-volume accounting."""
    total = 0
    for value in row:
        if value is None:
            total += 1
        elif isinstance(value, str):
            total += len(value) + 1
        elif isinstance(value, tuple):  # bag
            total += 2 + sum(estimate_row_bytes(inner) + 2 for inner in value)
        else:
            total += len(str(value)) + 1
    return total


def grouped_partitions(keyed_rows, num_partitions):
    """Partition, sort, and group (branch-tagged) keyed rows.

    ``keyed_rows`` is an iterable of (branch_index, key, row). Returns a
    list of partitions; each partition is a list of (key, groups) where
    ``groups`` maps branch_index -> list of rows, in deterministic order
    (partitions by index, keys ascending, rows in arrival order).
    """
    buckets = [[] for _ in range(num_partitions)]
    for sequence, (branch, key, row) in enumerate(keyed_rows):
        buckets[partition_index(key, num_partitions)].append(
            (key_sort_key(key), sequence, branch, key, row)
        )
    partitions = []
    for bucket in buckets:
        bucket.sort(key=lambda item: (item[0], item[1]))
        groups = []
        current_key_sort = object()
        current = None
        for sort_key, _, branch, key, row in bucket:
            if current is None or sort_key != current_key_sort:
                current = (key, {})
                groups.append(current)
                current_key_sort = sort_key
            current[1].setdefault(branch, []).append(row)
        partitions.append(groups)
    return partitions
