"""The MapReduce execution engine and cluster/cost simulation.

Jobs really execute: map pipelines, hash-partitioned sort/shuffle, reduce
pipelines, DFS reads/writes. Simulated wall-clock time is produced by a
deterministic cost model (:mod:`repro.mapreduce.costmodel`) that implements
the paper's Equation 2 over the counters the engine collects, with cluster
topology matching the paper's Section 7 (14 workers, 4 map + 2 reduce slots
each). Workflow completion time implements Equation 1 (critical path).
"""

from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.costmodel import CostBreakdown, CostModel, CostModelConfig
from repro.mapreduce.counters import JobStats
from repro.mapreduce.job import MRJob
from repro.mapreduce.runner import JobRunner, JobRunResult
from repro.mapreduce.workflow import Workflow, WorkflowExecutor, WorkflowResult

__all__ = [
    "ClusterConfig",
    "CostBreakdown",
    "CostModel",
    "CostModelConfig",
    "JobRunner",
    "JobRunResult",
    "JobStats",
    "MRJob",
    "Workflow",
    "WorkflowExecutor",
    "WorkflowResult",
]
