"""Deterministic cost model: counters -> simulated seconds.

Implements the paper's Equation 2 literally:

    ET(Job) = Tload + sum_i ET(OPi) + Tsort + Tstore

over the byte/record counters the engine measures, with slot-wave
parallelism from the cluster topology. The ``scale`` knob interprets one
actual byte (we execute scaled-down data) as ``scale`` bytes, which is how
the harness realizes the paper's 15 GB and 150 GB instances.

The constants are Hadoop-0.20-era rates (sequential disk reads ~tens of
MB/s per slot; replicated writes ~3x dearer than reads; multi-second task
startup). They are deliberately NOT fitted per-query to the paper —
EXPERIMENTS.md compares *shapes*, not absolute minutes.
"""

import math

from repro.common.errors import ExecutionError
from repro.common.units import MB
from repro.mapreduce.cluster import ClusterConfig

#: Per-operator CPU throughput (bytes/sec per slot). Hadoop-era costs are
#: byte-dominated; Join/Group/CoGroup are the "known to be expensive"
#: operators of Section 4 (lowest throughput).
DEFAULT_CPU_RATES = {
    "load": 12 * MB,       # deserialization
    "store": 16 * MB,      # serialization (disk I/O charged separately)
    "foreach": 40 * MB,
    "filter": 60 * MB,
    "join": 8 * MB,
    "group": 9 * MB,
    "cogroup": 8 * MB,
    "distinct": 10 * MB,
    "union": 120 * MB,
    "sort": 10 * MB,
    "limit": 200 * MB,
    "split": 200 * MB,
}

#: CPU throughput charged to operator kinds missing from ``cpu_rates``.
FALLBACK_CPU_RATE = 50 * MB

#: Shuffle-inducing operator kinds, by name rather than by class so that
#: skeleton plans reloaded from persistence estimate identically to the
#: originals (``PhysOp.is_blocking`` is lost in serialization).
BLOCKING_KINDS = frozenset({"join", "group", "cogroup", "distinct", "sort"})


class CostModelConfig:
    """Tunable constants for the cost model."""

    def __init__(
        self,
        scale=1.0,
        hdfs_block_bytes=64 * MB,
        read_bytes_per_sec=4 * MB,        # per slot; 6 tasks share one SCSI disk
        write_bytes_per_sec=2 * MB,       # per slot, per replica (x3 charged)
        shuffle_bytes_per_sec=3 * MB,     # spill + network + merge, per slot
        bytes_per_reducer=256 * MB,
        task_startup_sec=2.0,
        job_startup_sec=6.0,
        store_file_overhead_sec=5.0,
        cpu_rates=None,
        replication=3,
    ):
        if scale <= 0:
            raise ExecutionError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.hdfs_block_bytes = hdfs_block_bytes
        self.read_bytes_per_sec = read_bytes_per_sec
        self.write_bytes_per_sec = write_bytes_per_sec
        self.shuffle_bytes_per_sec = shuffle_bytes_per_sec
        self.bytes_per_reducer = bytes_per_reducer
        self.task_startup_sec = task_startup_sec
        self.job_startup_sec = job_startup_sec
        self.store_file_overhead_sec = store_file_overhead_sec
        self.cpu_rates = dict(DEFAULT_CPU_RATES)
        if cpu_rates:
            self.cpu_rates.update(cpu_rates)
        self.replication = replication

    def with_scale(self, scale):
        """A copy of this config at a different data scale."""
        return CostModelConfig(
            scale=scale,
            hdfs_block_bytes=self.hdfs_block_bytes,
            read_bytes_per_sec=self.read_bytes_per_sec,
            write_bytes_per_sec=self.write_bytes_per_sec,
            shuffle_bytes_per_sec=self.shuffle_bytes_per_sec,
            bytes_per_reducer=self.bytes_per_reducer,
            task_startup_sec=self.task_startup_sec,
            job_startup_sec=self.job_startup_sec,
            store_file_overhead_sec=self.store_file_overhead_sec,
            cpu_rates=self.cpu_rates,
            replication=self.replication,
        )


class CostBreakdown:
    """Equation 2 components for one job, in simulated seconds."""

    __slots__ = ("t_startup", "t_load", "t_ops", "t_sort", "t_store",
                 "num_map_tasks", "num_reducers")

    def __init__(self, t_startup, t_load, t_ops, t_sort, t_store,
                 num_map_tasks, num_reducers):
        self.t_startup = t_startup
        self.t_load = t_load
        self.t_ops = t_ops
        self.t_sort = t_sort
        self.t_store = t_store
        self.num_map_tasks = num_map_tasks
        self.num_reducers = num_reducers

    @property
    def total(self):
        return self.t_startup + self.t_load + self.t_ops + self.t_sort + self.t_store

    def __repr__(self):
        return (
            f"CostBreakdown(total={self.total:.1f}s: startup={self.t_startup:.1f}, "
            f"load={self.t_load:.1f}, ops={self.t_ops:.1f}, sort={self.t_sort:.1f}, "
            f"store={self.t_store:.1f})"
        )


class CostModel:
    """Evaluates Equation 2 for a job's :class:`JobStats`."""

    def __init__(self, config=None, cluster=None):
        self.config = config or CostModelConfig()
        self.cluster = cluster or ClusterConfig()

    def choose_num_reducers(self, map_output_bytes, parallel=None):
        """Reducer count: explicit PARALLEL wins, else sized by shuffle volume."""
        if parallel is not None:
            return max(1, min(parallel, self.cluster.reduce_capacity))
        effective = map_output_bytes * self.config.scale
        by_size = math.ceil(effective / self.config.bytes_per_reducer)
        return max(1, min(by_size, self.cluster.reduce_capacity))

    def estimate_load_time(self, num_bytes):
        """Simulated time for a map-only job that just loads ``num_bytes``.

        Used by retention Rule 2: reusing an entry pays this instead of
        the producing job's full execution time.
        """
        cfg = self.config
        effective = num_bytes * cfg.scale
        num_tasks = max(1, math.ceil(effective / cfg.hdfs_block_bytes))
        concurrency = min(self.cluster.map_capacity, num_tasks)
        waves = math.ceil(num_tasks / self.cluster.map_capacity)
        return (
            cfg.job_startup_sec
            + waves * cfg.task_startup_sec
            + effective / cfg.read_bytes_per_sec / concurrency
        )

    def estimate_subplan_time(self, op_kinds, input_bytes):
        """Equation-2-style estimate for a sub-plan over ``input_bytes``.

        A repository entry records the *whole* producing job's execution
        time; for a sub-job entry (an injected-store prefix of that
        job), only the prefix's share is actually avoided on reuse. This
        reconstructs it from the statistics an entry does carry: startup
        plus Tload over the input bytes (via :meth:`estimate_load_time`)
        plus per-operator CPU — and, for blocking operators, spill +
        merge shuffle — over the same bytes at the same slot
        concurrency. Deliberately coarse (every operator is charged the
        full input volume), but built from the same constants as
        :meth:`job_time`, so it is comparable to recorded times.
        """
        cfg = self.config
        effective = input_bytes * cfg.scale
        num_tasks = max(1, math.ceil(effective / cfg.hdfs_block_bytes))
        concurrency = min(self.cluster.map_capacity, num_tasks)
        total = self.estimate_load_time(input_bytes)
        for kind in op_kinds:
            if kind in ("load", "store", "split"):
                continue
            rate = cfg.cpu_rates.get(kind, FALLBACK_CPU_RATE)
            total += effective / rate / concurrency
            if kind in BLOCKING_KINDS:
                total += 2 * effective / cfg.shuffle_bytes_per_sec / concurrency
        return total

    def job_time(self, stats):
        """Equation 2: simulated execution time breakdown for one job."""
        cfg = self.config
        eff = cfg.scale

        map_input = stats.map_input_bytes * eff
        num_map_tasks = max(1, math.ceil(map_input / cfg.hdfs_block_bytes))
        map_conc = min(self.cluster.map_capacity, num_map_tasks)

        num_reducers = stats.num_reducers
        reduce_conc = max(1, min(self.cluster.reduce_capacity, num_reducers))

        # Startup: job submission plus task-launch waves.
        map_waves = math.ceil(num_map_tasks / self.cluster.map_capacity)
        reduce_waves = math.ceil(num_reducers / self.cluster.reduce_capacity) if num_reducers else 0
        t_startup = (
            cfg.job_startup_sec
            + map_waves * cfg.task_startup_sec
            + reduce_waves * cfg.task_startup_sec
        )

        # Tload: reading input off HDFS through the map slots.
        t_load = map_input / cfg.read_bytes_per_sec / map_conc

        # Sum of ET(OPi): per-operator CPU over the bytes each processed,
        # divided by stage concurrency.
        t_ops = 0.0
        for (kind, stage), (_, nbytes) in stats.op_charges.items():
            conc = map_conc if stage == "map" else reduce_conc
            rate = cfg.cpu_rates.get(kind, FALLBACK_CPU_RATE)
            t_ops += nbytes * eff / rate / conc

        # Tsort: map-side spill/sort plus shuffle/merge into reducers.
        shuffle = stats.map_output_bytes * eff
        t_sort = 0.0
        if shuffle:
            t_sort += shuffle / cfg.shuffle_bytes_per_sec / map_conc      # spill+sort
            t_sort += shuffle / cfg.shuffle_bytes_per_sec / reduce_conc   # fetch+merge

        # Tstore: replicated writes through the slots that execute them.
        write_rate = cfg.write_bytes_per_sec
        t_store = 0.0
        if stats.map_store_bytes:
            t_store += stats.map_store_bytes * eff * cfg.replication / write_rate / map_conc
        if stats.reduce_store_bytes:
            t_store += (
                stats.reduce_store_bytes * eff * cfg.replication / write_rate / reduce_conc
            )
        t_store += (
            stats.num_map_side_stores + stats.num_reduce_side_stores
        ) * cfg.store_file_overhead_sec

        return CostBreakdown(t_startup, t_load, t_ops, t_sort, t_store,
                             num_map_tasks, num_reducers)
