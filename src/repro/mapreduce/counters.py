"""Per-job execution statistics — the counters Hadoop would report.

These are the statistics ReStore stores in its repository for each job
output ("the size of the input and output data, and the average execution
time of the mappers and reducers", Section 5) and that the cost model turns
into simulated times.
"""


class JobStats:
    """Counters collected while executing one MapReduce job."""

    def __init__(self, job_id):
        self.job_id = job_id
        # Input side
        self.map_input_bytes = 0
        self.map_input_records = 0
        self.input_paths = []
        # Shuffle
        self.map_output_records = 0
        self.map_output_bytes = 0
        self.num_reducers = 0
        self.reduce_input_groups = 0
        # Output side
        self.output_paths = []
        self.output_bytes = 0          # every store, logical (pre-replication)
        self.map_store_bytes = 0       # written by map-side stores
        self.reduce_store_bytes = 0    # written by reduce-side stores
        self.injected_store_bytes = 0  # subset written by ReStore-injected stores
        self.num_map_side_stores = 0
        self.num_reduce_side_stores = 0
        self.final_output_bytes = 0    # non-temporary, non-injected stores
        self.reduce_output_records = 0
        # Per-operator work: {(kind, stage): [records_processed, bytes_processed]}
        self.op_charges = {}

    def charge_op(self, kind, stage, records, nbytes=0):
        key = (kind, stage)
        entry = self.op_charges.setdefault(key, [0, 0])
        entry[0] += records
        entry[1] += nbytes

    @property
    def is_map_only(self):
        return self.num_reducers == 0

    def merge(self, other):
        """Accumulate another job's counters (used for workflow totals)."""
        self.map_input_bytes += other.map_input_bytes
        self.map_input_records += other.map_input_records
        self.map_output_records += other.map_output_records
        self.map_output_bytes += other.map_output_bytes
        self.reduce_input_groups += other.reduce_input_groups
        self.output_bytes += other.output_bytes
        self.map_store_bytes += other.map_store_bytes
        self.reduce_store_bytes += other.reduce_store_bytes
        self.injected_store_bytes += other.injected_store_bytes
        self.num_map_side_stores += other.num_map_side_stores
        self.num_reduce_side_stores += other.num_reduce_side_stores
        self.final_output_bytes += other.final_output_bytes
        self.reduce_output_records += other.reduce_output_records
        for key, (records, nbytes) in other.op_charges.items():
            entry = self.op_charges.setdefault(key, [0, 0])
            entry[0] += records
            entry[1] += nbytes

    def summary(self):
        return (
            f"job {self.job_id}: in={self.map_input_bytes}B/{self.map_input_records}r, "
            f"shuffle={self.map_output_bytes}B, out={self.output_bytes}B "
            f"(injected={self.injected_store_bytes}B), reducers={self.num_reducers}"
        )
