"""The MapReduce job descriptor: a stage-annotated physical plan."""

from repro.common.errors import PlanError
from repro.physical.operators import POLoad, POStore


class MRJob:
    """One MapReduce job of a workflow.

    ``plan`` is a job-level :class:`PhysicalPlan` (Loads → ... → Stores)
    whose operators carry a ``stage`` ("map" or "reduce"). ``shuffle_op``
    is the single blocking operator, or None for a map-only job. This is
    exactly the granularity ReStore matches and stores (paper Figures 2-6).
    """

    def __init__(self, job_id, plan, shuffle_op=None):
        self.job_id = job_id
        self.plan = plan
        self.shuffle_op = shuffle_op
        self.dependencies = []   # MRJobs whose outputs this job loads
        plan.validate()
        self._check_stages()

    def _check_stages(self):
        for op in self.plan.operators():
            if op.stage not in ("map", "reduce"):
                raise PlanError(f"operator {op!r} has no stage assigned")
        if self.shuffle_op is None:
            reducers = [op for op in self.plan.operators() if op.stage == "reduce"]
            if reducers:
                raise PlanError("map-only job has reduce-stage operators")

    @property
    def parallel(self):
        """Requested reducer count (Pig's PARALLEL), if any."""
        if self.shuffle_op is None:
            return None
        if self.shuffle_op.kind == "sort":
            # Total order needs a single reducer in this engine.
            return 1
        return getattr(self.shuffle_op, "parallel", None)

    def loads(self):
        return [op for op in self.plan.operators() if isinstance(op, POLoad)]

    def stores(self):
        return [op for op in self.plan.operators() if isinstance(op, POStore)]

    def input_paths(self):
        return [load.path for load in self.loads()]

    def output_paths(self):
        return [store.path for store in self.stores()]

    def final_stores(self):
        """Stores that are user outputs (not temp, not ReStore-injected)."""
        return [
            store
            for store in self.stores()
            if not getattr(store, "temporary", False) and not store.injected
        ]

    def describe(self):
        shuffle = self.shuffle_op.signature() if self.shuffle_op else "none"
        return (
            f"Job {self.job_id} (shuffle: {shuffle})\n{self.plan.describe()}"
        )

    def __repr__(self):
        return f"<MRJob {self.job_id} shuffle={self.shuffle_op.kind if self.shuffle_op else None}>"
