"""The job runner: executes one MapReduce job's physical plan for real.

Evaluation is a memoized pull over the job DAG: map-side pipelines feed the
blocking operator's shuffle (partition → sort → group → merge), whose output
feeds the reduce-side pipeline; every Store writes real lines to the DFS.
Counters are collected along the way and priced by the cost model.
"""

from repro.common.errors import ExecutionError
from repro.data.codec import encode_row, encoded_size
from repro.data.comparators import key_sort_key
from repro.mapreduce.counters import JobStats
from repro.mapreduce.shuffle import estimate_row_bytes, grouped_partitions


class JobRunResult:
    """Outcome of one job run: counters + Equation 2 breakdown."""

    __slots__ = ("job_id", "stats", "breakdown", "skipped")

    def __init__(self, job_id, stats, breakdown, skipped=False):
        self.job_id = job_id
        self.stats = stats
        self.breakdown = breakdown
        self.skipped = skipped

    @classmethod
    def skipped_job(cls, job_id):
        """Result for a job eliminated by whole-job reuse (ET = 0)."""
        from repro.mapreduce.costmodel import CostBreakdown

        return cls(job_id, JobStats(job_id), CostBreakdown(0, 0, 0, 0, 0, 0, 0),
                   skipped=True)

    @property
    def execution_time(self):
        """ET(Job) in simulated seconds (Equation 2)."""
        return self.breakdown.total

    def __repr__(self):
        return f"JobRunResult({self.job_id}, ET={self.execution_time:.1f}s)"


class JobRunner:
    def __init__(self, dfs, cost_model):
        self.dfs = dfs
        self.cost_model = cost_model

    def run(self, job):
        execution = _JobExecution(job, self.dfs, self.cost_model)
        stats = execution.execute()
        breakdown = self.cost_model.job_time(stats)
        return JobRunResult(job.job_id, stats, breakdown)


def _bytes_estimate(rows):
    """Approximate serialized size of ``rows`` from a bounded sample."""
    if not rows:
        return 0
    sample = rows[:64]
    average = sum(estimate_row_bytes(row) for row in sample) / len(sample)
    return int(average * len(rows))


class _JobExecution:
    def __init__(self, job, dfs, cost_model):
        self.job = job
        self.dfs = dfs
        self.cost_model = cost_model
        self.stats = JobStats(job.job_id)
        self._memo = {}

    def execute(self):
        for store in self.job.plan.stores():
            self._run_store(store)
        return self.stats

    # Store execution ------------------------------------------------------

    def _run_store(self, store):
        rows = self._rows_of(store.inputs[0])
        lines = [encode_row(row, store.schema) for row in rows]
        num_bytes = sum(encoded_size(line) for line in lines)
        self.dfs.write_lines(store.path, lines, overwrite=True)
        stats = self.stats
        stats.output_paths.append(store.path)
        stats.output_bytes += num_bytes
        stats.charge_op("store", store.stage, len(rows), num_bytes)
        if store.stage == "map":
            stats.map_store_bytes += num_bytes
            stats.num_map_side_stores += 1
        else:
            stats.reduce_store_bytes += num_bytes
            stats.num_reduce_side_stores += 1
        if store.injected:
            stats.injected_store_bytes += num_bytes
        elif not store.temporary:
            stats.final_output_bytes += num_bytes

    # Pipeline evaluation -----------------------------------------------------

    def _rows_of(self, op):
        cached = self._memo.get(id(op))
        if cached is not None:
            return cached
        handler = getattr(self, f"_eval_{op.kind}", None)
        if handler is None:
            raise ExecutionError(f"job runner cannot execute operator kind {op.kind!r}")
        rows = handler(op)
        self._memo[id(op)] = rows
        return rows

    def _eval_load(self, op):
        lines = self.dfs.read_lines(op.path)
        rows = [self._decode(line, op.schema, op.path) for line in lines]
        self.stats.map_input_bytes += self.dfs.file_size(op.path)
        self.stats.map_input_records += len(rows)
        self.stats.input_paths.append(op.path)
        self.stats.charge_op("load", op.stage, len(rows), self.dfs.file_size(op.path))
        return rows

    @staticmethod
    def _decode(line, schema, path):
        from repro.data.codec import decode_row

        try:
            return decode_row(line, schema)
        except Exception as exc:
            raise ExecutionError(f"bad record in {path!r}: {exc}") from exc

    def _eval_foreach(self, op):
        source = self._rows_of(op.inputs[0])
        rows = [op.eval_row(row) for row in source]
        self.stats.charge_op("foreach", op.stage, len(source), _bytes_estimate(source))
        return rows

    def _eval_filter(self, op):
        source = self._rows_of(op.inputs[0])
        rows = [row for row in source if op.eval_row(row)]
        self.stats.charge_op("filter", op.stage, len(source), _bytes_estimate(source))
        return rows

    def _eval_limit(self, op):
        source = self._rows_of(op.inputs[0])
        self.stats.charge_op("limit", op.stage, len(source), _bytes_estimate(source))
        return source[: op.count]

    def _eval_union(self, op):
        rows = []
        for parent in op.inputs:
            rows.extend(self._rows_of(parent))
        self.stats.charge_op("union", op.stage, len(rows), _bytes_estimate(rows))
        return rows

    def _eval_split(self, op):
        rows = self._rows_of(op.inputs[0])
        self.stats.charge_op("split", op.stage, len(rows), 0)
        return rows

    # Blocking operators (the job's shuffle) ---------------------------------------

    def _shuffled_groups(self, op, keyed_rows, total_rows, total_bytes):
        stats = self.stats
        stats.map_output_records += total_rows
        stats.map_output_bytes += total_bytes
        num_reducers = self.cost_model.choose_num_reducers(
            stats.map_output_bytes, self.job.parallel
        )
        stats.num_reducers = num_reducers
        partitions = grouped_partitions(keyed_rows, num_reducers)
        stats.reduce_input_groups += sum(len(groups) for groups in partitions)
        return partitions

    def _check_is_shuffle(self, op):
        if op is not self.job.shuffle_op:
            raise ExecutionError(
                f"blocking operator {op.signature()} is not this job's shuffle; "
                "the MR compiler must split it into its own job"
            )

    def _branch_keyed_rows(self, op, drop_null_keys):
        key_fns = op.key_functions()
        keyed = []
        total_rows = 0
        total_bytes = 0
        for branch, parent in enumerate(op.inputs):
            key_fn = key_fns[branch]
            for row in self._rows_of(parent):
                key = key_fn(row)
                if drop_null_keys and _key_is_null(key):
                    continue
                keyed.append((branch, key, row))
                total_rows += 1
                total_bytes += estimate_row_bytes(row) + 4
        return keyed, total_rows, total_bytes

    def _eval_join(self, op):
        self._check_is_shuffle(op)
        # Inner equi-join: null keys never match (Pig semantics), so they
        # are dropped at the map side.
        keyed, total_rows, total_bytes = self._branch_keyed_rows(op, drop_null_keys=True)
        partitions = self._shuffled_groups(op, keyed, total_rows, total_bytes)
        rows = []
        for groups in partitions:
            for _, by_branch in groups:
                left_rows = by_branch.get(0, ())
                right_rows = by_branch.get(1, ())
                for left in left_rows:
                    for right in right_rows:
                        rows.append(left + right)
        self.stats.charge_op("join", "reduce", total_rows + len(rows), total_bytes)
        self.stats.reduce_output_records += len(rows)
        return rows

    def _eval_group(self, op):
        self._check_is_shuffle(op)
        keyed, total_rows, total_bytes = self._branch_keyed_rows(op, drop_null_keys=False)
        partitions = self._shuffled_groups(op, keyed, total_rows, total_bytes)
        composite = not op.is_group_all and len(op.keys) > 1
        rows = []
        for groups in partitions:
            for key, by_branch in groups:
                bag = tuple(by_branch.get(0, ()))
                if composite:
                    rows.append(tuple(key) + (bag,))
                else:
                    rows.append((key, bag))
        self.stats.charge_op("group", "reduce", total_rows, total_bytes)
        self.stats.reduce_output_records += len(rows)
        return rows

    def _eval_cogroup(self, op):
        self._check_is_shuffle(op)
        keyed, total_rows, total_bytes = self._branch_keyed_rows(op, drop_null_keys=False)
        partitions = self._shuffled_groups(op, keyed, total_rows, total_bytes)
        composite = len(op.key_lists[0]) > 1
        num_branches = len(op.inputs)
        rows = []
        for groups in partitions:
            for key, by_branch in groups:
                bags = tuple(tuple(by_branch.get(b, ())) for b in range(num_branches))
                if composite:
                    rows.append(tuple(key) + bags)
                else:
                    rows.append((key,) + bags)
        self.stats.charge_op("cogroup", "reduce", total_rows, total_bytes)
        self.stats.reduce_output_records += len(rows)
        return rows

    def _eval_distinct(self, op):
        self._check_is_shuffle(op)
        keyed, total_rows, total_bytes = self._branch_keyed_rows(op, drop_null_keys=False)
        partitions = self._shuffled_groups(op, keyed, total_rows, total_bytes)
        rows = []
        for groups in partitions:
            for key, _ in groups:
                rows.append(key)  # the key IS the whole row
        self.stats.charge_op("distinct", "reduce", total_rows, total_bytes)
        self.stats.reduce_output_records += len(rows)
        return rows

    def _eval_sort(self, op):
        self._check_is_shuffle(op)
        keyed, total_rows, total_bytes = self._branch_keyed_rows(op, drop_null_keys=False)
        # Total order: a single reducer (job.parallel forces 1 for sorts).
        self.stats.map_output_records += total_rows
        self.stats.map_output_bytes += total_bytes
        self.stats.num_reducers = 1
        rows = [row for _, _, row in keyed]
        # Stable multi-pass sort honours per-key ASC/DESC.
        for compiled, direction in reversed(op.keys):
            fn = compiled.fn
            rows.sort(key=lambda row: key_sort_key(fn(row)), reverse=direction == "desc")
        self.stats.reduce_input_groups += len(rows)
        self.stats.charge_op("sort", "reduce", total_rows, total_bytes)
        self.stats.reduce_output_records += len(rows)
        return rows


def _key_is_null(key):
    if key is None:
        return True
    if isinstance(key, tuple):
        return any(item is None for item in key)
    return False
