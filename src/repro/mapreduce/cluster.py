"""Cluster topology, matching the paper's experimental setup (Section 7):

15 nodes; one runs the JobTracker/NameNode, the other 14 each run a
TaskTracker and DataNode with 4 map slots and 2 reduce slots.
"""

from repro.common.errors import ExecutionError


class ClusterConfig:
    """Slot capacities used by both the scheduler and the cost model."""

    def __init__(self, num_workers=14, map_slots_per_worker=4, reduce_slots_per_worker=2):
        if num_workers < 1:
            raise ExecutionError(f"need at least one worker, got {num_workers}")
        if map_slots_per_worker < 1 or reduce_slots_per_worker < 1:
            raise ExecutionError("slot counts must be positive")
        self.num_workers = num_workers
        self.map_slots_per_worker = map_slots_per_worker
        self.reduce_slots_per_worker = reduce_slots_per_worker

    @property
    def map_capacity(self):
        return self.num_workers * self.map_slots_per_worker

    @property
    def reduce_capacity(self):
        return self.num_workers * self.reduce_slots_per_worker

    def __repr__(self):
        return (
            f"ClusterConfig(workers={self.num_workers}, "
            f"map_slots={self.map_capacity}, reduce_slots={self.reduce_capacity})"
        )
