"""Workflows of MapReduce jobs: the DAG, execution, and Equation 1.

``Workflow`` is what the dataflow compiler hands to ReStore (or directly to
the executor). ``WorkflowExecutor`` runs jobs in dependency order and
computes per-job and workflow completion times with the paper's Equation 1:

    Ttotal(Job_n) = ET(Job_n) + max_{i in deps} Ttotal(Job_i)
"""

from repro.common.errors import ExecutionError
from repro.mapreduce.runner import JobRunner


class Workflow:
    """A DAG of :class:`MRJob` with temp-output bookkeeping."""

    def __init__(self, name, jobs, temp_paths=()):
        self.name = name
        self.jobs = list(jobs)
        self.temp_paths = set(temp_paths)

    def topological_jobs(self):
        """Jobs ordered so that dependencies come first.

        Raises when the DAG is cyclic or when a job depends on a job that
        is not part of this workflow.
        """
        members = {id(job) for job in self.jobs}
        ordered = []
        seen = set()
        visiting = set()

        def visit(job):
            if id(job) not in members:
                raise ExecutionError(
                    f"workflow {self.name!r}: job {job.job_id} is a dependency "
                    "but not a member"
                )
            if id(job) in seen:
                return
            if id(job) in visiting:
                raise ExecutionError(f"cycle in workflow {self.name!r}")
            visiting.add(id(job))
            for dep in job.dependencies:
                visit(dep)
            visiting.discard(id(job))
            seen.add(id(job))
            ordered.append(job)

        for job in self.jobs:
            visit(job)
        return ordered

    def final_output_paths(self):
        paths = []
        for job in self.jobs:
            for store in job.final_stores():
                paths.append(store.path)
        return paths

    def describe(self):
        lines = [f"Workflow {self.name!r}: {len(self.jobs)} job(s)"]
        for job in self.topological_jobs():
            deps = ", ".join(dep.job_id for dep in job.dependencies) or "none"
            lines.append(f"- {job.job_id} (depends on: {deps})")
            lines.append("  " + job.describe().replace("\n", "\n  "))
        return "\n".join(lines)

    def __repr__(self):
        return f"<Workflow {self.name!r} jobs={len(self.jobs)}>"


class WorkflowResult:
    """Execution record: per-job results plus Equation 1 completion times."""

    def __init__(self, workflow):
        self.workflow = workflow
        self.job_results = {}        # job_id -> JobRunResult
        self.completion_times = {}   # job_id -> Ttotal(job), Equation 1

    @property
    def total_time(self):
        """Workflow completion time: the slowest critical path."""
        if not self.completion_times:
            return 0.0
        return max(self.completion_times.values())

    @property
    def total_execution_time(self):
        """Sum of all job ETs (cluster work, ignoring the DAG)."""
        return sum(result.execution_time for result in self.job_results.values())

    def stats_of(self, job_id):
        return self.job_results[job_id].stats

    def describe(self):
        lines = [f"Workflow {self.workflow.name!r}: total {self.total_time:.1f}s"]
        for job in self.workflow.topological_jobs():
            result = self.job_results[job.job_id]
            lines.append(
                f"- {job.job_id}: ET={result.execution_time:.1f}s, "
                f"Ttotal={self.completion_times[job.job_id]:.1f}s "
                f"({result.stats.summary()})"
            )
        return "\n".join(lines)


class WorkflowExecutor:
    """Runs workflows on the engine; deletes temp outputs afterwards
    (the "current practice" the paper's introduction describes) unless
    ``keep_temps`` — ReStore's mode — is set.
    """

    def __init__(self, dfs, cost_model, keep_temps=False):
        self.dfs = dfs
        self.cost_model = cost_model
        self.keep_temps = keep_temps
        self._runner = JobRunner(dfs, cost_model)

    def execute(self, workflow):
        result = WorkflowResult(workflow)
        for job in workflow.topological_jobs():
            job_result = self._runner.run(job)
            result.job_results[job.job_id] = job_result
            dep_total = max(
                (result.completion_times[dep.job_id] for dep in job.dependencies),
                default=0.0,
            )
            result.completion_times[job.job_id] = job_result.execution_time + dep_total
        if not self.keep_temps:
            for path in workflow.temp_paths:
                self.dfs.delete_if_exists(path)
        return result
