"""High-level facade: a "Pig on Hadoop" instance with optional ReStore.

This is the entry point downstream users should reach for:

>>> from repro import PigSystem
>>> system = PigSystem()
>>> system.write_table("/data/t", rows, schema)
>>> result = system.run("A = load '/data/t' as (x:int); ...")   # no reuse
>>> restore = system.restore()                                   # with reuse
>>> result = restore.submit(system.compile(query_text))
"""

import hashlib
import itertools

from repro.common import LogicalClock
from repro.data import encode_row
from repro.dfs import DistributedFileSystem
from repro.logical import build_logical_plan
from repro.logical.optimizer import optimize as optimize_logical
from repro.mapreduce import ClusterConfig, CostModel, CostModelConfig, WorkflowExecutor
from repro.mrcompiler import compile_to_workflow
from repro.physical import logical_to_physical
from repro.piglatin import parse_query
from repro.restore.manager import ReStore


def _plan_digest(physical_plan):
    """Stable digest of a physical plan's structure and signatures."""
    parts = []
    ids = {}
    for op in physical_plan.operators():
        ids[id(op)] = len(ids)
        inputs = ",".join(str(ids[id(parent)]) for parent in op.inputs)
        parts.append(f"{op.signature()}<-[{inputs}]")
    return hashlib.sha1("||".join(parts).encode("utf-8")).hexdigest()[:12]


class PigSystem:
    """A simulated cluster: DFS + MapReduce engine + the Pig compiler."""

    def __init__(self, dfs=None, cost_config=None, cluster=None, clock=None,
                 optimize=False):
        self.clock = clock or LogicalClock()
        self.dfs = dfs or DistributedFileSystem(clock=self.clock)
        self.cluster = cluster or ClusterConfig()
        self.cost_model = CostModel(cost_config or CostModelConfig(), self.cluster)
        #: apply the logical optimizer before physical translation. Keep
        #: one setting per system: optimized and unoptimized plans have
        #: different signatures, so mixing them halves reuse.
        self.optimize = optimize
        self._names = itertools.count(1)

    # Data ------------------------------------------------------------------

    def write_table(self, path, rows, schema, overwrite=True):
        """Serialize ``rows`` under ``schema`` into the DFS at ``path``."""
        lines = [encode_row(row, schema) for row in rows]
        return self.dfs.write_lines(path, lines, overwrite=overwrite)

    # Compilation ----------------------------------------------------------------

    def compile(self, query_text, name=None):
        """Pig pipeline: parse -> logical -> physical -> MR workflow.

        Workflow names get a unique suffix (job ids never collide), while
        inter-job temp paths are **content-addressed** — derived from a
        digest of the physical plan (including input dataset versions). A
        re-submitted query therefore writes its intermediates to the same
        locations, which is what lets ReStore's repository chain sub-job
        entries of downstream jobs across runs (see DESIGN.md).
        """
        name = f"{name or 'wf'}-{next(self._names)}"
        logical = build_logical_plan(parse_query(query_text))
        if self.optimize:
            logical = optimize_logical(logical)
        versions = {}
        for load in logical.sources():
            if self.dfs.exists(load.path):
                versions[load.path] = self.dfs.status(load.path).version
        physical = logical_to_physical(logical, versions)
        digest = _plan_digest(physical)
        return compile_to_workflow(physical, name, temp_prefix=f"/tmp/q{digest}")

    # Execution --------------------------------------------------------------------

    def run(self, query_text, name=None):
        """Compile and execute without any reuse (deletes temp outputs)."""
        workflow = self.compile(query_text, name)
        executor = WorkflowExecutor(self.dfs, self.cost_model)
        return executor.execute(workflow)

    def restore(self, **kwargs):
        """A :class:`ReStore` manager bound to this system's cluster."""
        kwargs.setdefault("clock", self.clock)
        return ReStore(self.dfs, self.cost_model, **kwargs)

    def with_scale(self, scale):
        """Same DFS/cluster but a cost model at a different data scale."""
        clone = PigSystem.__new__(PigSystem)
        clone.clock = self.clock
        clone.dfs = self.dfs
        clone.cluster = self.cluster
        clone.cost_model = CostModel(self.cost_model.config.with_scale(scale),
                                     self.cluster)
        clone.optimize = self.optimize
        clone._names = self._names
        return clone
