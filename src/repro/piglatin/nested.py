"""Nested FOREACH blocks: inner pipelines over grouped bags.

Pig allows a FOREACH to carry a block of inner statements operating on the
bag fields of each row, e.g. PigMix's L4::

    D = foreach C {
        aleph = B.action;
        gen = distinct aleph;
        generate group, COUNT(gen);
    };

The supported inner forms are projections (``x = B;`` / ``x = B.field;``),
``filter``, and ``distinct``. Compilation appends one *virtual bag field*
per inner alias to the row schema; GENERATE items are then compiled
against that extended schema, so aggregates over inner aliases need no
special casing. Canonical forms are positional, like every other
signature.
"""

from repro.common.errors import DataError, PlanError
from repro.data.comparators import key_sort_key
from repro.data.schema import Field, Schema
from repro.data.types import DataType
from repro.piglatin import ast
from repro.piglatin.expressions import compile_predicate


class InnerOp:
    """One compiled inner statement: extends the row with a new bag."""

    __slots__ = ("alias", "fn", "canonical", "element")

    def __init__(self, alias, fn, canonical, element):
        self.alias = alias
        #: fn(extended_row_values) -> tuple of element rows
        self.fn = fn
        self.canonical = canonical
        self.element = element


def compile_inner_pipeline(input_schema, inner_statements):
    """Compile inner statements against ``input_schema``.

    Returns (extended_schema, [InnerOp...]): the extended schema has one
    BAG field appended per inner alias, in statement order.
    """
    fields = list(input_schema.fields)
    ops = []
    for statement in inner_statements:
        schema_so_far = Schema(fields)
        op = _compile_inner(statement, schema_so_far)
        ops.append(op)
        fields.append(Field(op.alias, DataType.BAG, op.element))
    return Schema(fields), ops


def _bag_source(schema, name):
    position = schema.position_of(name)
    field = schema.field_at(position)
    if field.dtype is not DataType.BAG:
        raise PlanError(f"inner statements operate on bags; {name!r} is "
                        f"{field.dtype.value}")
    if field.element is None:
        raise PlanError(f"bag {name!r} has no element schema")
    return position, field.element


def _compile_inner(statement, schema):
    if isinstance(statement, ast.InnerAssign):
        return _compile_assign(statement, schema)
    if isinstance(statement, ast.InnerFilter):
        return _compile_inner_filter(statement, schema)
    if isinstance(statement, ast.InnerDistinct):
        return _compile_inner_distinct(statement, schema)
    raise PlanError(f"unsupported inner statement {statement!r}")


def _compile_assign(statement, schema):
    expr = statement.expr
    if isinstance(expr, ast.FieldRef):
        position, element = _bag_source(schema, expr.name)

        def fn(values):
            bag = values[position]
            return () if bag is None else bag

        return InnerOp(statement.alias, fn, f"${position}", element)
    if isinstance(expr, ast.Deref):
        position, element = _bag_source(schema, expr.base)
        inner = element.position_of(expr.field)
        inner_field = element.field_at(inner)

        def fn(values):
            bag = values[position]
            if bag is None:
                return ()
            return tuple((row[inner],) for row in bag)

        projected = Schema([inner_field.renamed(inner_field.short_name)])
        return InnerOp(statement.alias, fn, f"${position}.{inner}", projected)
    raise PlanError(
        "inner assignments must be a bag or bag projection "
        f"(got {expr!r})"
    )


def _compile_inner_filter(statement, schema):
    position, element = _bag_source(schema, statement.input_alias)
    predicate = compile_predicate(statement.condition, element)
    pred_fn = predicate.fn

    def fn(values):
        bag = values[position]
        if bag is None:
            return ()
        return tuple(row for row in bag if pred_fn(row) is True)

    canonical = f"filter(${position},{predicate.canonical})"
    return InnerOp(statement.alias, fn, canonical, element)


def _compile_inner_distinct(statement, schema):
    position, element = _bag_source(schema, statement.input_alias)

    def fn(values):
        bag = values[position]
        if bag is None:
            return ()
        unique = {}
        for row in bag:
            unique.setdefault(tuple(row), row)
        return tuple(sorted(unique.values(), key=key_sort_key))

    return InnerOp(statement.alias, fn, f"distinct(${position})", element)
