"""Compile expression ASTs against schemas into evaluable closures.

``compile_expression`` resolves field names to positions, type-checks, and
returns a :class:`CompiledExpr` carrying:

* ``fn(row) -> value`` — the evaluator,
* ``dtype`` — a :class:`DataType`, or :data:`BOOLEAN` for predicates,
* ``canonical`` — a stable, *positional* text form. Two expressions with the
  same canonical form compute the same function of their input rows; this is
  the basis of ReStore's operator equivalence (Section 3: "perform functions
  that produce the same output data"),
* ``name_hint`` — the output field name Pig would derive.

Null semantics follow Pig: comparisons and arithmetic involving null yield
null; FILTER keeps a row only when the predicate is true (null is not true).
"""

from repro.common.errors import DataError
from repro.data.schema import Field, Schema
from repro.data.types import coerce_value, DataType, infer_type, numeric_result_type
from repro.piglatin import ast
from repro.piglatin.builtins import lookup_builtin

#: Pseudo-dtype of predicates; not storable in a schema.
BOOLEAN = "boolean"

_CAST_TYPES = {
    "int": DataType.INT,
    "long": DataType.INT,
    "float": DataType.DOUBLE,
    "double": DataType.DOUBLE,
    "chararray": DataType.CHARARRAY,
}


class CompiledExpr:
    """A resolved, type-checked, evaluable expression."""

    __slots__ = ("fn", "dtype", "canonical", "name_hint", "element", "is_bag_projection")

    def __init__(self, fn, dtype, canonical, name_hint=None, element=None,
                 is_bag_projection=False):
        self.fn = fn
        self.dtype = dtype
        self.canonical = canonical
        self.name_hint = name_hint
        self.element = element  # row schema when dtype is BAG
        self.is_bag_projection = is_bag_projection

    def __repr__(self):
        return f"CompiledExpr({self.canonical})"


def compile_expression(node, schema):
    """Compile ``node`` against ``schema``; raises DataError on bad refs."""
    if isinstance(node, ast.Literal):
        return _compile_literal(node)
    if isinstance(node, ast.FieldRef):
        return _compile_field(schema, schema.position_of(node.name))
    if isinstance(node, ast.PositionalRef):
        if not 0 <= node.index < len(schema):
            raise DataError(
                f"positional reference ${node.index} out of range "
                f"(schema has {len(schema)} fields)"
            )
        return _compile_field(schema, node.index)
    if isinstance(node, ast.Deref):
        return _compile_deref(node, schema)
    if isinstance(node, ast.Cast):
        return _compile_cast(node, schema)
    if isinstance(node, ast.UnaryOp):
        return _compile_unary(node, schema)
    if isinstance(node, ast.BinaryOp):
        return _compile_binary(node, schema)
    if isinstance(node, ast.IsNull):
        return _compile_is_null(node, schema)
    if isinstance(node, ast.FuncCall):
        return _compile_call(node, schema)
    raise DataError(f"cannot compile expression node {node!r}")


def compile_predicate(node, schema):
    """Compile a FILTER/condition expression; must be boolean-typed."""
    compiled = compile_expression(node, schema)
    if compiled.dtype is not BOOLEAN:
        raise DataError(f"filter condition must be boolean, got {compiled.canonical}")
    return compiled


def _compile_literal(node):
    value = node.value
    dtype = infer_type(value)
    if isinstance(value, str):
        canonical = f"'{value}'"
    else:
        canonical = repr(value)
    return CompiledExpr(lambda row: value, dtype, canonical)


def _compile_field(schema, position):
    field = schema.field_at(position)
    fn = _field_getter(position)
    return CompiledExpr(
        fn,
        field.dtype,
        f"${position}",
        name_hint=field.short_name,
        element=field.element,
    )


def _field_getter(position):
    def fn(row):
        return row[position]

    return fn


def _compile_deref(node, schema):
    position = schema.position_of(node.base)
    field = schema.field_at(position)
    if field.dtype is not DataType.BAG:
        raise DataError(f"cannot dereference non-bag field {node.base!r} with '.'")
    if field.element is None:
        raise DataError(f"bag field {node.base!r} has no element schema")
    inner = field.element.position_of(node.field)
    inner_dtype = field.element.field_at(inner).dtype

    def fn(row):
        bag = row[position]
        if bag is None:
            return ()
        return tuple(inner_row[inner] for inner_row in bag)

    return CompiledExpr(
        fn,
        inner_dtype,
        f"${position}.{inner}",
        name_hint=node.field,
        is_bag_projection=True,
    )


def _compile_cast(node, schema):
    target = _CAST_TYPES.get(node.typename)
    if target is None:
        raise DataError(f"unknown cast type {node.typename!r}")
    operand = compile_expression(node.operand, schema)
    if operand.dtype is BOOLEAN or operand.dtype is DataType.BAG:
        raise DataError(f"cannot cast {operand.canonical} to {node.typename}")
    inner = operand.fn

    def fn(row):
        return coerce_value(inner(row), target)

    return CompiledExpr(
        fn, target, f"cast[{target.value}]({operand.canonical})", operand.name_hint
    )


def _compile_unary(node, schema):
    operand = compile_expression(node.operand, schema)
    inner = operand.fn
    if node.op == "neg":
        if operand.dtype not in (DataType.INT, DataType.DOUBLE):
            raise DataError(f"cannot negate {operand.canonical}")

        def fn(row):
            value = inner(row)
            return None if value is None else -value

        return CompiledExpr(fn, operand.dtype, f"neg({operand.canonical})")
    if node.op == "not":
        if operand.dtype is not BOOLEAN:
            raise DataError(f"NOT requires a boolean, got {operand.canonical}")

        def fn(row):
            value = inner(row)
            return None if value is None else not value

        return CompiledExpr(fn, BOOLEAN, f"not({operand.canonical})")
    raise DataError(f"unknown unary operator {node.op!r}")


_ARITHMETIC = {"+", "-", "*", "/", "%"}
_COMPARISON = {"==", "!=", "<", "<=", ">", ">="}


def _compile_binary(node, schema):
    left = compile_expression(node.left, schema)
    right = compile_expression(node.right, schema)
    if node.op in _ARITHMETIC:
        return _compile_arithmetic(node.op, left, right)
    if node.op in _COMPARISON:
        return _compile_comparison(node.op, left, right)
    if node.op in ("and", "or"):
        return _compile_logical(node.op, left, right)
    raise DataError(f"unknown binary operator {node.op!r}")


def _compile_arithmetic(op, left, right):
    for side in (left, right):
        if side.dtype not in (DataType.INT, DataType.DOUBLE):
            raise DataError(f"arithmetic needs numeric operands, got {side.canonical}")
    dtype = numeric_result_type(left.dtype, right.dtype)
    lfn, rfn = left.fn, right.fn
    int_division = op in ("/", "%") and dtype is DataType.INT

    def fn(row):
        a = lfn(row)
        b = rfn(row)
        if a is None or b is None:
            return None
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if b == 0:
            return None  # Pig yields null on division by zero
        if op == "/":
            return a // b if int_division else a / b
        return a % b

    return CompiledExpr(fn, dtype, f"{op}({left.canonical},{right.canonical})")


def _compile_comparison(op, left, right):
    numeric = (DataType.INT, DataType.DOUBLE)
    comparable = (
        (left.dtype in numeric and right.dtype in numeric)
        or (left.dtype is DataType.CHARARRAY and right.dtype is DataType.CHARARRAY)
    )
    if not comparable:
        raise DataError(
            f"cannot compare {left.canonical} ({left.dtype}) with "
            f"{right.canonical} ({right.dtype})"
        )
    lfn, rfn = left.fn, right.fn

    def fn(row):
        a = lfn(row)
        b = rfn(row)
        if a is None or b is None:
            return None
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        return a >= b

    return CompiledExpr(fn, BOOLEAN, f"{op}({left.canonical},{right.canonical})")


def _compile_logical(op, left, right):
    for side in (left, right):
        if side.dtype is not BOOLEAN:
            raise DataError(f"{op.upper()} requires boolean operands, got {side.canonical}")
    lfn, rfn = left.fn, right.fn

    if op == "and":
        def fn(row):
            a = lfn(row)
            if a is False:
                return False
            b = rfn(row)
            if a is None or b is None:
                return None if b is not False else False
            return a and b
    else:
        def fn(row):
            a = lfn(row)
            if a is True:
                return True
            b = rfn(row)
            if a is None or b is None:
                return None if b is not True else True
            return a or b

    return CompiledExpr(fn, BOOLEAN, f"{op}({left.canonical},{right.canonical})")


def _compile_is_null(node, schema):
    operand = compile_expression(node.operand, schema)
    inner = operand.fn
    negated = node.negated

    def fn(row):
        value = inner(row)
        return (value is not None) if negated else (value is None)

    suffix = "isnotnull" if negated else "isnull"
    return CompiledExpr(fn, BOOLEAN, f"{suffix}({operand.canonical})")


def _compile_call(node, schema):
    builtin = lookup_builtin(node.name)
    if len(node.args) != builtin.arity:
        raise DataError(
            f"{builtin.name} takes {builtin.arity} argument(s), got {len(node.args)}"
        )
    args = [compile_expression(arg, schema) for arg in node.args]
    if builtin.is_aggregate:
        return _compile_aggregate(builtin, args)
    for arg in args:
        if arg.dtype is BOOLEAN or arg.dtype is DataType.BAG or arg.is_bag_projection:
            raise DataError(f"{builtin.name} takes scalar arguments, got {arg.canonical}")
    dtype = builtin.result_dtype([arg.dtype for arg in args])
    arg_fns = [arg.fn for arg in args]
    impl = builtin.fn

    def fn(row):
        return impl(*[arg_fn(row) for arg_fn in arg_fns])

    canonical = f"{builtin.name}({','.join(arg.canonical for arg in args)})"
    return CompiledExpr(fn, dtype, canonical, name_hint=builtin.name.lower())


def _compile_aggregate(builtin, args):
    (arg,) = args
    if arg.dtype is DataType.BAG:
        # COUNT(C) over the whole bag: values are the rows themselves.
        if builtin.name not in ("COUNT",):
            raise DataError(f"{builtin.name} needs a bag projection like C.field")
        bag_fn = arg.fn

        def values_fn(row):
            bag = bag_fn(row)
            return () if bag is None else bag

        arg_dtype = DataType.INT
    elif arg.is_bag_projection:
        values_fn = arg.fn
        arg_dtype = arg.dtype
    else:
        raise DataError(
            f"{builtin.name} is an aggregate; its argument must come from a "
            f"grouped bag (e.g. {builtin.name}(C.field)), got {arg.canonical}"
        )
    dtype = builtin.result_dtype([arg_dtype])
    impl = builtin.fn

    def fn(row):
        return impl(values_fn(row))

    canonical = f"{builtin.name}({arg.canonical})"
    return CompiledExpr(fn, dtype, canonical, name_hint=builtin.name.lower())


def schema_from_load_fields(field_specs, default_type=DataType.CHARARRAY):
    """Build a Schema from LOAD ... AS field specs."""
    fields = []
    for spec in field_specs:
        if spec.typename is None:
            dtype = default_type
        else:
            dtype = _CAST_TYPES.get(spec.typename)
            if dtype is None:
                raise DataError(f"unknown field type {spec.typename!r}")
        fields.append(Field(spec.name, dtype))
    return Schema(fields)
