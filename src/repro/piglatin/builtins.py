"""Builtin functions: aggregates over bags plus a few scalar helpers.

Aggregate semantics follow Pig: nulls are skipped; SUM/MIN/MAX of an empty
or all-null input is null; COUNT counts rows. COUNT_DISTINCT is this
dialect's flat replacement for PigMix's nested ``distinct`` inside FOREACH
(see DESIGN.md, per-query notes).
"""

from repro.common.errors import DataError
from repro.data.types import DataType


class Builtin:
    """Descriptor for one builtin function."""

    __slots__ = ("name", "arity", "is_aggregate", "_result_dtype", "fn")

    def __init__(self, name, arity, is_aggregate, result_dtype, fn):
        self.name = name
        self.arity = arity
        self.is_aggregate = is_aggregate
        self._result_dtype = result_dtype
        self.fn = fn

    def result_dtype(self, arg_dtypes):
        if callable(self._result_dtype):
            return self._result_dtype(arg_dtypes)
        return self._result_dtype


def _non_null(values):
    return [value for value in values if value is not None]


def _agg_count(values):
    # COUNT works on a bag (rows) or a bag projection (scalars) alike.
    return len(values)


def _agg_sum(values):
    kept = _non_null(values)
    return sum(kept) if kept else None


def _agg_avg(values):
    kept = _non_null(values)
    return sum(kept) / len(kept) if kept else None


def _agg_min(values):
    kept = _non_null(values)
    return min(kept) if kept else None


def _agg_max(values):
    kept = _non_null(values)
    return max(kept) if kept else None


def _agg_count_distinct(values):
    return len(set(_non_null(values)))


def _sum_dtype(arg_dtypes):
    return DataType.DOUBLE if arg_dtypes[0] is DataType.DOUBLE else DataType.INT


def _same_dtype(arg_dtypes):
    return arg_dtypes[0]


def _scalar_round(value):
    return None if value is None else int(round(value))


def _scalar_abs(value):
    return None if value is None else abs(value)


def _scalar_upper(value):
    return None if value is None else value.upper()


def _scalar_lower(value):
    return None if value is None else value.lower()


def _scalar_strlen(value):
    return None if value is None else len(value)


def _scalar_concat(left, right):
    if left is None or right is None:
        return None
    return left + right


_BUILTINS = {
    builtin.name: builtin
    for builtin in [
        Builtin("COUNT", 1, True, DataType.INT, _agg_count),
        Builtin("SUM", 1, True, _sum_dtype, _agg_sum),
        Builtin("AVG", 1, True, DataType.DOUBLE, _agg_avg),
        Builtin("MIN", 1, True, _same_dtype, _agg_min),
        Builtin("MAX", 1, True, _same_dtype, _agg_max),
        Builtin("COUNT_DISTINCT", 1, True, DataType.INT, _agg_count_distinct),
        Builtin("ROUND", 1, False, DataType.INT, _scalar_round),
        Builtin("ABS", 1, False, _same_dtype, _scalar_abs),
        Builtin("UPPER", 1, False, DataType.CHARARRAY, _scalar_upper),
        Builtin("LOWER", 1, False, DataType.CHARARRAY, _scalar_lower),
        Builtin("STRLEN", 1, False, DataType.INT, _scalar_strlen),
        Builtin("CONCAT", 2, False, DataType.CHARARRAY, _scalar_concat),
    ]
}


def lookup_builtin(name):
    """Resolve a builtin by (case-insensitive) name; raises DataError."""
    builtin = _BUILTINS.get(name.upper())
    if builtin is None:
        known = ", ".join(sorted(_BUILTINS))
        raise DataError(f"unknown function {name!r}; builtins are: {known}")
    return builtin
