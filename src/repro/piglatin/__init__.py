"""Pig Latin front end: lexer, parser, expressions, builtin functions.

The dialect is the subset PigMix needs: LOAD/AS, FOREACH..GENERATE (with
FLATTEN(group) and aggregate functions over grouped bags), FILTER BY, JOIN,
GROUP BY / GROUP ALL, COGROUP, DISTINCT, UNION, ORDER BY, LIMIT, SPLIT-free
STORE. Queries parse to an AST of statements; the logical layer turns the
AST into an operator DAG.
"""

from repro.piglatin.lexer import tokenize
from repro.piglatin.parser import parse_query

__all__ = ["parse_query", "tokenize"]
