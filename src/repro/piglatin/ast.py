"""AST nodes for Pig Latin statements and expressions.

Nodes are plain, immutable-by-convention records with structural equality
(useful in parser tests). Expression resolution against schemas happens in
:mod:`repro.logical` / :mod:`repro.physical`, not here.
"""


class _Node:
    """Structural equality + repr over ``__slots__``."""

    __slots__ = ()

    def _fields(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __eq__(self, other):
        return type(self) is type(other) and self._fields() == other._fields()

    def __hash__(self):
        return hash((type(self).__name__, self._fields()))

    def __repr__(self):
        args = ", ".join(f"{name}={getattr(self, name)!r}" for name in self.__slots__)
        return f"{type(self).__name__}({args})"


# --- Expressions -----------------------------------------------------------


class FieldRef(_Node):
    """A (possibly ``alias::qualified``) field reference, incl. ``group``."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name


class PositionalRef(_Node):
    """``$n`` positional field reference."""

    __slots__ = ("index",)

    def __init__(self, index):
        self.index = index


class Deref(_Node):
    """``bag.field`` projection inside aggregate arguments."""

    __slots__ = ("base", "field")

    def __init__(self, base, field):
        self.base = base
        self.field = field


class Literal(_Node):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class UnaryOp(_Node):
    """``op`` is 'neg' or 'not'."""

    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        self.op = op
        self.operand = operand


class BinaryOp(_Node):
    """``op`` in {+,-,*,/,%,==,!=,<,<=,>,>=,and,or}."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right


class FuncCall(_Node):
    """Builtin function application, e.g. ``SUM(C.est_revenue)``."""

    __slots__ = ("name", "args")

    def __init__(self, name, args):
        self.name = name.upper()
        self.args = tuple(args)


class Cast(_Node):
    """``(int) expr`` style cast; ``typename`` in {int, double, chararray}."""

    __slots__ = ("typename", "operand")

    def __init__(self, typename, operand):
        self.typename = typename
        self.operand = operand


class IsNull(_Node):
    __slots__ = ("operand", "negated")

    def __init__(self, operand, negated=False):
        self.operand = operand
        self.negated = negated


# --- Statements ---------------------------------------------------------------


class GenItem(_Node):
    """One GENERATE item: an expression, optional AS name, FLATTEN flag."""

    __slots__ = ("expr", "alias", "flatten")

    def __init__(self, expr, alias=None, flatten=False):
        self.expr = expr
        self.alias = alias
        self.flatten = flatten


class FieldSpec(_Node):
    """A field in a LOAD ... AS clause: name plus optional type name."""

    __slots__ = ("name", "typename")

    def __init__(self, name, typename=None):
        self.name = name
        self.typename = typename


class LoadStmt(_Node):
    __slots__ = ("alias", "path", "fields")

    def __init__(self, alias, path, fields):
        self.alias = alias
        self.path = path
        self.fields = tuple(fields)


class InnerAssign(_Node):
    """Nested-FOREACH assignment: ``x = B;`` or ``x = B.field;``."""

    __slots__ = ("alias", "expr")

    def __init__(self, alias, expr):
        self.alias = alias
        self.expr = expr


class InnerFilter(_Node):
    """Nested-FOREACH filter: ``x = filter B by cond;``."""

    __slots__ = ("alias", "input_alias", "condition")

    def __init__(self, alias, input_alias, condition):
        self.alias = alias
        self.input_alias = input_alias
        self.condition = condition


class InnerDistinct(_Node):
    """Nested-FOREACH distinct: ``x = distinct B;``."""

    __slots__ = ("alias", "input_alias")

    def __init__(self, alias, input_alias):
        self.alias = alias
        self.input_alias = input_alias


class ForEachStmt(_Node):
    """FOREACH; ``inner`` holds the nested block's statements (if any)."""

    __slots__ = ("alias", "input_alias", "items", "inner")

    def __init__(self, alias, input_alias, items, inner=()):
        self.alias = alias
        self.input_alias = input_alias
        self.items = tuple(items)
        self.inner = tuple(inner)


class FilterStmt(_Node):
    __slots__ = ("alias", "input_alias", "condition")

    def __init__(self, alias, input_alias, condition):
        self.alias = alias
        self.input_alias = input_alias
        self.condition = condition


class JoinStmt(_Node):
    """``inputs`` is a tuple of (alias, key_exprs) pairs, one per side."""

    __slots__ = ("alias", "inputs", "parallel")

    def __init__(self, alias, inputs, parallel=None):
        self.alias = alias
        self.inputs = tuple((name, tuple(keys)) for name, keys in inputs)
        self.parallel = parallel


class GroupStmt(_Node):
    """``keys`` is a tuple of expressions, or None for GROUP ... ALL."""

    __slots__ = ("alias", "input_alias", "keys", "parallel")

    def __init__(self, alias, input_alias, keys, parallel=None):
        self.alias = alias
        self.input_alias = input_alias
        self.keys = None if keys is None else tuple(keys)
        self.parallel = parallel


class CoGroupStmt(_Node):
    __slots__ = ("alias", "inputs", "parallel")

    def __init__(self, alias, inputs, parallel=None):
        self.alias = alias
        self.inputs = tuple((name, tuple(keys)) for name, keys in inputs)
        self.parallel = parallel


class DistinctStmt(_Node):
    __slots__ = ("alias", "input_alias", "parallel")

    def __init__(self, alias, input_alias, parallel=None):
        self.alias = alias
        self.input_alias = input_alias
        self.parallel = parallel


class UnionStmt(_Node):
    __slots__ = ("alias", "input_aliases")

    def __init__(self, alias, input_aliases):
        self.alias = alias
        self.input_aliases = tuple(input_aliases)


class OrderStmt(_Node):
    """``keys`` is a tuple of (field_name, 'asc'|'desc')."""

    __slots__ = ("alias", "input_alias", "keys", "parallel")

    def __init__(self, alias, input_alias, keys, parallel=None):
        self.alias = alias
        self.input_alias = input_alias
        self.keys = tuple(keys)
        self.parallel = parallel


class LimitStmt(_Node):
    __slots__ = ("alias", "input_alias", "count")

    def __init__(self, alias, input_alias, count):
        self.alias = alias
        self.input_alias = input_alias
        self.count = count


class SplitStmt(_Node):
    """``SPLIT A INTO B IF cond, C IF cond;`` — ``branches`` is a tuple of
    (alias, condition) pairs. A row goes to every branch whose condition
    holds (Pig semantics), so the statement desugars to one FILTER per
    branch."""

    __slots__ = ("input_alias", "branches")

    def __init__(self, input_alias, branches):
        self.input_alias = input_alias
        self.branches = tuple(branches)


class StoreStmt(_Node):
    __slots__ = ("alias", "path")

    def __init__(self, alias, path):
        self.alias = alias
        self.path = path


class Query(_Node):
    """A whole script: ordered statements."""

    __slots__ = ("statements",)

    def __init__(self, statements):
        self.statements = tuple(statements)
