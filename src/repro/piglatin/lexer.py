"""Hand-written lexer for the Pig Latin dialect."""

from repro.common.errors import ParseError
from repro.piglatin.tokens import SYMBOLS, Token, TokenKind

_NAME_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_BODY = _NAME_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


def tokenize(text):
    """Tokenize ``text`` into a list of :class:`Token` ending with EOF."""
    tokens = []
    pos = 0
    line = 1
    line_start = 0
    length = len(text)

    def column():
        return pos - line_start + 1

    while pos < length:
        char = text[pos]
        # Whitespace ---------------------------------------------------------
        if char in " \t\r":
            pos += 1
            continue
        if char == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue
        # Comments: -- to end of line, /* ... */ ------------------------------
        if text.startswith("--", pos):
            newline = text.find("\n", pos)
            pos = length if newline < 0 else newline
            continue
        if text.startswith("/*", pos):
            end = text.find("*/", pos + 2)
            if end < 0:
                raise ParseError("unterminated /* comment", line, column())
            segment = text[pos : end + 2]
            line += segment.count("\n")
            if "\n" in segment:
                line_start = pos + segment.rfind("\n") + 1
            pos = end + 2
            continue
        # Strings -------------------------------------------------------------
        if char == "'":
            end = pos + 1
            chunks = []
            while True:
                if end >= length:
                    raise ParseError("unterminated string literal", line, column())
                if text[end] == "\\" and end + 1 < length:
                    chunks.append(text[end + 1])
                    end += 2
                    continue
                if text[end] == "'":
                    break
                if text[end] == "\n":
                    raise ParseError("newline in string literal", line, column())
                chunks.append(text[end])
                end += 1
            tokens.append(Token(TokenKind.STRING, "".join(chunks), line, column()))
            pos = end + 1
            continue
        # Positional references -----------------------------------------------
        if char == "$":
            end = pos + 1
            while end < length and text[end] in _DIGITS:
                end += 1
            if end == pos + 1:
                raise ParseError("expected digits after $", line, column())
            tokens.append(Token(TokenKind.DOLLAR, text[pos + 1 : end], line, column()))
            pos = end
            continue
        # Numbers ---------------------------------------------------------------
        if char in _DIGITS:
            end = pos
            seen_dot = False
            while end < length and (text[end] in _DIGITS or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # A dot not followed by a digit is a dereference, not a decimal.
                    if end + 1 >= length or text[end + 1] not in _DIGITS:
                        break
                    seen_dot = True
                end += 1
            literal = text[pos:end]
            kind = TokenKind.DOUBLE if seen_dot else TokenKind.INT
            tokens.append(Token(kind, literal, line, column()))
            pos = end
            continue
        # Names / keywords ------------------------------------------------------
        if char in _NAME_START:
            end = pos
            while end < length and text[end] in _NAME_BODY:
                end += 1
            tokens.append(Token(TokenKind.NAME, text[pos:end], line, column()))
            pos = end
            continue
        # Symbols ------------------------------------------------------------------
        for symbol in SYMBOLS:
            if text.startswith(symbol, pos):
                tokens.append(Token(TokenKind.SYMBOL, symbol, line, column()))
                pos += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {char!r}", line, column())

    tokens.append(Token(TokenKind.EOF, "", line, column()))
    return tokens
