"""Token kinds and the token record produced by the lexer."""

import enum


class TokenKind(enum.Enum):
    NAME = "name"            # identifiers and keywords (case-insensitive)
    INT = "int"
    DOUBLE = "double"
    STRING = "string"        # 'single-quoted'
    DOLLAR = "dollar"        # $0, $1 positional references
    SYMBOL = "symbol"        # punctuation and operators
    EOF = "eof"


# Keywords are matched case-insensitively against NAME tokens.
KEYWORDS = frozenset(
    {
        "load", "as", "using", "foreach", "generate", "filter", "by", "join",
        "group", "cogroup", "all", "distinct", "union", "order", "store",
        "into", "limit", "asc", "desc", "and", "or", "not", "is", "null",
        "flatten", "parallel", "split", "if",
    }
)

# Multi-character symbols first so the lexer can match greedily.
SYMBOLS = ("==", "!=", "<=", ">=", "::", "=", "(", ")", ",", ";", "<", ">",
           "+", "-", "*", "/", "%", ".", "{", "}", "#", ":")


class Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind, text, line, column):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def matches_keyword(self, word):
        return self.kind is TokenKind.NAME and self.text.lower() == word

    def __repr__(self):
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
