"""Recursive-descent parser for the Pig Latin dialect.

Grammar (informal):

    query     := statement* EOF
    statement := NAME '=' relation ';' | 'store' NAME 'into' STRING ';'
    relation  := load | foreach | filter | join | group | cogroup
               | distinct | union | order | limit
"""

from repro.common.errors import ParseError
from repro.piglatin import ast
from repro.piglatin.lexer import tokenize
from repro.piglatin.tokens import TokenKind

_TYPE_NAMES = {"int", "long", "double", "float", "chararray"}
_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}


def parse_query(text):
    """Parse a Pig Latin script into an :class:`ast.Query`."""
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    # Token helpers -------------------------------------------------------

    def _peek(self, offset=0):
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self):
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _error(self, message, token=None):
        token = token or self._peek()
        raise ParseError(message, token.line, token.column)

    def _expect_symbol(self, symbol):
        token = self._advance()
        if token.kind is not TokenKind.SYMBOL or token.text != symbol:
            self._error(f"expected {symbol!r}, found {token.text!r}", token)
        return token

    def _expect_keyword(self, word):
        token = self._advance()
        if not token.matches_keyword(word):
            self._error(f"expected {word.upper()}, found {token.text!r}", token)
        return token

    def _expect_name(self):
        token = self._advance()
        if token.kind is not TokenKind.NAME:
            self._error(f"expected a name, found {token.text!r}", token)
        return token.text

    def _expect_string(self):
        token = self._advance()
        if token.kind is not TokenKind.STRING:
            self._error(f"expected a quoted string, found {token.text!r}", token)
        return token.text

    def _expect_int(self):
        token = self._advance()
        if token.kind is not TokenKind.INT:
            self._error(f"expected an integer, found {token.text!r}", token)
        return int(token.text)

    def _at_keyword(self, word):
        return self._peek().matches_keyword(word)

    def _at_symbol(self, symbol):
        token = self._peek()
        return token.kind is TokenKind.SYMBOL and token.text == symbol

    def _eat_keyword(self, word):
        if self._at_keyword(word):
            self._advance()
            return True
        return False

    def _eat_symbol(self, symbol):
        if self._at_symbol(symbol):
            self._advance()
            return True
        return False

    # Statements ---------------------------------------------------------------

    def parse_query(self):
        statements = []
        while self._peek().kind is not TokenKind.EOF:
            statements.append(self._statement())
        if not statements:
            self._error("empty query")
        return ast.Query(statements)

    def _statement(self):
        if self._at_keyword("store"):
            self._advance()
            alias = self._expect_name()
            self._expect_keyword("into")
            path = self._expect_string()
            self._expect_symbol(";")
            return ast.StoreStmt(alias, path)
        if self._at_keyword("split"):
            return self._split()
        alias = self._expect_name()
        self._expect_symbol("=")
        relation = self._relation(alias)
        self._expect_symbol(";")
        return relation

    def _relation(self, alias):
        token = self._peek()
        if token.kind is not TokenKind.NAME:
            self._error(f"expected a relational operator, found {token.text!r}")
        keyword = token.text.lower()
        handlers = {
            "load": self._load,
            "foreach": self._foreach,
            "filter": self._filter,
            "join": self._join,
            "group": self._group,
            "cogroup": self._cogroup,
            "distinct": self._distinct,
            "union": self._union,
            "order": self._order,
            "limit": self._limit,
        }
        handler = handlers.get(keyword)
        if handler is None:
            self._error(f"unknown relational operator {token.text!r}")
        self._advance()
        return handler(alias)

    def _load(self, alias):
        path = self._expect_string()
        if self._eat_keyword("using"):
            # Loader functions are accepted and ignored (we have one codec);
            # e.g. `using PigStorage('\t')`.
            self._expect_name()
            if self._eat_symbol("("):
                while not self._eat_symbol(")"):
                    self._advance()
        fields = []
        if self._eat_keyword("as"):
            self._expect_symbol("(")
            while True:
                name = self._expect_name()
                typename = None
                if self._eat_symbol(":"):
                    typename = self._expect_name().lower()
                fields.append(ast.FieldSpec(name, typename))
                if not self._eat_symbol(","):
                    break
            self._expect_symbol(")")
        return ast.LoadStmt(alias, path, fields)

    def _foreach(self, alias):
        input_alias = self._expect_name()
        if self._at_symbol("{"):
            return self._nested_foreach(alias, input_alias)
        self._expect_keyword("generate")
        items = [self._gen_item()]
        while self._eat_symbol(","):
            items.append(self._gen_item())
        return ast.ForEachStmt(alias, input_alias, items)

    def _nested_foreach(self, alias, input_alias):
        """FOREACH alias { inner*; GENERATE items; }"""
        self._expect_symbol("{")
        inner = []
        while not self._at_keyword("generate"):
            inner.append(self._inner_statement())
        self._expect_keyword("generate")
        items = [self._gen_item()]
        while self._eat_symbol(","):
            items.append(self._gen_item())
        self._expect_symbol(";")
        self._expect_symbol("}")
        return ast.ForEachStmt(alias, input_alias, items, inner=inner)

    def _inner_statement(self):
        inner_alias = self._expect_name()
        self._expect_symbol("=")
        if self._at_keyword("filter"):
            self._advance()
            source = self._expect_name()
            self._expect_keyword("by")
            condition = self._expression()
            statement = ast.InnerFilter(inner_alias, source, condition)
        elif self._at_keyword("distinct"):
            self._advance()
            statement = ast.InnerDistinct(inner_alias, self._expect_name())
        else:
            name = self._expect_name()
            if self._eat_symbol("."):
                expr = ast.Deref(name, self._expect_name())
            else:
                expr = ast.FieldRef(name)
            statement = ast.InnerAssign(inner_alias, expr)
        self._expect_symbol(";")
        return statement

    def _gen_item(self):
        flatten = False
        if self._at_keyword("flatten"):
            self._advance()
            self._expect_symbol("(")
            expr = self._expression()
            self._expect_symbol(")")
            flatten = True
        else:
            expr = self._expression()
        item_alias = None
        if self._eat_keyword("as"):
            item_alias = self._expect_name()
        return ast.GenItem(expr, item_alias, flatten)

    def _filter(self, alias):
        input_alias = self._expect_name()
        self._expect_keyword("by")
        condition = self._expression()
        return ast.FilterStmt(alias, input_alias, condition)

    def _join_style_inputs(self):
        inputs = []
        while True:
            name = self._expect_name()
            self._expect_keyword("by")
            keys = self._key_list()
            inputs.append((name, keys))
            if not self._eat_symbol(","):
                break
        return inputs

    def _key_list(self):
        if self._eat_symbol("("):
            keys = [self._expression()]
            while self._eat_symbol(","):
                keys.append(self._expression())
            self._expect_symbol(")")
            return keys
        return [self._expression()]

    def _join(self, alias):
        inputs = self._join_style_inputs()
        if len(inputs) != 2:
            self._error("JOIN takes exactly two inputs in this dialect")
        parallel = self._parallel_clause()
        return ast.JoinStmt(alias, inputs, parallel)

    def _group(self, alias):
        input_alias = self._expect_name()
        if self._eat_keyword("all"):
            keys = None
        else:
            self._expect_keyword("by")
            keys = self._key_list()
        parallel = self._parallel_clause()
        return ast.GroupStmt(alias, input_alias, keys, parallel)

    def _cogroup(self, alias):
        inputs = self._join_style_inputs()
        if len(inputs) < 2:
            self._error("COGROUP needs at least two inputs")
        parallel = self._parallel_clause()
        return ast.CoGroupStmt(alias, inputs, parallel)

    def _distinct(self, alias):
        input_alias = self._expect_name()
        parallel = self._parallel_clause()
        return ast.DistinctStmt(alias, input_alias, parallel)

    def _union(self, alias):
        names = [self._expect_name()]
        while self._eat_symbol(","):
            names.append(self._expect_name())
        if len(names) < 2:
            self._error("UNION needs at least two inputs")
        return ast.UnionStmt(alias, names)

    def _order(self, alias):
        input_alias = self._expect_name()
        self._expect_keyword("by")
        keys = []
        while True:
            field = self._order_key()
            direction = "asc"
            if self._eat_keyword("asc"):
                direction = "asc"
            elif self._eat_keyword("desc"):
                direction = "desc"
            keys.append((field, direction))
            if not self._eat_symbol(","):
                break
        parallel = self._parallel_clause()
        return ast.OrderStmt(alias, input_alias, keys, parallel)

    def _order_key(self):
        token = self._peek()
        if token.kind is TokenKind.DOLLAR:
            self._advance()
            return ast.PositionalRef(int(token.text))
        return ast.FieldRef(self._qualified_name())

    def _limit(self, alias):
        input_alias = self._expect_name()
        count = self._expect_int()
        return ast.LimitStmt(alias, input_alias, count)

    def _split(self):
        self._expect_keyword("split")
        input_alias = self._expect_name()
        self._expect_keyword("into")
        branches = []
        while True:
            branch_alias = self._expect_name()
            self._expect_keyword("if")
            condition = self._expression()
            branches.append((branch_alias, condition))
            if not self._eat_symbol(","):
                break
        if len(branches) < 2:
            self._error("SPLIT needs at least two branches")
        self._expect_symbol(";")
        return ast.SplitStmt(input_alias, branches)

    def _parallel_clause(self):
        if self._eat_keyword("parallel"):
            return self._expect_int()
        return None

    # Expressions ------------------------------------------------------------------

    def _expression(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self._at_keyword("or"):
            self._advance()
            left = ast.BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self._at_keyword("and"):
            self._advance()
            left = ast.BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self):
        if self._at_keyword("not"):
            self._advance()
            return ast.UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self):
        left = self._additive()
        token = self._peek()
        if token.kind is TokenKind.SYMBOL and token.text in _COMPARISONS:
            self._advance()
            return ast.BinaryOp(token.text, left, self._additive())
        if self._at_keyword("is"):
            self._advance()
            negated = self._eat_keyword("not")
            self._expect_keyword("null")
            return ast.IsNull(left, negated)
        return left

    def _additive(self):
        left = self._multiplicative()
        while True:
            if self._at_symbol("+"):
                self._advance()
                left = ast.BinaryOp("+", left, self._multiplicative())
            elif self._at_symbol("-"):
                self._advance()
                left = ast.BinaryOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self):
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.SYMBOL and token.text in ("*", "/", "%"):
                self._advance()
                left = ast.BinaryOp(token.text, left, self._unary())
            else:
                return left

    def _unary(self):
        if self._at_symbol("-"):
            self._advance()
            return ast.UnaryOp("neg", self._unary())
        # A parenthesized type name is a cast: (int) x
        if self._at_symbol("(") and self._peek(1).kind is TokenKind.NAME:
            next_text = self._peek(1).text.lower()
            closes = (
                self._peek(2).kind is TokenKind.SYMBOL and self._peek(2).text == ")"
            )
            if next_text in _TYPE_NAMES and closes:
                self._advance()
                self._advance()
                self._advance()
                return ast.Cast(next_text, self._unary())
        return self._primary()

    def _primary(self):
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.Literal(int(token.text))
        if token.kind is TokenKind.DOUBLE:
            self._advance()
            return ast.Literal(float(token.text))
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(token.text)
        if token.kind is TokenKind.DOLLAR:
            self._advance()
            return ast.PositionalRef(int(token.text))
        if self._at_symbol("("):
            self._advance()
            expr = self._expression()
            self._expect_symbol(")")
            return expr
        if token.kind is TokenKind.NAME:
            return self._name_expression()
        self._error(f"unexpected token {token.text!r} in expression")

    def _qualified_name(self):
        """NAME ('::' NAME)* — alias-qualified field names."""
        name = self._expect_name()
        while self._at_symbol("::"):
            self._advance()
            name = f"{name}::{self._expect_name()}"
        return name

    def _name_expression(self):
        name = self._qualified_name()
        # Function call?
        if self._at_symbol("("):
            self._advance()
            args = []
            if not self._at_symbol(")"):
                args.append(self._expression())
                while self._eat_symbol(","):
                    args.append(self._expression())
            self._expect_symbol(")")
            return ast.FuncCall(name, args)
        # Bag dereference: C.est_revenue
        if self._at_symbol("."):
            self._advance()
            field = self._expect_name()
            return ast.Deref(name, field)
        return ast.FieldRef(name)
