"""Deterministic random number generation.

Data generators must produce identical datasets across runs and platforms,
so they draw from :class:`DeterministicRng`, a thin wrapper over
:class:`random.Random` that also supports stable substreams: the generator
for ``users`` data does not perturb the stream for ``page_views``.
"""

import random
import zlib


class DeterministicRng:
    """Seeded RNG with named, independent substreams.

    >>> rng = DeterministicRng(7)
    >>> a = rng.substream("users").randint(0, 100)
    >>> b = DeterministicRng(7).substream("users").randint(0, 100)
    >>> a == b
    True
    """

    def __init__(self, seed):
        self._seed = int(seed)
        self._random = random.Random(self._seed)

    @property
    def seed(self):
        return self._seed

    def substream(self, name):
        """Return a new :class:`DeterministicRng` derived from ``name``.

        The derivation hashes the name with CRC32 so substreams are stable
        regardless of the order they are requested in.
        """
        derived = (self._seed * 1_000_003 + zlib.crc32(name.encode("utf-8"))) & 0x7FFFFFFF
        return DeterministicRng(derived)

    # Delegation to the underlying random.Random -------------------------

    def randint(self, low, high):
        return self._random.randint(low, high)

    def random(self):
        return self._random.random()

    def uniform(self, low, high):
        return self._random.uniform(low, high)

    def choice(self, seq):
        return self._random.choice(seq)

    def choices(self, population, weights=None, k=1):
        return self._random.choices(population, weights=weights, k=k)

    def shuffle(self, seq):
        self._random.shuffle(seq)

    def sample(self, population, k):
        return self._random.sample(population, k)

    def rand_string(self, length, alphabet="abcdefghijklmnopqrstuvwxyz"):
        """Return a random string of ``length`` characters from ``alphabet``."""
        return "".join(self._random.choice(alphabet) for _ in range(length))
