"""Exception hierarchy for the ReStore reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subclasses mirror the subsystem boundaries.
"""


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ParseError(ReproError):
    """Raised when a Pig Latin query cannot be tokenized or parsed.

    Carries the (1-based) source position when available.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class PlanError(ReproError):
    """Raised for malformed logical or physical plans (bad wiring, schema)."""


class CompilationError(ReproError):
    """Raised when a plan cannot be compiled into MapReduce jobs."""


class DataError(ReproError):
    """Raised for schema/type violations in rows, bags, or codecs."""


class DfsError(ReproError):
    """Raised by the simulated distributed file system (missing file, ...)."""


class ExecutionError(ReproError):
    """Raised when a MapReduce job fails at runtime."""


class RepositoryError(ReproError):
    """Raised by the ReStore repository (duplicate ids, unknown entries)."""
