"""Shared utilities: errors, deterministic RNG, units, and a logical clock.

Everything in :mod:`repro` that needs randomness or time goes through this
package so that experiments are reproducible bit-for-bit.
"""

from repro.common.clock import LogicalClock
from repro.common.errors import (
    CompilationError,
    DataError,
    DfsError,
    ExecutionError,
    ParseError,
    PlanError,
    ReproError,
    RepositoryError,
)
from repro.common.rng import DeterministicRng
from repro.common.units import format_bytes, GB, KB, MB

__all__ = [
    "CompilationError",
    "DataError",
    "DeterministicRng",
    "DfsError",
    "ExecutionError",
    "format_bytes",
    "GB",
    "KB",
    "LogicalClock",
    "MB",
    "ParseError",
    "PlanError",
    "ReproError",
    "RepositoryError",
]
