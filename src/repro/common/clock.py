"""A logical clock for eviction windows and repository statistics.

The paper's eviction Rule 3 ("evict a job if it has not been reused within a
window of time") needs a notion of time. Wall-clock time would make tests and
benchmarks nondeterministic, so ReStore advances a logical clock: one tick
per workflow submitted to the system.
"""


class LogicalClock:
    """Monotonically increasing integer clock.

    >>> clock = LogicalClock()
    >>> clock.now()
    0
    >>> clock.tick()
    1
    """

    def __init__(self, start=0):
        if start < 0:
            raise ValueError(f"clock must start at a non-negative tick, got {start}")
        self._now = int(start)

    def now(self):
        """Return the current tick without advancing."""
        return self._now

    def tick(self, ticks=1):
        """Advance the clock by ``ticks`` and return the new time."""
        if ticks < 1:
            raise ValueError(f"ticks must be >= 1, got {ticks}")
        self._now += ticks
        return self._now
