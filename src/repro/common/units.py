"""Byte-size units and formatting helpers."""

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def format_bytes(num_bytes):
    """Render a byte count the way the paper's Table 1 does (B/KB/MB/GB).

    >>> format_bytes(27)
    '27 B'
    >>> format_bytes(int(1.6 * GB))
    '1.6 GB'
    """
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    if num_bytes < KB:
        return f"{num_bytes} B"
    for unit, size in (("GB", GB), ("MB", MB), ("KB", KB)):
        if num_bytes >= size:
            return f"{num_bytes / size:.1f} {unit}"
    raise AssertionError("unreachable")


def format_minutes(seconds):
    """Render simulated seconds as minutes with one decimal (paper's axis)."""
    return f"{seconds / 60.0:.1f} min"
