"""Datanodes: per-node block inventories with byte accounting."""


class DataNode:
    """A storage node. Tracks which blocks it holds and its used bytes."""

    __slots__ = ("node_id", "_blocks", "used_bytes")

    def __init__(self, node_id):
        self.node_id = node_id
        self._blocks = {}
        self.used_bytes = 0

    def add_block(self, block):
        if block.block_id in self._blocks:
            raise ValueError(f"datanode {self.node_id} already holds block {block.block_id}")
        self._blocks[block.block_id] = block
        self.used_bytes += block.num_bytes

    def remove_block(self, block_id):
        block = self._blocks.pop(block_id, None)
        if block is not None:
            self.used_bytes -= block.num_bytes

    def holds(self, block_id):
        return block_id in self._blocks

    @property
    def num_blocks(self):
        return len(self._blocks)
