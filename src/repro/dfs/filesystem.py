"""The DFS facade: namespace, block placement, replication, versions."""

import zlib

from repro.common.errors import DfsError
from repro.data.codec import encoded_size
from repro.dfs.blocks import Block
from repro.dfs.datanode import DataNode

DEFAULT_BLOCK_SIZE = 64 * 1024
DEFAULT_REPLICATION = 3
DEFAULT_NUM_DATANODES = 14


class FileStatus:
    """Namenode metadata for one file."""

    __slots__ = ("path", "size_bytes", "num_lines", "version", "created_tick", "modified_tick")

    def __init__(self, path, size_bytes, num_lines, version, created_tick, modified_tick):
        self.path = path
        self.size_bytes = size_bytes
        self.num_lines = num_lines
        self.version = version
        self.created_tick = created_tick
        self.modified_tick = modified_tick

    def __repr__(self):
        return (
            f"FileStatus(path={self.path!r}, bytes={self.size_bytes}, "
            f"lines={self.num_lines}, version={self.version})"
        )


class _FileEntry:
    __slots__ = ("status", "lines", "blocks")

    def __init__(self, status, lines, blocks):
        self.status = status
        self.lines = lines
        self.blocks = blocks


class DistributedFileSystem:
    """Simulated HDFS instance.

    ``clock`` (a :class:`repro.common.LogicalClock`) stamps creation and
    modification ticks; without one, ticks stay at zero and only versions
    distinguish rewrites.
    """

    def __init__(
        self,
        block_size=DEFAULT_BLOCK_SIZE,
        replication=DEFAULT_REPLICATION,
        num_datanodes=DEFAULT_NUM_DATANODES,
        clock=None,
    ):
        if block_size < 1:
            raise DfsError(f"block size must be positive, got {block_size}")
        if not 1 <= replication <= num_datanodes:
            raise DfsError(
                f"replication {replication} must be between 1 and #datanodes {num_datanodes}"
            )
        self.block_size = block_size
        self.replication = replication
        self.datanodes = [DataNode(node_id) for node_id in range(num_datanodes)]
        self._files = {}
        # Last version of every deleted path: a re-created file must keep
        # counting from there, or a delete + re-create would reset to v1
        # and collide with versions recorded before the delete (stale
        # repository entries would keep matching — Rule 4 would miss a
        # "deleted AND re-created" input).
        self._deleted_versions = {}
        self._clock = clock
        self._next_block_id = 0

    # Namespace operations -------------------------------------------------

    def exists(self, path):
        return path in self._files

    def status(self, path):
        return self._entry(path).status

    def list_files(self, prefix=""):
        """Paths under ``prefix`` in sorted order."""
        return sorted(path for path in self._files if path.startswith(prefix))

    def delete(self, path):
        entry = self._files.pop(path, None)
        if entry is None:
            raise DfsError(f"cannot delete {path!r}: no such file")
        self._deleted_versions[path] = entry.status.version
        for block in entry.blocks:
            for node_id in block.replicas:
                self.datanodes[node_id].remove_block(block.block_id)

    def delete_if_exists(self, path):
        if path in self._files:
            self.delete(path)

    # Read/write ------------------------------------------------------------

    def write_lines(self, path, lines, overwrite=False):
        """Create (or overwrite) ``path`` with ``lines``; returns FileStatus.

        Versions are *content-stable*: overwriting a file with different
        content bumps the version and modification tick (what eviction
        Rule 4 observes); rewriting identical content leaves both alone —
        the dataset was not modified. Re-creating a previously *deleted*
        path continues its old version sequence (the deletion itself was
        a modification, and the old content is gone so stability cannot
        be checked) — versions recorded before the delete never match
        the re-created file.

        An overwrite is write-new-then-swap: the replacement's blocks
        are placed *before* the old entry leaves the namespace, and the
        single ``self._files[path] = ...`` assignment is the commit
        point — a failure while placing (the crash window the
        persistence layer's manifest swap relies on, see
        docs/PERSISTENCE.md) leaves the old file fully readable.
        """
        if not path or not path.startswith("/"):
            raise DfsError(f"paths must be absolute, got {path!r}")
        lines = list(lines)
        previous = self._files.get(path)
        if previous is not None and not overwrite:
            raise DfsError(f"{path!r} already exists (pass overwrite=True to replace)")
        if previous is not None and previous.lines == lines:
            return previous.status
        if previous is not None:
            version = previous.status.version + 1
            created = previous.status.created_tick
        else:
            version = self._deleted_versions.get(path, 0) + 1
            created = self._now()
        blocks = self._place_blocks(path, lines)
        size_bytes = sum(block.num_bytes for block in blocks)
        status = FileStatus(path, size_bytes, len(lines), version, created, self._now())
        if previous is not None:
            # Swap: retire the replaced blocks without delete()'s
            # tombstone — the path was never observably deleted, the
            # version carries over from `previous` directly.
            for block in previous.blocks:
                for node_id in block.replicas:
                    self.datanodes[node_id].remove_block(block.block_id)
        else:
            self._deleted_versions.pop(path, None)
        self._files[path] = _FileEntry(status, lines, blocks)
        return status

    def append_lines(self, path, lines):
        """Append ``lines`` to ``path`` (creating it when absent); returns
        FileStatus.

        The accounting mirrors :meth:`write_lines`: appending content is a
        modification, so the version and modification tick advance; an
        empty append touches nothing. Unlike an overwrite, only the new
        lines are placed into (fresh tail) blocks — the existing blocks
        and their replicas are untouched, so the cost is O(appended), not
        O(file). This is what makes an append-only repository log cheaper
        than rewriting the snapshot (see :mod:`repro.restore.wal`).
        """
        lines = list(lines)
        previous = self._files.get(path)
        if previous is None:
            return self.write_lines(path, lines)
        if not lines:
            return previous.status
        new_blocks = self._place_blocks(
            path, lines, base_index=len(previous.blocks),
            start_line=len(previous.lines))
        old = previous.status
        status = FileStatus(
            path,
            old.size_bytes + sum(block.num_bytes for block in new_blocks),
            old.num_lines + len(lines),
            old.version + 1,
            old.created_tick,
            self._now(),
        )
        # Extend in place: the read paths hand out copies/slices, so
        # nobody aliases these lists, and copying them here would make
        # every append O(file) — exactly what this method exists to avoid.
        previous.lines.extend(lines)
        previous.blocks.extend(new_blocks)
        previous.status = status
        return status

    def read_lines(self, path):
        """All lines of ``path`` (the whole-file read used by Load)."""
        return list(self._entry(path).lines)

    def read_block_lines(self, path, block_index):
        """Lines of one block — what a single map task sees."""
        entry = self._entry(path)
        try:
            block = entry.blocks[block_index]
        except IndexError as exc:
            raise DfsError(
                f"{path!r} has {len(entry.blocks)} blocks, no index {block_index}"
            ) from exc
        return entry.lines[block.start_line : block.end_line]

    def blocks_of(self, path):
        return list(self._entry(path).blocks)

    # Accounting ------------------------------------------------------------

    def file_size(self, path):
        """Logical size in bytes (before replication)."""
        return self._entry(path).status.size_bytes

    def replicated_size(self, path):
        """Physical bytes across all replicas."""
        return self.file_size(path) * self.replication

    def total_used_bytes(self):
        """Physical bytes used across all datanodes (replication included)."""
        return sum(node.used_bytes for node in self.datanodes)

    # Internals ---------------------------------------------------------------

    def _entry(self, path):
        try:
            return self._files[path]
        except KeyError as exc:
            raise DfsError(f"no such file: {path!r}") from exc

    def _now(self):
        return self._clock.now() if self._clock is not None else 0

    def _place_blocks(self, path, lines, base_index=0, start_line=0):
        """Chop ``lines`` into blocks and place replicas round-robin.

        Placement starts at a path-derived offset so different files spread
        across different datanodes, like HDFS's randomized placement but
        deterministic. ``base_index``/``start_line`` shift the block index
        and line coordinates when the new blocks extend an existing file
        (:meth:`append_lines`): the replica rotation simply continues from
        where the last block left off (the base offset depends only on the
        path, so it needs no carrying over).
        """
        blocks = []
        start = 0
        current_bytes = 0
        base = zlib.crc32(path.encode("utf-8")) % len(self.datanodes)
        line_sizes = [encoded_size(line) for line in lines]
        for position, line_size in enumerate(line_sizes):
            current_bytes += line_size
            if current_bytes >= self.block_size:
                blocks.append(self._make_block(
                    path, base_index + len(blocks), start_line + start,
                    start_line + position + 1, current_bytes, base))
                start = position + 1
                current_bytes = 0
        if current_bytes > 0 or (not blocks and base_index == 0):
            blocks.append(self._make_block(
                path, base_index + len(blocks), start_line + start,
                start_line + len(lines), current_bytes, base))
        return blocks

    def _make_block(self, path, index, start_line, end_line, num_bytes, base):
        replicas = [
            (base + index + offset) % len(self.datanodes) for offset in range(self.replication)
        ]
        block = Block(self._next_block_id, path, index, start_line, end_line, num_bytes, replicas)
        self._next_block_id += 1
        for node_id in replicas:
            self.datanodes[node_id].add_block(block)
        return block
