"""Block descriptors: contiguous line ranges of a file with exact sizes."""


class Block:
    """One block of a DFS file.

    ``start_line``/``end_line`` delimit the rows in the block (end
    exclusive); ``num_bytes`` is the exact on-disk size of those rows.
    ``replicas`` lists the datanode ids holding a copy.
    """

    __slots__ = ("block_id", "path", "index", "start_line", "end_line", "num_bytes", "replicas")

    def __init__(self, block_id, path, index, start_line, end_line, num_bytes, replicas):
        self.block_id = block_id
        self.path = path
        self.index = index
        self.start_line = start_line
        self.end_line = end_line
        self.num_bytes = num_bytes
        self.replicas = tuple(replicas)

    @property
    def num_lines(self):
        return self.end_line - self.start_line

    def __repr__(self):
        return (
            f"Block(id={self.block_id}, path={self.path!r}, index={self.index}, "
            f"lines=[{self.start_line},{self.end_line}), bytes={self.num_bytes})"
        )
