"""Simulated HDFS: a namenode namespace over block-granular datanodes.

The simulation is faithful where ReStore's behaviour depends on it:

* files are split into fixed-size blocks (input splits for map tasks),
* every block is replicated ``replication`` times across datanodes, so a
  write costs ``replication x`` the logical bytes (the paper's Store
  overhead comes from exactly this),
* files carry a version and modification tick — eviction Rule 4 ("evict if
  an input was deleted or modified") checks these.

File *content* (text lines) is held by the namespace for simplicity; byte
accounting per datanode is still exact.
"""

from repro.dfs.filesystem import DistributedFileSystem, FileStatus

__all__ = ["DistributedFileSystem", "FileStatus"]
