"""Ordering helpers for shuffle keys and ORDER BY.

Pig orders nulls first, then values by type. Python 3 refuses to compare
mixed types, so shuffle keys are wrapped in a total-order surrogate:
``(type_rank, value)`` per scalar, applied element-wise to composite keys.
"""

_RANK_NULL = 0
_RANK_NUMBER = 1
_RANK_STRING = 2
_RANK_TUPLE = 3


def _scalar_sort_key(value):
    if value is None:
        return (_RANK_NULL, 0)
    if isinstance(value, (int, float)):
        return (_RANK_NUMBER, value)
    if isinstance(value, str):
        return (_RANK_STRING, value)
    raise TypeError(f"cannot order value of type {type(value).__name__}: {value!r}")


def key_sort_key(key):
    """Total-order sort key for a shuffle/order key (scalar or tuple).

    >>> sorted([3, None, 'a', 1.5], key=key_sort_key)
    [None, 1.5, 3, 'a']
    """
    if isinstance(key, tuple):
        return (_RANK_TUPLE, tuple(_scalar_sort_key(item) for item in key))
    return _scalar_sort_key(key)
