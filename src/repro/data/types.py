"""Data types for fields, plus parsing/rendering/coercion.

The type system is the small fragment of Pig's that PigMix needs:

* ``INT`` — Python int
* ``DOUBLE`` — Python float
* ``CHARARRAY`` — Python str
* ``BAG`` — a tuple of rows (each row itself a tuple); produced by Group,
  CoGroup, and consumed by aggregate functions.

``None`` is a valid value of any type (Pig nulls).
"""

import enum

from repro.common.errors import DataError


class DataType(enum.Enum):
    INT = "int"
    DOUBLE = "double"
    CHARARRAY = "chararray"
    BAG = "bag"

    def __repr__(self):
        return f"DataType.{self.name}"


_NULL_TOKEN = ""


def parse_value(text, dtype):
    """Parse ``text`` (a serialized field) into a Python value of ``dtype``.

    The empty string denotes null for scalar types.
    """
    if dtype is DataType.BAG:
        raise DataError("bags are parsed by the codec, not parse_value")
    if text == _NULL_TOKEN:
        return None
    if dtype is DataType.INT:
        try:
            return int(text)
        except ValueError as exc:
            raise DataError(f"bad int literal {text!r}") from exc
    if dtype is DataType.DOUBLE:
        try:
            return float(text)
        except ValueError as exc:
            raise DataError(f"bad double literal {text!r}") from exc
    if dtype is DataType.CHARARRAY:
        return text
    raise DataError(f"unknown data type {dtype!r}")


def render_value(value, dtype):
    """Render a Python value as its serialized text (inverse of parse)."""
    if value is None:
        return _NULL_TOKEN
    if dtype is DataType.INT:
        return str(int(value))
    if dtype is DataType.DOUBLE:
        # repr round-trips floats exactly; ints-as-doubles stay readable.
        return repr(float(value))
    if dtype is DataType.CHARARRAY:
        return str(value)
    raise DataError(f"cannot render type {dtype!r} with render_value")


def coerce_value(value, dtype):
    """Coerce ``value`` to ``dtype``; used by explicit casts and arithmetic.

    Follows Pig semantics: null coerces to null; failed coercions raise.
    """
    if value is None:
        return None
    if dtype is DataType.INT:
        try:
            return int(value)
        except (TypeError, ValueError) as exc:
            raise DataError(f"cannot cast {value!r} to int") from exc
    if dtype is DataType.DOUBLE:
        try:
            return float(value)
        except (TypeError, ValueError) as exc:
            raise DataError(f"cannot cast {value!r} to double") from exc
    if dtype is DataType.CHARARRAY:
        return str(value)
    raise DataError(f"cannot cast to {dtype!r}")


def infer_type(value):
    """Infer the :class:`DataType` of a Python value (for literals)."""
    if isinstance(value, bool):
        raise DataError("booleans are not a field type in this dialect")
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.DOUBLE
    if isinstance(value, str):
        return DataType.CHARARRAY
    if isinstance(value, tuple):
        return DataType.BAG
    raise DataError(f"cannot infer type of {value!r}")


def numeric_result_type(left, right):
    """Type of an arithmetic result: DOUBLE if either side is DOUBLE."""
    if DataType.DOUBLE in (left, right):
        return DataType.DOUBLE
    return DataType.INT
