"""Text codec for rows: a TSV dialect with full escaping and exact sizes.

Files in the simulated DFS hold lines produced by :func:`encode_row`. The
format is tab-separated scalars; bag fields are rendered as
``{(f|f|f),(f|f|f)}``. All structural characters occurring inside values are
backslash-escaped, so arbitrary strings round-trip (property-tested).

Byte accounting: the cost model charges for ``len(line.encode()) + 1`` per
row (the newline), mirroring what Hadoop's TextOutputFormat would write.
"""

from repro.common.errors import DataError
from repro.data.types import DataType, parse_value, render_value

_ESCAPES = {
    "\\": "\\\\",
    "\t": "\\t",
    "\n": "\\n",
    "|": "\\p",
    ",": "\\c",
    "(": "\\l",
    ")": "\\r",
    "{": "\\a",
    "}": "\\z",
}
_UNESCAPES = {escaped[1]: raw for raw, escaped in _ESCAPES.items()}
_NEEDS_ESCAPE = set(_ESCAPES)


def _escape(text):
    if not _NEEDS_ESCAPE.intersection(text):
        return text
    return "".join(_ESCAPES.get(char, char) for char in text)


def _unescape(text):
    if "\\" not in text:
        return text
    out = []
    chars = iter(text)
    for char in chars:
        if char != "\\":
            out.append(char)
            continue
        try:
            marker = next(chars)
        except StopIteration as exc:
            raise DataError(f"dangling escape in {text!r}") from exc
        try:
            out.append(_UNESCAPES[marker])
        except KeyError as exc:
            raise DataError(f"unknown escape \\{marker} in {text!r}") from exc
    return "".join(out)


def _encode_bag(bag, element_schema):
    rows = []
    for row in bag:
        parts = [
            _escape(render_value(value, field.dtype))
            for value, field in zip(row, element_schema.fields)
        ]
        rows.append("(" + "|".join(parts) + ")")
    return "{" + ",".join(rows) + "}"


def _decode_bag(text, element_schema):
    if not (text.startswith("{") and text.endswith("}")):
        raise DataError(f"bad bag literal {text!r}")
    body = text[1:-1]
    if not body:
        return ()
    rows = []
    for chunk in body.split(","):
        if not (chunk.startswith("(") and chunk.endswith(")")):
            raise DataError(f"bad bag row {chunk!r}")
        raw_fields = chunk[1:-1].split("|")
        if len(raw_fields) != len(element_schema):
            raise DataError(
                f"bag row has {len(raw_fields)} fields, schema expects {len(element_schema)}"
            )
        rows.append(
            tuple(
                parse_value(_unescape(raw), field.dtype)
                for raw, field in zip(raw_fields, element_schema.fields)
            )
        )
    return tuple(rows)


def encode_row(row, schema):
    """Serialize ``row`` (a tuple) under ``schema`` to one text line."""
    if len(row) != len(schema):
        raise DataError(f"row has {len(row)} fields, schema expects {len(schema)}")
    parts = []
    for value, field in zip(row, schema.fields):
        if field.dtype is DataType.BAG:
            if value is None:
                parts.append("")
            else:
                parts.append(_encode_bag(value, field.element))
        else:
            parts.append(_escape(render_value(value, field.dtype)))
    return "\t".join(parts)


def decode_row(line, schema):
    """Parse one text line back into a row tuple under ``schema``."""
    raw_fields = line.split("\t")
    if len(raw_fields) != len(schema):
        raise DataError(
            f"line has {len(raw_fields)} fields, schema expects {len(schema)}: {line!r}"
        )
    values = []
    for raw, field in zip(raw_fields, schema.fields):
        if field.dtype is DataType.BAG:
            values.append(None if raw == "" else _decode_bag(raw, field.element))
        else:
            values.append(parse_value(_unescape(raw), field.dtype))
    return tuple(values)


def encoded_size(line):
    """Bytes this line occupies on (simulated) disk, newline included."""
    return len(line.encode("utf-8")) + 1
