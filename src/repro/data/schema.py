"""Schemas: ordered, named, typed field lists attached to plan operators.

Schema objects are immutable. Join/cogroup outputs disambiguate clashing
field names Pig-style with an ``alias::field`` prefix.
"""

from repro.common.errors import DataError
from repro.data.types import DataType


class Field:
    """A single named, typed column. ``element`` is the row schema of a BAG."""

    __slots__ = ("name", "dtype", "element")

    def __init__(self, name, dtype, element=None):
        if not name:
            raise DataError("field name must be non-empty")
        if dtype is DataType.BAG and element is not None and not isinstance(element, Schema):
            raise DataError("bag element schema must be a Schema")
        self.name = name
        self.dtype = dtype
        self.element = element

    @property
    def short_name(self):
        """Field name without any ``alias::`` disambiguation prefix."""
        return self.name.rsplit("::", 1)[-1]

    def renamed(self, name):
        return Field(name, self.dtype, self.element)

    def canonical(self):
        """Stable text form used in operator signatures."""
        if self.dtype is DataType.BAG and self.element is not None:
            return f"{self.name}:bag{{{self.element.canonical()}}}"
        return f"{self.name}:{self.dtype.value}"

    def __eq__(self, other):
        return (
            isinstance(other, Field)
            and self.name == other.name
            and self.dtype == other.dtype
            and self.element == other.element
        )

    def __hash__(self):
        return hash((self.name, self.dtype, self.element))

    def __repr__(self):
        return f"Field({self.canonical()})"


class Schema:
    """An immutable, ordered collection of :class:`Field` objects."""

    __slots__ = ("fields", "_index")

    def __init__(self, fields):
        fields = tuple(fields)
        names = [field.name for field in fields]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise DataError(f"duplicate field names in schema: {duplicates}")
        self.fields = fields
        self._index = {field.name: pos for pos, field in enumerate(fields)}
        # Unambiguous short names resolve too (Pig lets you say `name`
        # instead of `users::name` when only one field matches).
        short_counts = {}
        for field in fields:
            short_counts[field.short_name] = short_counts.get(field.short_name, 0) + 1
        for pos, field in enumerate(fields):
            short = field.short_name
            if short not in self._index and short_counts[short] == 1:
                self._index[short] = pos

    def __len__(self):
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __eq__(self, other):
        return isinstance(other, Schema) and self.fields == other.fields

    def __hash__(self):
        return hash(self.fields)

    def __repr__(self):
        return f"Schema({self.canonical()})"

    def canonical(self):
        """Stable text form used in operator signatures."""
        return ", ".join(field.canonical() for field in self.fields)

    @property
    def names(self):
        return tuple(field.name for field in self.fields)

    def field_at(self, position):
        try:
            return self.fields[position]
        except IndexError as exc:
            raise DataError(
                f"position ${position} out of range for schema with {len(self.fields)} fields"
            ) from exc

    def position_of(self, name):
        """Resolve a (possibly short) field name to a position."""
        if name in self._index:
            return self._index[name]
        matches = [pos for pos, field in enumerate(self.fields) if field.short_name == name]
        if len(matches) > 1:
            raise DataError(f"ambiguous field name {name!r}; qualify it with an alias")
        raise DataError(f"unknown field {name!r}; schema has {list(self.names)}")

    def field(self, name):
        return self.fields[self.position_of(name)]

    def project(self, positions):
        """Schema of a positional projection."""
        return Schema(self.field_at(pos) for pos in positions)

    def prefixed(self, alias):
        """Schema with every field renamed to ``alias::short_name``."""
        return Schema(field.renamed(f"{alias}::{field.short_name}") for field in self.fields)

    @staticmethod
    def join(left, right, left_alias, right_alias):
        """Schema of a join output: left fields then right fields.

        Names clash across join inputs in general, so both sides are
        disambiguated with their alias, matching Pig's ``alias::field``.
        """
        return Schema(
            tuple(left.prefixed(left_alias).fields) + tuple(right.prefixed(right_alias).fields)
        )
