"""Tuple/schema data model shared by the dataflow and MapReduce layers.

Rows are plain Python tuples for speed; schemas are carried by operators,
not by rows. Bags (the result of grouping) are tuples of rows. The codec
serializes rows to a TSV-like text format with exact byte accounting, which
is what the simulated DFS stores and what the cost model charges for.
"""

from repro.data.codec import decode_row, encode_row, encoded_size
from repro.data.comparators import key_sort_key
from repro.data.schema import Field, Schema
from repro.data.types import DataType, coerce_value, parse_value, render_value

__all__ = [
    "coerce_value",
    "DataType",
    "decode_row",
    "encode_row",
    "encoded_size",
    "Field",
    "key_sort_key",
    "parse_value",
    "render_value",
    "Schema",
]
