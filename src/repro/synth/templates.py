"""Query templates QP and QF from Section 7.5.

QP projects the first ``k`` string fields before a group/count — varying
``k`` varies the fraction of the input the Project's stored sub-job
output represents (~18% for one field to ~74-85% for five).

QF filters with an equality predicate on one of field6..field12 — the
field's cardinality sets the selected fraction (Table 2).
"""

from repro.synth.datagen import FIELD_SPECS, SYNTH_SCHEMA

#: QP is swept over 1..5 projected fields.
QP_MAX_FIELDS = 5

#: QF is swept over these fields (one per Table 2 row).
QF_FIELDS = [name for name, _, _ in FIELD_SPECS]

_AS_CLAUSE = "(" + ", ".join(
    f"{field.name}:{field.dtype.value}" for field in SYNTH_SCHEMA.fields
) + ")"


def qp(num_fields, data_path="/data/synth", out_path="/out/qp"):
    """Query template QP with ``num_fields`` projected fields."""
    if not 1 <= num_fields <= QP_MAX_FIELDS:
        raise ValueError(f"QP projects 1..{QP_MAX_FIELDS} fields, got {num_fields}")
    fields = ", ".join(f"field{i}" for i in range(1, num_fields + 1))
    keys = fields if num_fields == 1 else f"({fields})"
    return f"""
A = load '{data_path}' as {_AS_CLAUSE};
B = foreach A generate {fields};
C = group B by {keys};
D = foreach C generate COUNT(B);
store D into '{out_path}';
"""


def qf(field_name, value=0, data_path="/data/synth", out_path="/out/qf"):
    """Query template QF filtering ``field_name == value``."""
    if field_name not in QF_FIELDS:
        raise ValueError(f"QF filters one of {QF_FIELDS}, got {field_name!r}")
    return f"""
A = load '{data_path}' as {_AS_CLAUSE};
B = filter A by {field_name} == {value};
C = group B by field1;
D = foreach C generate COUNT(B);
store D into '{out_path}';
"""
