"""Synthetic dataset generator for Section 7.5 (Table 2).

* ``field1..field5`` — random strings of length 20 (projection studies);
* ``field6..field12`` — integers whose cardinality controls the fraction
  of rows an equality predicate selects (Table 2):

  ========  ===========  ===========
  field     cardinality  % selected
  ========  ===========  ===========
  field6    200          0.5%
  field7    100          1%
  field8    20           5%
  field9    10           10%
  field10   5            20%
  field11   2            50%
  field12   "1.6"        60%
  ========  ===========  ===========

  field12's fractional cardinality means a two-value field where the
  selected value covers 60% of rows. The selected value is always 0.
"""

from repro.common import DeterministicRng
from repro.data import DataType, encode_row, Field, Schema

#: (field name, cardinality, expected selected fraction of an equality
#: predicate on value 0) — Table 2 of the paper.
FIELD_SPECS = [
    ("field6", 200, 0.005),
    ("field7", 100, 0.01),
    ("field8", 20, 0.05),
    ("field9", 10, 0.10),
    ("field10", 5, 0.20),
    ("field11", 2, 0.50),
    ("field12", 1.6, 0.60),
]

SYNTH_SCHEMA = Schema(
    [Field(f"field{i}", DataType.CHARARRAY) for i in range(1, 6)]
    + [Field(name, DataType.INT) for name, _, _ in FIELD_SPECS]
)


class SynthConfig:
    def __init__(self, num_rows=20_000, string_length=20, seed=7):
        self.num_rows = num_rows
        self.string_length = string_length
        self.seed = seed


class SynthData:
    """Generates and installs the synthetic table."""

    def __init__(self, config=None):
        self.config = config or SynthConfig()

    def rows(self):
        cfg = self.config
        rng = DeterministicRng(cfg.seed).substream("synth")
        rows = []
        for _ in range(cfg.num_rows):
            strings = tuple(
                rng.rand_string(cfg.string_length) for _ in range(5)
            )
            ints = []
            for _, cardinality, fraction in FIELD_SPECS:
                if cardinality == 1.6:
                    # Two values; value 0 covers `fraction` of the rows.
                    ints.append(0 if rng.random() < fraction else 1)
                else:
                    ints.append(rng.randint(0, int(cardinality) - 1))
            rows.append(strings + tuple(ints))
        return rows

    def install(self, dfs, path="/data/synth"):
        lines = [encode_row(row, SYNTH_SCHEMA) for row in self.rows()]
        return dfs.write_lines(path, lines, overwrite=True)
