"""The Section 7.5 synthetic workload: data-reduction sweeps.

A 12-field table (Table 2's cardinalities/selectivities) plus the QP
(projection sweep) and QF (filter sweep) query templates used for
Figures 16 and 17.
"""

from repro.synth.datagen import (
    FIELD_SPECS,
    SYNTH_SCHEMA,
    SynthConfig,
    SynthData,
)
from repro.synth.templates import qf, qp, QF_FIELDS, QP_MAX_FIELDS

__all__ = [
    "FIELD_SPECS",
    "qf",
    "QF_FIELDS",
    "qp",
    "QP_MAX_FIELDS",
    "SYNTH_SCHEMA",
    "SynthConfig",
    "SynthData",
]
