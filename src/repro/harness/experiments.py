"""Experiment runners for every table and figure in the paper's Section 7.

Measurement protocol (mirrors the paper's):

* **no reuse** — plain execution (temps deleted afterwards);
* **generating** — ReStore executes the query while materializing sub-jobs
  per a heuristic (rewriting disabled); its extra time over the plain run
  is the Store-injection overhead;
* **reusing** — the query is re-submitted against the repository populated
  by the generating run (no new materialization, no registration), so the
  measured time is pure reuse benefit.

Whole-job experiments (Figures 9/15) populate the repository with
intermediate job outputs only (the paper's Section 7.1 setting: final user
outputs are not reused, so the terminal job re-executes).

Every run asserts the correctness invariant: reuse must not change query
results.
"""

from repro.common.units import GB
from repro.harness.reporting import arithmetic_mean, ExperimentResult
from repro.harness.scenario import PigMixScenario, SynthScenario
from repro.pigmix.queries import ALL_QUERIES
from repro.restore import (
    AggressiveHeuristic,
    ConservativeHeuristic,
    NoHeuristic,
    Repository,
)
from repro.synth import FIELD_SPECS, qf, QF_FIELDS, qp, QP_MAX_FIELDS

HEURISTICS = {
    "HC": ConservativeHeuristic,
    "HA": AggressiveHeuristic,
    "NH": NoHeuristic,
}

_CACHE = {}


def _cached(key, compute):
    if key not in _CACHE:
        _CACHE[key] = compute()
    return _CACHE[key]


def clear_cache():
    """Drop memoized sweeps (tests use this between profiles)."""
    _CACHE.clear()


# --- Shared sweep machinery ---------------------------------------------------


def _final_outputs(scenario, workflow):
    """Snapshot the user-facing outputs of a workflow (correctness checks)."""
    snapshot = {}
    for path in workflow.final_output_paths():
        if scenario.system.dfs.exists(path):
            snapshot[path] = scenario.system.dfs.read_lines(path)
    return snapshot


def _run_measured(scenario, restore, query_name, expected_outputs=None):
    """Submit one workflow through ``restore``; verify output correctness."""
    workflow = scenario.compile(query_name)
    result = restore.submit(workflow)
    outputs = _final_outputs(scenario, workflow)
    if expected_outputs is not None and outputs != expected_outputs:
        raise AssertionError(
            f"reuse changed the results of {query_name}: correctness "
            "invariant violated"
        )
    return result, outputs


def _sum_stat(result, attribute):
    return sum(
        getattr(job_result.stats, attribute)
        for job_result in result.job_results.values()
    )


def _pigmix_subjob_sweep(instance, profile):
    """For each query: plain time, and per heuristic the generate/reuse
    times plus injected-store bytes. The backbone of Figures 10-14 and
    Table 1."""

    def compute():
        scenario = PigMixScenario(instance, profile)
        measurements = {}
        for query_name in ALL_QUERIES:
            plain = scenario.run_plain(query_name)
            record = {
                "plain_time": plain.total_time,
                "input_bytes": _sum_stat(plain, "map_input_bytes") * scenario.scale,
                "final_bytes": _sum_stat(plain, "final_output_bytes") * scenario.scale,
                "heuristics": {},
            }
            for name, heuristic_cls in HEURISTICS.items():
                repository = Repository()
                generator = scenario.restore(
                    heuristic=heuristic_cls(),
                    enable_rewrite=False,
                    register_final_outputs=False,
                    repository=repository,
                )
                gen_result, gen_outputs = _run_measured(scenario, generator,
                                                        query_name)
                reuser = scenario.restore(
                    heuristic=None,
                    enable_registration=False,
                    repository=repository,
                )
                reuse_result, _ = _run_measured(scenario, reuser, query_name,
                                                expected_outputs=gen_outputs)
                record["heuristics"][name] = {
                    "generate_time": gen_result.total_time,
                    "reuse_time": reuse_result.total_time,
                    "stored_bytes": _sum_stat(gen_result, "injected_store_bytes")
                    * scenario.scale,
                    "rewrites": reuser.last_report.num_rewrites,
                }
            measurements[query_name] = record
        return measurements

    return _cached(("subjob", instance, profile), compute)


def _pigmix_variant_sweep(profile):
    """L3/L11 families under four modes: no reuse, whole-job reuse, and
    sub-job reuse with HC and HA. The backbone of Figures 9 and 15."""

    def compute():
        measurements = {}
        for family in ("L3", "L11"):
            scenario = PigMixScenario("150GB", profile)
            queries = scenario.variant_family(family)
            family_rows = {
                query_name: {"plain_time": scenario.run_plain(query_name).total_time}
                for query_name in queries
            }
            # "whole" stores intermediate job outputs only; the HC/HA modes
            # store *pure* sub-jobs (no whole-job outputs) — that is
            # Section 7.4's comparison, where reusing HA sub-jobs costs a
            # little extra work relative to reusing whole jobs.
            modes = {
                "whole": dict(heuristic=None),
                "HC": dict(heuristic=ConservativeHeuristic(),
                           register_whole_jobs=False),
                "HA": dict(heuristic=AggressiveHeuristic(),
                           register_whole_jobs=False),
            }
            for mode, restore_kwargs in modes.items():
                repository = Repository()
                populate = scenario.restore(
                    enable_rewrite=False,
                    register_final_outputs=False,
                    repository=repository,
                    **restore_kwargs,
                )
                expected = {}
                for query_name in queries:
                    _, expected[query_name] = _run_measured(scenario, populate,
                                                            query_name)
                reuser = scenario.restore(
                    heuristic=None,
                    enable_registration=False,
                    repository=repository,
                )
                for query_name in queries:
                    result, _ = _run_measured(
                        scenario, reuser, query_name,
                        expected_outputs=expected[query_name],
                    )
                    family_rows[query_name][f"{mode}_time"] = result.total_time
            measurements.update(family_rows)
        return measurements

    return _cached(("variants", profile), compute)


def _synth_sweep(profile):
    """QP (1..5 fields) and QF (field6..12): plain/generate/reuse triples.
    The backbone of Figures 16 and 17."""

    def compute():
        scenario = SynthScenario(profile)
        runs = {}

        def measure(tag, query_text):
            plain = scenario.run_plain(query_text, f"{tag}-plain")
            repository = Repository()
            generator = scenario.restore(
                heuristic=ConservativeHeuristic(),
                enable_rewrite=False,
                register_final_outputs=False,
                repository=repository,
            )
            workflow = scenario.system.compile(query_text, f"{tag}-gen")
            gen_result = generator.submit(workflow)
            expected = {
                path: scenario.system.dfs.read_lines(path)
                for path in workflow.final_output_paths()
            }
            reuser = scenario.restore(heuristic=None, enable_registration=False,
                                      repository=repository)
            reuse_workflow = scenario.system.compile(query_text, f"{tag}-reuse")
            reuse_result = reuser.submit(reuse_workflow)
            got = {
                path: scenario.system.dfs.read_lines(path)
                for path in reuse_workflow.final_output_paths()
            }
            if got != expected:
                raise AssertionError(f"reuse changed results of {tag}")
            stored = _sum_stat(gen_result, "injected_store_bytes")
            input_bytes = _sum_stat(gen_result, "map_input_bytes")
            runs[tag] = {
                "plain_time": plain.total_time,
                "generate_time": gen_result.total_time,
                "reuse_time": reuse_result.total_time,
                "stored_fraction": stored / max(1, input_bytes),
                "rewrites": reuser.last_report.num_rewrites,
            }

        for num_fields in range(1, QP_MAX_FIELDS + 1):
            out = f"/out/qp{num_fields}"
            measure(f"qp{num_fields}", qp(num_fields, out_path=out))
        for field in QF_FIELDS:
            out = f"/out/qf_{field}"
            measure(f"qf_{field}", qf(field, out_path=out))
        return runs

    return _cached(("synth", profile), compute)


# --- Figure 9 -------------------------------------------------------------------


def fig9_whole_jobs(profile="default"):
    """Figure 9: the effect of reusing whole job outputs (150 GB)."""
    sweep = _pigmix_variant_sweep(profile)
    rows = []
    for query_name in ("L3", "L3a", "L3b", "L3c", "L11", "L11a", "L11b",
                       "L11c", "L11d"):
        record = sweep[query_name]
        speedup = record["plain_time"] / max(1e-9, record["whole_time"])
        rows.append(
            {
                "query": query_name,
                "no_reuse_min": record["plain_time"] / 60,
                "reusing_jobs_min": record["whole_time"] / 60,
                "speedup": speedup,
            }
        )
    rows.append(
        {
            "query": "average",
            "no_reuse_min": arithmetic_mean([r["no_reuse_min"] for r in rows]),
            "reusing_jobs_min": arithmetic_mean(
                [r["reusing_jobs_min"] for r in rows]
            ),
            "speedup": arithmetic_mean([r["speedup"] for r in rows]),
        }
    )
    return ExperimentResult(
        "fig9",
        "Effect of reusing whole job outputs (150GB instance)",
        ["query", "no_reuse_min", "reusing_jobs_min", "speedup"],
        rows,
        paper={"average speedup": 9.8, "overhead": "0% (no stores injected)"},
        notes=["repository populated with intermediate whole-job outputs of "
               "prior executions of each query (Section 7.1 protocol)"],
    )


# --- Figures 10-12 -----------------------------------------------------------------


def fig10_sub_jobs(profile="default"):
    """Figure 10: the effect of reusing sub-job outputs (HA, 150 GB)."""
    sweep = _pigmix_subjob_sweep("150GB", profile)
    rows = []
    for query_name, record in sweep.items():
        ha = record["heuristics"]["HA"]
        rows.append(
            {
                "query": query_name,
                "no_reuse_min": record["plain_time"] / 60,
                "generating_min": ha["generate_time"] / 60,
                "reusing_min": ha["reuse_time"] / 60,
                "overhead": ha["generate_time"] / record["plain_time"],
                "speedup": record["plain_time"] / max(1e-9, ha["reuse_time"]),
            }
        )
    rows.append(
        {
            "query": "average",
            "no_reuse_min": arithmetic_mean([r["no_reuse_min"] for r in rows]),
            "generating_min": arithmetic_mean([r["generating_min"] for r in rows]),
            "reusing_min": arithmetic_mean([r["reusing_min"] for r in rows]),
            "overhead": arithmetic_mean([r["overhead"] for r in rows]),
            "speedup": arithmetic_mean([r["speedup"] for r in rows]),
        }
    )
    return ExperimentResult(
        "fig10",
        "Effect of reusing sub-job outputs, Aggressive Heuristic (150GB)",
        ["query", "no_reuse_min", "generating_min", "reusing_min", "overhead",
         "speedup"],
        rows,
        paper={"average speedup": 24.4, "average overhead": 1.6},
    )


def _overhead_speedup_rows(profile, metric):
    rows = []
    for query_name in ALL_QUERIES:
        row = {"query": query_name}
        for instance in ("15GB", "150GB"):
            record = _pigmix_subjob_sweep(instance, profile)[query_name]
            ha = record["heuristics"]["HA"]
            if metric == "overhead":
                row[instance] = ha["generate_time"] / record["plain_time"]
            else:
                row[instance] = record["plain_time"] / max(1e-9, ha["reuse_time"])
        rows.append(row)
    rows.append(
        {
            "query": "average",
            "15GB": arithmetic_mean([row["15GB"] for row in rows]),
            "150GB": arithmetic_mean([row["150GB"] for row in rows]),
        }
    )
    return rows


def fig11_overhead(profile="default"):
    """Figure 11: Store-injection overhead at 15 GB vs 150 GB."""
    return ExperimentResult(
        "fig11",
        "Overhead of injected Store operators (HA), both data sizes",
        ["query", "15GB", "150GB"],
        _overhead_speedup_rows(profile, "overhead"),
        paper={"average overhead 15GB": 2.4, "average overhead 150GB": 1.6,
               "shape": "overhead higher at the smaller scale"},
    )


def fig12_speedup(profile="default"):
    """Figure 12: sub-job reuse speedup at 15 GB vs 150 GB."""
    return ExperimentResult(
        "fig12",
        "Speedup from reusing sub-job outputs (HA), both data sizes",
        ["query", "15GB", "150GB"],
        _overhead_speedup_rows(profile, "speedup"),
        paper={"average speedup 15GB": 3.0, "average speedup 150GB": 24.4,
               "shape": "speedup higher at the larger scale"},
    )


# --- Figures 13-14 + Table 1 ----------------------------------------------------------


def fig13_heuristic_reuse(profile="default"):
    """Figure 13: execution time when reusing sub-jobs from NH/HC/HA."""
    sweep = _pigmix_subjob_sweep("150GB", profile)
    rows = []
    for query_name, record in sweep.items():
        rows.append(
            {
                "query": query_name,
                "no_reuse_min": record["plain_time"] / 60,
                "HC_min": record["heuristics"]["HC"]["reuse_time"] / 60,
                "HA_min": record["heuristics"]["HA"]["reuse_time"] / 60,
                "NH_min": record["heuristics"]["NH"]["reuse_time"] / 60,
            }
        )
    return ExperimentResult(
        "fig13",
        "Execution time reusing sub-jobs chosen by different heuristics (150GB)",
        ["query", "no_reuse_min", "HC_min", "HA_min", "NH_min"],
        rows,
        paper={"shape": "HA matches NH; HC gives less benefit; all beat no-reuse"},
    )


def fig14_heuristic_overhead(profile="default"):
    """Figure 14: execution time WITH the injected Store operators."""
    sweep = _pigmix_subjob_sweep("150GB", profile)
    rows = []
    for query_name, record in sweep.items():
        rows.append(
            {
                "query": query_name,
                "no_reuse_min": record["plain_time"] / 60,
                "HC_min": record["heuristics"]["HC"]["generate_time"] / 60,
                "HA_min": record["heuristics"]["HA"]["generate_time"] / 60,
                "NH_min": record["heuristics"]["NH"]["generate_time"] / 60,
            }
        )
    return ExperimentResult(
        "fig14",
        "Execution time with Store operators injected by each heuristic (150GB)",
        ["query", "no_reuse_min", "HC_min", "HA_min", "NH_min"],
        rows,
        paper={"shape": "NH worst; HA usually close to HC (L6 the exception)"},
    )


def table1_storage(profile="default"):
    """Table 1: input bytes, injected-store bytes per heuristic, output."""
    sweep = _pigmix_subjob_sweep("150GB", profile)
    rows = []
    for query_name, record in sweep.items():
        rows.append(
            {
                "query": query_name,
                "input_GB": record["input_bytes"] / GB,
                "HC_GB": record["heuristics"]["HC"]["stored_bytes"] / GB,
                "HA_GB": record["heuristics"]["HA"]["stored_bytes"] / GB,
                "NH_GB": record["heuristics"]["NH"]["stored_bytes"] / GB,
                "output_MB": record["final_bytes"] / (1024 * 1024),
            }
        )
    return ExperimentResult(
        "table1",
        "Input data, injected-Store output per heuristic, final output (150GB)",
        ["query", "input_GB", "HC_GB", "HA_GB", "NH_GB", "output_MB"],
        rows,
        paper={"shape": "HC <= HA << NH for every query; HA==HC for L2/L8; "
               "HA far above HC for the wide-group L6"},
        notes=["bytes reported at paper scale via the calibrated cost-model "
               "scale factor"],
    )


# --- Figure 15 ----------------------------------------------------------------------


def fig15_jobs_vs_subjobs(profile="default"):
    """Figure 15: whole jobs vs HC/HA sub-jobs on the L3/L11 variants."""
    sweep = _pigmix_variant_sweep(profile)
    rows = []
    for query_name in ("L3", "L3a", "L3b", "L3c", "L11", "L11a", "L11b",
                       "L11c", "L11d"):
        record = sweep[query_name]
        rows.append(
            {
                "query": query_name,
                "no_reuse_min": record["plain_time"] / 60,
                "HC_min": record["HC_time"] / 60,
                "HA_min": record["HA_time"] / 60,
                "whole_jobs_min": record["whole_time"] / 60,
            }
        )
    return ExperimentResult(
        "fig15",
        "Reusing whole jobs and sub-jobs (150GB)",
        ["query", "no_reuse_min", "HC_min", "HA_min", "whole_jobs_min"],
        rows,
        paper={"shape": "all reuse types beneficial; whole jobs and HA "
               "sub-jobs are best and nearly equal"},
    )


# --- Table 2 + Figures 16-17 ------------------------------------------------------------


def table2_synth_data(profile="default"):
    """Table 2: measured cardinalities/selectivities of the generator."""
    scenario = SynthScenario(profile)
    rows_data = scenario.data.rows()
    from repro.synth import SYNTH_SCHEMA

    rows = []
    for name, cardinality, fraction in FIELD_SPECS:
        position = SYNTH_SCHEMA.position_of(name)
        values = [row[position] for row in rows_data]
        measured_fraction = sum(1 for value in values if value == 0) / len(values)
        rows.append(
            {
                "field": name,
                "cardinality_spec": cardinality,
                "cardinality_measured": len(set(values)),
                "selected_spec_pct": fraction * 100,
                "selected_measured_pct": measured_fraction * 100,
            }
        )
    return ExperimentResult(
        "table2",
        "Synthetic data set fields (generator vs Table 2 spec)",
        ["field", "cardinality_spec", "cardinality_measured",
         "selected_spec_pct", "selected_measured_pct"],
        rows,
        paper={"spec": "cardinalities 200/100/20/10/5/2/1.6 selecting "
               "0.5/1/5/10/20/50/60 % of rows"},
    )


def fig16_projection(profile="default"):
    """Figure 16: overhead & speedup vs percentage of projected data (QP)."""
    sweep = _synth_sweep(profile)
    rows = []
    for num_fields in range(1, QP_MAX_FIELDS + 1):
        record = sweep[f"qp{num_fields}"]
        rows.append(
            {
                "projected_fields": num_fields,
                "projected_pct": record["stored_fraction"] * 100,
                "overhead": record["generate_time"] / record["plain_time"],
                "speedup": record["plain_time"] / max(1e-9, record["reuse_time"]),
            }
        )
    return ExperimentResult(
        "fig16",
        "Overhead and speedup vs percentage of projected data (QP)",
        ["projected_fields", "projected_pct", "overhead", "speedup"],
        rows,
        paper={"shape": "as projected % grows, overhead rises and speedup "
               "falls; net benefit when projection halves the data"},
    )


def fig17_filter(profile="default"):
    """Figure 17: overhead & speedup vs percentage of filtered data (QF)."""
    sweep = _synth_sweep(profile)
    rows = []
    for name, cardinality, fraction in FIELD_SPECS:
        record = sweep[f"qf_{name}"]
        rows.append(
            {
                "field": name,
                "selected_pct": fraction * 100,
                "overhead": record["generate_time"] / record["plain_time"],
                "speedup": record["plain_time"] / max(1e-9, record["reuse_time"]),
            }
        )
    return ExperimentResult(
        "fig17",
        "Overhead and speedup vs percentage of filtered data (QF)",
        ["field", "selected_pct", "overhead", "speedup"],
        rows,
        paper={"shape": "as the filter keeps more data, overhead rises and "
               "speedup falls"},
    )
