"""Result containers and text-table rendering for the experiments."""


class ExperimentResult:
    """One reproduced table/figure: rows of measurements plus context.

    ``rows`` is a list of dicts sharing ``headers`` as keys. ``paper``
    holds the paper's claims for the same quantity (for shape checks);
    ``notes`` records caveats (scaling, substitutions).
    """

    def __init__(self, exp_id, title, headers, rows, paper=None, notes=()):
        self.exp_id = exp_id
        self.title = title
        self.headers = list(headers)
        self.rows = list(rows)
        self.paper = paper or {}
        self.notes = list(notes)

    def column(self, header):
        return [row[header] for row in self.rows]

    def row_for(self, key_header, key_value):
        for row in self.rows:
            if row[key_header] == key_value:
                return row
        raise KeyError(f"no row with {key_header}={key_value!r}")

    def format(self):
        lines = [f"== {self.exp_id}: {self.title} =="]
        lines.append(format_table(self.headers, self.rows))
        if self.paper:
            lines.append("paper: " + ", ".join(
                f"{key}={value}" for key, value in self.paper.items()
            ))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __repr__(self):
        return f"<ExperimentResult {self.exp_id}: {len(self.rows)} rows>"


def format_value(value):
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)


def format_table(headers, rows):
    """Plain aligned text table."""
    table = [[format_value(row[header]) for header in headers] for row in rows]
    widths = [
        max(len(headers[col]), *(len(line[col]) for line in table)) if table
        else len(headers[col])
        for col in range(len(headers))
    ]
    def fmt_line(cells):
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = [fmt_line(headers), fmt_line(["-" * width for width in widths])]
    lines.extend(fmt_line(line) for line in table)
    return "\n".join(lines)


def geometric_mean(values):
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values):
    return sum(values) / len(values) if values else 0.0
