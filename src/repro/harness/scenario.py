"""Benchmark scenarios: a cluster + installed dataset + calibrated scale.

The paper's 15 GB / 150 GB PigMix instances (and the 40 GB synthetic data
set) are realized as scaled-down datasets; the cost model's ``scale`` is
set so that the installed page_views file *is* 15 GB / 150 GB in effective
bytes. All reported simulated times are therefore at paper scale, while
the engine runs the small data for real.
"""

from repro.api import PigSystem
from repro.common.units import GB
from repro.pigmix import PigMixConfig, PigMixData, PigMixPaths
from repro.pigmix.queries import query_text, VARIANT_FAMILIES
from repro.synth import SynthConfig, SynthData


class Profile:
    """Actual (executed) data sizing; effective sizes come from `scale`."""

    def __init__(self, name, pigmix_small_rows, synth_rows):
        self.name = name
        self.pigmix_small_rows = pigmix_small_rows
        self.synth_rows = synth_rows


#: tiny — unit/integration tests; default — the benchmark suite.
PROFILES = {
    "tiny": Profile("tiny", pigmix_small_rows=600, synth_rows=2_000),
    "default": Profile("default", pigmix_small_rows=3_000, synth_rows=20_000),
}

#: The paper's instance sizes (page_views bytes before replication).
TARGET_BYTES = {"15GB": 15 * GB, "150GB": 150 * GB}
SYNTH_TARGET_BYTES = 40 * GB


class PigMixScenario:
    """A fresh simulated cluster with one PigMix instance installed."""

    def __init__(self, instance="150GB", profile="default", seed=42):
        if instance not in TARGET_BYTES:
            raise ValueError(f"instance must be one of {sorted(TARGET_BYTES)}")
        self.instance = instance
        self.profile = PROFILES[profile] if isinstance(profile, str) else profile
        rows = self.profile.pigmix_small_rows
        config = PigMixConfig(
            num_page_views=rows,
            num_users=max(20, rows // 20),
            num_power_users=max(5, rows // 200),
            seed=seed,
        )
        if instance == "150GB":
            config = config.scaled(10)
        base_system = PigSystem()
        self.data = PigMixData(config)
        self.data.install(base_system.dfs)
        actual = base_system.dfs.file_size("/data/page_views")
        self.scale = TARGET_BYTES[instance] / actual
        self.system = base_system.with_scale(self.scale)
        self.paths = PigMixPaths()

    def compile(self, query_name):
        return self.system.compile(query_text(query_name, self.paths), query_name)

    def run_plain(self, query_name):
        """Execute with no reuse at all (the paper's baseline)."""
        return self.system.run(query_text(query_name, self.paths), query_name)

    def restore(self, **kwargs):
        return self.system.restore(**kwargs)

    def variant_family(self, family):
        return list(VARIANT_FAMILIES[family])


class SynthScenario:
    """The Section 7.5 synthetic dataset on a fresh cluster."""

    def __init__(self, profile="default", seed=7):
        self.profile = PROFILES[profile] if isinstance(profile, str) else profile
        base_system = PigSystem()
        self.data = SynthData(SynthConfig(num_rows=self.profile.synth_rows,
                                          seed=seed))
        self.data.install(base_system.dfs)
        actual = base_system.dfs.file_size("/data/synth")
        self.scale = SYNTH_TARGET_BYTES / actual
        self.system = base_system.with_scale(self.scale)

    def run_plain(self, query, name):
        return self.system.run(query, name)

    def restore(self, **kwargs):
        return self.system.restore(**kwargs)
