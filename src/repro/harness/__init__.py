"""Experiment harness: one runner per table/figure of the paper's Section 7.

Each ``fig*``/``table*`` function executes the corresponding experiment on
the simulated cluster and returns an :class:`ExperimentResult` whose rows
mirror the series the paper plots, alongside the paper's own numbers for
shape comparison. The expensive sweeps are memoized per (profile,
instance), so benchmark files that share measurements don't recompute them.
"""

from repro.harness.experiments import (
    fig9_whole_jobs,
    fig10_sub_jobs,
    fig11_overhead,
    fig12_speedup,
    fig13_heuristic_reuse,
    fig14_heuristic_overhead,
    fig15_jobs_vs_subjobs,
    fig16_projection,
    fig17_filter,
    table1_storage,
    table2_synth_data,
)
from repro.harness.reporting import ExperimentResult
from repro.harness.scenario import PigMixScenario, PROFILES, SynthScenario

__all__ = [
    "ExperimentResult",
    "fig9_whole_jobs",
    "fig10_sub_jobs",
    "fig11_overhead",
    "fig12_speedup",
    "fig13_heuristic_reuse",
    "fig14_heuristic_overhead",
    "fig15_jobs_vs_subjobs",
    "fig16_projection",
    "fig17_filter",
    "PigMixScenario",
    "PROFILES",
    "SynthScenario",
    "table1_storage",
    "table2_synth_data",
]
