"""repro — a full reproduction of *ReStore: Reusing Results of MapReduce
Jobs* (Elghandour & Aboulnaga, PVLDB 5(6), 2012).

The package contains a complete, executing substrate — a simulated HDFS, a
MapReduce engine with a calibrated cost model, and a Pig-like dataflow
compiler — plus ReStore itself: the plan matcher & rewriter, the sub-job
enumerator with its heuristics, and the repository/selector.

Quick start::

    from repro import PigSystem
    from repro.restore import ReStore

    system = PigSystem()
    system.write_table("/data/t", rows, schema)
    restore = system.restore()
    restore.submit(system.compile(query_one))   # executes + stores outputs
    restore.submit(system.compile(query_two))   # rewritten to reuse them

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from repro.api import PigSystem
from repro.common.errors import ReproError

__version__ = "1.0.0"

__all__ = ["PigSystem", "ReproError", "__version__"]
