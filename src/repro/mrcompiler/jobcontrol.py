"""JobControl: iterative workflow execution with preparation hooks.

Pig's JobControlCompiler iterates over the workflow, each time selecting
the jobs whose dependencies have finished, preparing them, and submitting
them to Hadoop (paper Section 6.1). ReStore extends exactly this loop
(Section 6.2): its manager subclasses :class:`JobControl` and overrides

* :meth:`prepare_job` — plan matching/rewriting and sub-job injection just
  before submission (returning False eliminates the job: whole-job reuse);
* :meth:`after_job` — repository registration from execution statistics.
"""

from repro.common.errors import ExecutionError
from repro.mapreduce.runner import JobRunner, JobRunResult
from repro.mapreduce.workflow import WorkflowResult


class JobControl:
    """Base (no-reuse) workflow driver; semantics match WorkflowExecutor."""

    def __init__(self, dfs, cost_model, keep_temps=False):
        self.dfs = dfs
        self.cost_model = cost_model
        self.keep_temps = keep_temps
        self._runner = JobRunner(dfs, cost_model)

    def run(self, workflow):
        result = WorkflowResult(workflow)
        done = set()
        remaining = list(workflow.topological_jobs())
        while remaining:
            ready = [
                job
                for job in remaining
                if all(dep.job_id in done for dep in job.dependencies)
            ]
            if not ready:
                raise ExecutionError(f"workflow {workflow.name!r} is deadlocked")
            for job in ready:
                self._run_one(job, workflow, result)
                done.add(job.job_id)
            remaining = [job for job in remaining if job.job_id not in done]
        self._cleanup(workflow)
        return result

    def _run_one(self, job, workflow, result):
        execute = self.prepare_job(job, workflow, result)
        if execute:
            run_result = self._runner.run(job)
        else:
            run_result = JobRunResult.skipped_job(job.job_id)
        result.job_results[job.job_id] = run_result
        dep_total = max(
            (result.completion_times[dep.job_id] for dep in job.dependencies),
            default=0.0,
        )
        result.completion_times[job.job_id] = run_result.execution_time + dep_total
        self.after_job(job, run_result, executed=execute)

    def _cleanup(self, workflow):
        if self.keep_temps:
            return
        for path in workflow.temp_paths:
            self.dfs.delete_if_exists(path)

    # Hooks ----------------------------------------------------------------

    def prepare_job(self, job, workflow, result):
        """Called when ``job`` becomes ready; return False to skip it."""
        return True

    def after_job(self, job, run_result, executed):
        """Called after ``job`` ran (or was skipped)."""
