"""Compile physical plans into workflows of MapReduce jobs.

Mirrors Pig's MapReduce compiler (paper Section 6.1): blocking operators
(Join, Group, CoGroup, Distinct, Order) must sit in a reduce stage, so a
plan with several of them becomes several jobs chained through temporary
DFS files. The JobControl analog iterates the workflow in dependency order
— the extension point where ReStore hooks in (Section 6.2).
"""

from repro.mrcompiler.compiler import compile_to_workflow
from repro.mrcompiler.jobcontrol import JobControl

__all__ = ["compile_to_workflow", "JobControl"]
