"""Physical plan -> workflow of MapReduce jobs.

The algorithm walks the query plan topologically, accumulating operators
into job *fragments*:

* a Load starts a map-side fragment;
* non-blocking operators stay in their input's fragment and stage;
* a blocking operator needs all of its inputs map-side in one fragment —
  inputs living in a fragment that already shuffles are materialized to a
  temp file and re-loaded in a fresh fragment (this is where the chain
  Job1 -> temp -> Job2 of the paper's Figure 3 comes from) — and then
  starts the fragment's reduce stage;
* a Store becomes a sink of its input's fragment.

Each fragment with sinks becomes one MRJob; temp files define the
dependency edges.
"""

import itertools

from repro.common.errors import CompilationError
from repro.mapreduce.job import MRJob
from repro.mapreduce.workflow import Workflow
from repro.physical.operators import MAP_STAGE, POLoad, POStore, REDUCE_STAGE
from repro.physical.plan import PhysicalPlan

_fragment_ids = itertools.count(1)


def compile_to_workflow(physical_plan, name, temp_prefix=None):
    """Compile ``physical_plan`` into a :class:`Workflow` named ``name``."""
    return _Compiler(physical_plan, name, temp_prefix).compile()


class _Fragment:
    __slots__ = ("index", "sinks", "has_shuffle", "shuffle_op", "alive")

    def __init__(self):
        self.index = next(_fragment_ids)
        self.sinks = []
        self.has_shuffle = False
        self.shuffle_op = None
        self.alive = True


class _Compiler:
    def __init__(self, plan, name, temp_prefix):
        self._plan = plan
        self._name = name
        self._temp_prefix = temp_prefix or f"/tmp/{name}"
        self._clones = {}         # id(query op) -> clone in some job plan
        self._fragment_of = {}    # id(clone) -> _Fragment
        self._temp_counter = itertools.count(1)
        self._temp_paths = []
        self._path_producer = {}  # temp path -> producing fragment
        self._materialized = {}   # id(clone) -> temp path (memoized)

    # Entry point --------------------------------------------------------

    def compile(self):
        for op in self._plan.operators():
            self._place(op)
        return self._build_workflow()

    # Placement ------------------------------------------------------------

    def _place(self, op):
        if isinstance(op, POLoad):
            clone = op.copy_with_inputs([])
            clone.stage = MAP_STAGE
            self._register(clone, self._new_fragment())
        elif isinstance(op, POStore):
            parent = self._clones[id(op.inputs[0])]
            clone = op.copy_with_inputs([parent])
            clone.stage = parent.stage
            fragment = self._fragment_of[id(parent)]
            fragment.sinks.append(clone)
            self._register(clone, fragment)
        elif op.is_blocking:
            clone = self._place_blocking(op)
        elif len(op.inputs) > 1:
            clone = self._place_multi_input(op)
        else:
            parent = self._clones[id(op.inputs[0])]
            clone = op.copy_with_inputs([parent])
            clone.stage = parent.stage
            self._register(clone, self._fragment_of[id(parent)])
        self._clones[id(op)] = clone

    def _place_blocking(self, op):
        parents = []
        fragments = []
        for query_parent in op.inputs:
            clone, fragment = self._map_only_view(query_parent)
            parents.append(clone)
            fragments.append(fragment)
        target = self._merge_fragments(fragments)
        clone = op.copy_with_inputs(parents)
        clone.stage = REDUCE_STAGE
        target.has_shuffle = True
        target.shuffle_op = clone
        self._register(clone, target)
        return clone

    def _place_multi_input(self, op):
        """Non-blocking multi-input operators (Union)."""
        current = [self._clones[id(parent)] for parent in op.inputs]
        frames = [self._fragment_of[id(clone)] for clone in current]
        same_fragment = all(frame is frames[0] for frame in frames)
        same_stage = len({clone.stage for clone in current}) == 1
        if same_fragment and same_stage:
            clone = op.copy_with_inputs(current)
            clone.stage = current[0].stage
            self._register(clone, frames[0])
            return clone
        parents = []
        fragments = []
        for query_parent in op.inputs:
            view, fragment = self._map_only_view(query_parent)
            parents.append(view)
            fragments.append(fragment)
        target = self._merge_fragments(fragments)
        clone = op.copy_with_inputs(parents)
        clone.stage = MAP_STAGE
        self._register(clone, target)
        return clone

    def _map_only_view(self, query_op):
        """A map-stage handle on ``query_op``'s output, materializing the
        producing fragment to a temp file when it already shuffles."""
        clone = self._clones[id(query_op)]
        fragment = self._fragment_of[id(clone)]
        if not fragment.has_shuffle:
            return clone, fragment
        path = self._materialized.get(id(clone))
        if path is None:
            path = self._new_temp_path()
            store = POStore(clone, path, temporary=True)
            store.stage = clone.stage
            fragment.sinks.append(store)
            self._register(store, fragment)
            self._materialized[id(clone)] = path
            self._path_producer[path] = fragment
        load = POLoad(path, clone.schema, version=0, alias=clone.alias)
        load.stage = MAP_STAGE
        new_fragment = self._new_fragment()
        self._register(load, new_fragment)
        return load, new_fragment

    # Fragment bookkeeping ---------------------------------------------------

    def _new_fragment(self):
        return _Fragment()

    def _register(self, clone, fragment):
        self._fragment_of[id(clone)] = fragment

    def _merge_fragments(self, fragments):
        """Merge distinct fragments into the earliest-created one."""
        unique = []
        for fragment in fragments:
            if fragment not in unique:
                unique.append(fragment)
        target = min(unique, key=lambda fragment: fragment.index)
        for fragment in unique:
            if fragment is target:
                continue
            if fragment.has_shuffle:
                raise CompilationError(
                    "internal: merging a fragment that already shuffles"
                )
            for clone_id, owner in list(self._fragment_of.items()):
                if owner is fragment:
                    self._fragment_of[clone_id] = target
            target.sinks.extend(fragment.sinks)
            fragment.alive = False
        return target

    def _new_temp_path(self):
        path = f"{self._temp_prefix}/t{next(self._temp_counter)}"
        self._temp_paths.append(path)
        return path

    # Workflow assembly -----------------------------------------------------------

    def _build_workflow(self):
        live = []
        seen = set()
        for fragment in self._fragment_of.values():
            if fragment.alive and id(fragment) not in seen:
                seen.add(id(fragment))
                live.append(fragment)
        live.sort(key=lambda fragment: fragment.index)
        jobs = {}
        for number, fragment in enumerate(live, start=1):
            if not fragment.sinks:
                raise CompilationError(
                    f"fragment {fragment.index} produced no output store"
                )
            plan = PhysicalPlan(list(fragment.sinks))
            job = MRJob(f"{self._name}-j{number}", plan,
                        shuffle_op=fragment.shuffle_op)
            jobs[id(fragment)] = job
        for fragment in live:
            job = jobs[id(fragment)]
            for load in job.loads():
                producer = self._path_producer.get(load.path)
                if producer is not None:
                    producer_job = jobs[id(producer)]
                    if producer_job not in job.dependencies:
                        job.dependencies.append(producer_job)
        workflow = Workflow(self._name, [jobs[id(fragment)] for fragment in live],
                            self._temp_paths)
        _check_acyclic(workflow)
        return workflow


def _check_acyclic(workflow):
    workflow.topological_jobs()  # raises on cycles
