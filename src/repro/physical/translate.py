"""Translate a logical plan into a physical plan (1:1 operator mapping).

Pig's MapReduce compiler first produces a physical plan from the optimized
logical plan, then embeds the physical operators into MapReduce jobs (paper
Section 6.1). Expression ASTs are compiled against input schemas here; the
MR compiler only has to group operators into map/reduce stages.
"""

from repro.common.errors import PlanError
from repro.logical import operators as lo
from repro.logical.operators import GROUP_FIELD
from repro.physical import operators as po
from repro.physical.plan import PhysicalPlan
from repro.piglatin import ast
from repro.piglatin.expressions import compile_expression, compile_predicate
from repro.piglatin.nested import compile_inner_pipeline


def logical_to_physical(logical_plan, dataset_versions=None):
    """Translate ``logical_plan``; ``dataset_versions`` stamps Load ops.

    ``dataset_versions`` maps DFS paths to the dataset version current at
    submission time (used by Load equivalence and eviction Rule 4).
    """
    versions = dataset_versions or {}
    mapping = {}

    def translated(logical_op):
        return mapping[id(logical_op)]

    sinks = []
    for op in logical_plan.operators():
        inputs = [translated(parent) for parent in op.inputs]
        physical = _translate_one(op, inputs, versions)
        mapping[id(op)] = physical
        if isinstance(physical, po.POStore):
            sinks.append(physical)
    plan = PhysicalPlan(sinks)
    plan.validate()
    return plan


def _translate_one(op, inputs, versions):
    if isinstance(op, lo.LOLoad):
        version = versions.get(op.path, 0)
        return po.POLoad(op.path, op.schema, version, alias=op.alias)
    if isinstance(op, lo.LOForEach):
        (input_op,) = inputs
        item_schema = input_op.schema
        inner_ops = ()
        if op.inner:
            item_schema, inner_ops = compile_inner_pipeline(input_op.schema,
                                                            op.inner)
        items = _compile_items(op, item_schema)
        return po.POForEach(input_op, items, op.schema, alias=op.alias,
                            inner_ops=inner_ops)
    if isinstance(op, lo.LOFilter):
        (input_op,) = inputs
        predicate = compile_predicate(op.condition, input_op.schema)
        return po.POFilter(input_op, predicate, alias=op.alias)
    if isinstance(op, lo.LOJoin):
        left, right = inputs
        left_keys = [compile_expression(key, left.schema) for key in op.left_keys]
        right_keys = [compile_expression(key, right.schema) for key in op.right_keys]
        return po.POJoin(left, right, left_keys, right_keys, op.schema,
                         alias=op.alias, parallel=op.parallel)
    if isinstance(op, lo.LOGroup):
        (input_op,) = inputs
        keys = None
        if not op.is_group_all:
            keys = [compile_expression(key, input_op.schema) for key in op.keys]
        return po.POGroup(input_op, keys, op.schema, alias=op.alias,
                          parallel=op.parallel)
    if isinstance(op, lo.LOCoGroup):
        key_lists = [
            [compile_expression(key, input_op.schema) for key in keys]
            for input_op, keys in zip(inputs, op.key_lists)
        ]
        return po.POCoGroup(inputs, key_lists, op.schema, alias=op.alias,
                            parallel=op.parallel)
    if isinstance(op, lo.LODistinct):
        (input_op,) = inputs
        return po.PODistinct(input_op, alias=op.alias, parallel=op.parallel)
    if isinstance(op, lo.LOUnion):
        return po.POUnion(inputs, op.schema, alias=op.alias)
    if isinstance(op, lo.LOSort):
        (input_op,) = inputs
        keys = [
            (compile_expression(expr, input_op.schema), direction)
            for expr, direction in op.keys
        ]
        return po.POSort(input_op, keys, op.schema, alias=op.alias,
                         parallel=op.parallel)
    if isinstance(op, lo.LOLimit):
        (input_op,) = inputs
        return po.POLimit(input_op, op.count, alias=op.alias)
    if isinstance(op, lo.LOStore):
        (input_op,) = inputs
        return po.POStore(input_op, op.path, alias=op.alias)
    raise PlanError(f"cannot translate logical operator {op!r}")


def _compile_items(foreach_op, input_schema):
    items = []
    for gen_item in foreach_op.items:
        if gen_item.flatten:
            if (
                not isinstance(gen_item.expr, ast.FieldRef)
                or gen_item.expr.name != GROUP_FIELD
            ):
                raise PlanError("only FLATTEN(group) is supported")
            positions = [
                position
                for position, field in enumerate(input_schema.fields)
                if field.name == GROUP_FIELD
                or field.name.startswith(GROUP_FIELD + "::")
            ]
            if not positions:
                raise PlanError("FLATTEN(group) requires a grouped input")
            items.append(po.ForEachItem(flatten_positions=tuple(positions)))
        else:
            compiled = compile_expression(gen_item.expr, input_schema)
            items.append(po.ForEachItem(compiled=compiled, name=gen_item.alias))
    return items
