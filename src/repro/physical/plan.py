"""The physical plan DAG: traversal, cloning, edge surgery, printing."""

from repro.common.errors import PlanError
from repro.physical.operators import POLoad, POStore


class PhysicalPlan:
    """A DAG of :class:`PhysOp` rooted at its sinks (normally POStores).

    The plan owns no operator state beyond the sink list; everything is
    derived by traversal so that rewrites (edge surgery) stay consistent.
    """

    def __init__(self, sinks):
        self.sinks = list(sinks)
        if not self.sinks:
            raise PlanError("a physical plan needs at least one sink")

    # Traversal -----------------------------------------------------------

    def operators(self):
        """All reachable operators, inputs before consumers (topological)."""
        ordered = []
        seen = set()

        def visit(op):
            if id(op) in seen:
                return
            seen.add(id(op))
            for parent in op.inputs:
                visit(parent)
            ordered.append(op)

        for sink in self.sinks:
            visit(sink)
        return ordered

    def loads(self):
        return [op for op in self.operators() if isinstance(op, POLoad)]

    def stores(self):
        return [op for op in self.operators() if isinstance(op, POStore)]

    def consumers(self):
        """Mapping op -> list of operators reading it (by identity)."""
        table = {id(op): [] for op in self.operators()}
        index = {id(op): op for op in self.operators()}
        for op in self.operators():
            for parent in op.inputs:
                table[id(parent)].append(op)
        return {index[key]: value for key, value in table.items()}

    def successors_of(self, target):
        return [op for op in self.operators() if target in op.inputs]

    # Surgery ----------------------------------------------------------------

    def replace_input(self, consumer, old_input, new_input):
        """Rewire one edge: ``consumer`` reads ``new_input`` instead."""
        replaced = False
        for position, parent in enumerate(consumer.inputs):
            if parent is old_input:
                consumer.inputs[position] = new_input
                replaced = True
        if not replaced:
            raise PlanError(f"{consumer!r} does not read {old_input!r}")

    def add_sink(self, sink):
        self.sinks.append(sink)

    def remove_sink(self, sink):
        self.sinks = [existing for existing in self.sinks if existing is not sink]
        if not self.sinks:
            raise PlanError("removing the last sink would empty the plan")

    # Cloning ---------------------------------------------------------------------

    def clone(self):
        """Deep-copy the DAG structure; returns (new_plan, old->new map)."""
        mapping = {}
        for op in self.operators():
            new_inputs = [mapping[id(parent)] for parent in op.inputs]
            clone = op.copy_with_inputs(new_inputs)
            clone.stage = op.stage
            mapping[id(op)] = clone
        new_sinks = [mapping[id(sink)] for sink in self.sinks]
        return PhysicalPlan(new_sinks), {
            op_id: clone for op_id, clone in mapping.items()
        }

    def clone_subgraph(self, frontier_op):
        """Clone only the subgraph that produces ``frontier_op``.

        Returns (clone_of_frontier, old->new map). Injected Split operators
        are bypassed so that the copy is a clean Loads→...→frontier chain —
        this is how enumerated sub-jobs become "full, independent MapReduce
        jobs indistinguishable from other jobs" (paper Section 4).
        """
        mapping = {}

        def visit(op):
            if id(op) in mapping:
                return mapping[id(op)]
            parents = [visit(parent) for parent in op.inputs]
            if op.kind == "split":
                # Transparent: a split has exactly one input.
                mapping[id(op)] = parents[0]
                return parents[0]
            clone = op.copy_with_inputs(parents)
            mapping[id(op)] = clone
            return clone

        return visit(frontier_op), mapping

    # Introspection ---------------------------------------------------------------

    def validate(self):
        """Sanity-check wiring; raises PlanError on dangling structure."""
        for op in self.operators():
            for parent in op.inputs:
                if parent is op:
                    raise PlanError(f"operator {op!r} is its own input")
        for sink in self.sinks:
            if not isinstance(sink, POStore):
                raise PlanError(f"plan sink {sink!r} is not a STORE")
        return True

    def describe(self):
        lines = []
        for op in self.operators():
            inputs = ",".join(f"#{parent.op_id}" for parent in op.inputs)
            stage = f" [{op.stage}]" if op.stage else ""
            injected = " (injected)" if op.injected else ""
            lines.append(f"#{op.op_id} {op.signature()}{stage}{injected} <- [{inputs}]")
        return "\n".join(lines)

    def __repr__(self):
        kinds = ", ".join(op.kind for op in self.operators())
        return f"<PhysicalPlan {kinds}>"
