"""Physical plans: executable operator DAGs with canonical signatures.

ReStore performs matching, sub-job enumeration, and selection **on physical
plans** (paper Section 2.2), because every dataflow system has a similar
physical operator vocabulary. Operators here carry:

* compiled expression closures (for the MapReduce engine to execute),
* a canonical ``signature()`` string (position-based, name-free) used by
  the matcher's operator-equivalence test,
* a ``stage`` attribute assigned by the MR compiler (map or reduce side).
"""

from repro.physical.operators import (
    POCoGroup,
    PODistinct,
    POFilter,
    POForEach,
    POGroup,
    POJoin,
    POLimit,
    POLoad,
    POSort,
    POSplit,
    POStore,
    POUnion,
    PhysOp,
)
from repro.physical.plan import PhysicalPlan
from repro.physical.translate import logical_to_physical

__all__ = [
    "logical_to_physical",
    "PhysicalPlan",
    "PhysOp",
    "POCoGroup",
    "PODistinct",
    "POFilter",
    "POForEach",
    "POGroup",
    "POJoin",
    "POLimit",
    "POLoad",
    "POSort",
    "POSplit",
    "POStore",
    "POUnion",
]
