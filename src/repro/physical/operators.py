"""Physical operators.

Blocking operators (Join, Group, CoGroup, Distinct, Sort) force a shuffle
and therefore a reduce stage — the reason the Pig compiler splits a query
into multiple MapReduce jobs (paper Section 2). Each operator exposes a
canonical ``signature()``; two operators with equal signatures "perform
functions that produce the same output data" given equivalent inputs, which
is the paper's operator-equivalence definition (Section 3).
"""

import itertools

from repro.common.errors import PlanError

_ids = itertools.count(1)

MAP_STAGE = "map"
REDUCE_STAGE = "reduce"


class PhysOp:
    """Base physical operator."""

    kind = "abstract"
    #: Blocking operators start a reduce stage (need a shuffle).
    is_blocking = False

    def __init__(self, inputs, schema, alias=None):
        self.op_id = next(_ids)
        self.inputs = list(inputs)
        self.schema = schema
        self.alias = alias
        self.stage = None
        #: Marks operators injected by ReStore's sub-job enumerator.
        self.injected = False

    def signature(self):
        raise NotImplementedError

    def copy_with_inputs(self, inputs):
        """A fresh instance of this operator wired to ``inputs``.

        Compiled closures are shared (they are immutable); identity,
        stage, and injected-flags are *not* carried over.
        """
        raise NotImplementedError

    def _carry(self, clone):
        clone.alias = self.alias
        clone.injected = self.injected
        return clone

    def describe(self):
        return self.signature()

    def __repr__(self):
        return f"<{type(self).__name__} #{self.op_id} {self.signature()}>"


class POLoad(PhysOp):
    """Read a DFS dataset. Equivalence = same path AND same version.

    The version pins the dataset's content: when an input is overwritten
    the version changes, old repository entries stop matching, and eviction
    Rule 4 reclaims them.
    """

    kind = "load"

    def __init__(self, path, schema, version=0, alias=None):
        super().__init__([], schema, alias)
        self.path = path
        self.version = version

    def signature(self):
        return f"LOAD[{self.path}@v{self.version}]"

    def copy_with_inputs(self, inputs):
        if inputs:
            raise PlanError("LOAD takes no inputs")
        return self._carry(POLoad(self.path, self.schema, self.version, self.alias))


class POStore(PhysOp):
    """Write to a DFS path. The path is deliberately NOT in the signature:

    two jobs computing the same result into different files are equivalent
    for reuse; the repository keeps the materialized location separately.
    """

    kind = "store"

    def __init__(self, input_op, path, alias=None, temporary=False):
        super().__init__([input_op], input_op.schema, alias)
        self.path = path
        self.temporary = temporary

    def signature(self):
        return "STORE"

    def copy_with_inputs(self, inputs):
        (input_op,) = inputs
        return self._carry(POStore(input_op, self.path, self.alias, self.temporary))


class ForEachItem:
    """One GENERATE output: either a scalar expression or FLATTEN(group)."""

    __slots__ = ("compiled", "flatten_positions", "name")

    def __init__(self, compiled=None, flatten_positions=None, name=None):
        if (compiled is None) == (flatten_positions is None):
            raise PlanError("a ForEachItem is an expression XOR a flatten")
        self.compiled = compiled
        self.flatten_positions = flatten_positions
        self.name = name

    def canonical(self):
        if self.compiled is not None:
            return self.compiled.canonical
        positions = ",".join(f"${pos}" for pos in self.flatten_positions)
        return f"flatten({positions})"


class POForEach(PhysOp):
    """Per-row projection/transformation (Pig's FOREACH ... GENERATE).

    ``inner_ops`` (from a nested FOREACH block) extend each row with
    virtual bag fields before the GENERATE items are evaluated.
    """

    kind = "foreach"

    def __init__(self, input_op, items, schema, alias=None, inner_ops=()):
        super().__init__([input_op], schema, alias)
        self.items = tuple(items)
        self.inner_ops = tuple(inner_ops)

    def signature(self):
        body = ";".join(item.canonical() for item in self.items)
        if self.inner_ops:
            inner = "|".join(op.canonical for op in self.inner_ops)
            return f"FOREACH[inner({inner});{body}]"
        return f"FOREACH[{body}]"

    def eval_row(self, row):
        if self.inner_ops:
            extended = list(row)
            for inner in self.inner_ops:
                extended.append(inner.fn(extended))
            row = tuple(extended)
        values = []
        for item in self.items:
            if item.compiled is not None:
                values.append(item.compiled.fn(row))
            else:
                values.extend(row[pos] for pos in item.flatten_positions)
        return tuple(values)

    def copy_with_inputs(self, inputs):
        (input_op,) = inputs
        return self._carry(POForEach(input_op, self.items, self.schema,
                                     self.alias, self.inner_ops))


class POFilter(PhysOp):
    kind = "filter"

    def __init__(self, input_op, predicate, alias=None):
        super().__init__([input_op], input_op.schema, alias)
        self.predicate = predicate

    def signature(self):
        return f"FILTER[{self.predicate.canonical}]"

    def eval_row(self, row):
        return self.predicate.fn(row) is True

    def copy_with_inputs(self, inputs):
        (input_op,) = inputs
        return self._carry(POFilter(input_op, self.predicate, self.alias))


class POJoin(PhysOp):
    """Inner equi-join of two inputs (shuffle join: rearrange + package)."""

    kind = "join"
    is_blocking = True

    def __init__(self, left, right, left_keys, right_keys, schema, alias=None,
                 parallel=None):
        super().__init__([left, right], schema, alias)
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)
        self.parallel = parallel

    def signature(self):
        left = ",".join(key.canonical for key in self.left_keys)
        right = ",".join(key.canonical for key in self.right_keys)
        return f"JOIN[{left}|{right}]"

    def key_functions(self):
        """Per-input-branch shuffle key extractors."""
        return [_key_fn(self.left_keys), _key_fn(self.right_keys)]

    def copy_with_inputs(self, inputs):
        left, right = inputs
        return self._carry(
            POJoin(left, right, self.left_keys, self.right_keys, self.schema,
                   self.alias, self.parallel)
        )


class POGroup(PhysOp):
    """GROUP BY keys / GROUP ALL; output = key fields + one bag."""

    kind = "group"
    is_blocking = True

    def __init__(self, input_op, keys, schema, alias=None, parallel=None):
        super().__init__([input_op], schema, alias)
        self.keys = None if keys is None else tuple(keys)
        self.parallel = parallel

    @property
    def is_group_all(self):
        return self.keys is None

    def signature(self):
        if self.is_group_all:
            return "GROUP[ALL]"
        return f"GROUP[{','.join(key.canonical for key in self.keys)}]"

    def key_functions(self):
        if self.is_group_all:
            return [lambda row: "all"]
        return [_key_fn(self.keys)]

    @property
    def num_key_fields(self):
        return 1 if (self.is_group_all or len(self.keys) == 1) else len(self.keys)

    def copy_with_inputs(self, inputs):
        (input_op,) = inputs
        return self._carry(
            POGroup(input_op, self.keys, self.schema, self.alias, self.parallel)
        )


class POCoGroup(PhysOp):
    """COGROUP over n inputs; output = key fields + one bag per input."""

    kind = "cogroup"
    is_blocking = True

    def __init__(self, input_ops, key_lists, schema, alias=None, parallel=None):
        super().__init__(list(input_ops), schema, alias)
        self.key_lists = tuple(tuple(keys) for keys in key_lists)
        self.parallel = parallel

    def signature(self):
        sides = "|".join(
            ",".join(key.canonical for key in keys) for keys in self.key_lists
        )
        return f"COGROUP[{sides}]"

    def key_functions(self):
        return [_key_fn(keys) for keys in self.key_lists]

    @property
    def num_key_fields(self):
        return 1 if len(self.key_lists[0]) == 1 else len(self.key_lists[0])

    def copy_with_inputs(self, inputs):
        return self._carry(
            POCoGroup(list(inputs), self.key_lists, self.schema, self.alias,
                      self.parallel)
        )


class PODistinct(PhysOp):
    kind = "distinct"
    is_blocking = True

    def __init__(self, input_op, alias=None, parallel=None):
        super().__init__([input_op], input_op.schema, alias)
        self.parallel = parallel

    def signature(self):
        return "DISTINCT"

    def key_functions(self):
        return [lambda row: row]

    def copy_with_inputs(self, inputs):
        (input_op,) = inputs
        return self._carry(PODistinct(input_op, self.alias, self.parallel))


class POUnion(PhysOp):
    """Bag union of n inputs; map-side (non-blocking)."""

    kind = "union"

    def __init__(self, input_ops, schema, alias=None):
        super().__init__(list(input_ops), schema, alias)

    def signature(self):
        return f"UNION[{len(self.inputs)}]"

    def copy_with_inputs(self, inputs):
        return self._carry(POUnion(list(inputs), self.schema, self.alias))


class POSort(PhysOp):
    """ORDER BY (total order; executed with a single reducer)."""

    kind = "sort"
    is_blocking = True

    def __init__(self, input_op, keys, schema, alias=None, parallel=None):
        # keys: tuple of (CompiledExpr, 'asc'|'desc')
        super().__init__([input_op], schema, alias)
        self.keys = tuple(keys)
        self.parallel = parallel

    def signature(self):
        body = ",".join(f"{key.canonical}:{direction}" for key, direction in self.keys)
        return f"SORT[{body}]"

    def key_functions(self):
        key_fn = _key_fn([key for key, _ in self.keys])
        return [key_fn]

    @property
    def directions(self):
        return tuple(direction for _, direction in self.keys)

    def copy_with_inputs(self, inputs):
        (input_op,) = inputs
        return self._carry(POSort(input_op, self.keys, self.schema, self.alias,
                                  self.parallel))


class POLimit(PhysOp):
    kind = "limit"

    def __init__(self, input_op, count, alias=None):
        super().__init__([input_op], input_op.schema, alias)
        self.count = count

    def signature(self):
        return f"LIMIT[{self.count}]"

    def copy_with_inputs(self, inputs):
        (input_op,) = inputs
        return self._carry(POLimit(input_op, self.count, self.alias))


class POSplit(PhysOp):
    """Branch a stream to several consumers (Pig's Split; the paper's
    "Unix tee" used to materialize sub-job outputs, Section 4)."""

    kind = "split"

    def __init__(self, input_op, alias=None):
        super().__init__([input_op], input_op.schema, alias)

    def signature(self):
        return "SPLIT"

    def copy_with_inputs(self, inputs):
        (input_op,) = inputs
        return self._carry(POSplit(input_op, self.alias))


def _key_fn(compiled_keys):
    """Shuffle-key extractor: scalar for one key, tuple for composites."""
    if len(compiled_keys) == 1:
        fn = compiled_keys[0].fn
        return fn
    fns = [key.fn for key in compiled_keys]

    def composite(row):
        return tuple(fn(row) for fn in fns)

    return composite
