"""ReStore: reusing results of MapReduce jobs (the paper's contribution).

The three components of Figure 7:

* **plan matcher and rewriter** (:mod:`repro.restore.matcher`,
  :mod:`repro.restore.rewriter`) — rewrites each input job to reuse stored
  job outputs, including whole-job elimination;
* **sub-job enumerator** (:mod:`repro.restore.enumerator` with the
  heuristics of :mod:`repro.restore.heuristics`) — injects Split + Store
  operators to materialize sub-job outputs;
* **enumerated sub-job selector** (:mod:`repro.restore.selector`) — decides
  from execution statistics which outputs to keep and when to evict.

:class:`repro.restore.ReStore` wires them into the JobControl loop exactly
as Section 6.2 describes.
"""

from repro.restore.heuristics import (
    AggressiveHeuristic,
    ConservativeHeuristic,
    NoHeuristic,
)
from repro.restore.manager import ReStore, ReStoreReport
from repro.restore.matcher import find_containment, pairwise_plan_traversal
from repro.restore.persistence import load_repository, save_repository
from repro.restore.repository import Repository, RepositoryEntry
from repro.restore.selector import (
    HeuristicRetentionPolicy,
    KeepEverythingPolicy,
)

__all__ = [
    "AggressiveHeuristic",
    "ConservativeHeuristic",
    "find_containment",
    "HeuristicRetentionPolicy",
    "KeepEverythingPolicy",
    "load_repository",
    "NoHeuristic",
    "pairwise_plan_traversal",
    "save_repository",
    "Repository",
    "RepositoryEntry",
    "ReStore",
    "ReStoreReport",
]
