"""ReStore: reusing results of MapReduce jobs (the paper's contribution).

The three components of Figure 7:

* **plan matcher and rewriter** (:mod:`repro.restore.matcher`,
  :mod:`repro.restore.rewriter`) — rewrites each input job to reuse stored
  job outputs, including whole-job elimination;
* **sub-job enumerator** (:mod:`repro.restore.enumerator` with the
  heuristics of :mod:`repro.restore.heuristics`) — injects Split + Store
  operators to materialize sub-job outputs;
* **enumerated sub-job selector** (:mod:`repro.restore.selector`) — decides
  from execution statistics which outputs to keep and when to evict.

:class:`repro.restore.ReStore` wires them into the JobControl loop exactly
as Section 6.2 describes.

The matching pipeline and its cost
----------------------------------

The paper's matcher is a *sequential scan* of the repository in priority
order, and the seed reproduced it literally. With n entries, L loads per
plan, and C the cost of one containment test:

=====================  =====================  ==========================
operation              seed (linear scan)     indexed (PR 1)
=====================  =====================  ==========================
``find_equivalent``    O(n·C) full scan       O(C) fingerprint bucket
``insert``             O(n²) cached subsume   O(k·C + n) — k candidates
                       checks + Kahn rerun    from the load index, splice
                                              (Kahn rerun only when the
                                              entry has subsumption edges
                                              or after a removal)
matcher pass           O(n·C)                 O(k·C): only entries whose
                                              loads ⊆ the job's loads
``remove``             O(n), leaks the        O(n + cache): prunes the
                       subsumption cache      cache, edges, and indexes
=====================  =====================  ==========================

The supporting structures live in :mod:`repro.restore.index` (canonical
plan fingerprints and the leaf-load inverted index). The contract is that
indexing changes *nothing* observable: ``scan()`` yields the exact order
the seed's reorder produced and every match/rewrite/registration decision
is bit-identical. The seed implementation is frozen as
:class:`repro.restore.baseline.LinearScanRepository`, and the property
suite (``tests/test_property_restore.py``) checks order- and
decision-equivalence against it on randomized workflow streams;
``benchmarks/bench_ablation_repository.py`` reports the speedup.

Sharding (PR 2) extends the same contract to a *partitioned* store:
:class:`repro.restore.sharding.ShardedRepository` hashes entries across
N shards by leaf-load key, keeps the canonical-fingerprint dict as the
global cross-shard dedup channel, fans ``match_candidates`` out only to
the shards owning a job's load keys (through a pluggable serial or
thread-pool executor), and merges per-shard candidates back into the
paper's priority order — identical decisions, probe cost proportional to
the owning shards instead of the whole repository.

Ranking (PR 3) makes the *order* of that merged candidate walk pluggable
(:mod:`repro.restore.ranking`): the default
:class:`~repro.restore.ranking.StructuralRanker` keeps the paper's
priority order bit-identical to the seed, while
:class:`~repro.restore.ranking.SavingsRanker` tries candidates by
Equation-2 estimated savings (subsumption still a hard constraint, scan
rank as the deterministic tiebreak); every applied rewrite's estimated
vs realized savings is recorded on the
:class:`~repro.restore.manager.ReStoreReport`'s ranking ledger.

Incremental persistence (PR 4, segmented in PR 5) keeps the repository
durable without rewriting the whole file per checkpoint: the repository
exposes a change-event channel (``add_listener`` / ``record_use``) and
:class:`~repro.restore.wal.RepositoryLog` appends one JSONL record per
mutation — tagged with a monotonic sequence number and the owning shard
— to that shard's own segment file. Compaction is dirty-only: a shard
whose segment outgrows its slice gets its snapshot section rewritten
(an immutable generation-suffixed file) and its segment truncated,
while clean shards' sections are reused on disk — steady-state
compaction is O(dirty shards), not O(repository). ``load_repository``
replays sections-then-segments (merged by sequence number, with
per-segment torn-tail tolerance and stale-record watermarks) and
reports what it saw via
:class:`~repro.restore.persistence.LoaderReport`. See
``docs/PERSISTENCE.md`` for the durable format and
``docs/ARCHITECTURE.md`` for the design.

The worker-process service (PR 6) promotes each partition to a worker
**process** behind a routing front-end:
:class:`~repro.restore.service.ShardWorkerPool` plugs into
:class:`~repro.restore.sharding.ShardedRepository` as
``executor="processes"``, buffering inserts/removals per owning worker
(batched hand-off over ``multiprocessing`` queues) and fanning probes
out by load-key hash while ``find_equivalent``, ordering, ranking, and
statistics stay with the coordinator — decisions bit-identical to the
serial path. A crashed worker is respawned and re-seeded from its
partition's own section + segment files when a
:class:`~repro.restore.wal.RepositoryLog` is attached (which the v5
order-delta manifests keep O(partition)), or from the front-end's
in-memory members otherwise.
:class:`~repro.restore.service.RepositoryService` wraps the
process-backed repository plus optional durability in one
context-managed standalone lifecycle.

In-memory replication (PR 7) removes the durable replay from the common
crash path and multiplies read throughput for hot shards:
:class:`~repro.restore.replication.ReplicatedWorkerPool` keeps ``k ≥ 2``
bit-identical worker replicas per partition, fed by the same per-shard
mutation stream. A probe is answered by one replica, chosen round-robin
(batches are split *across* the set, so a hot shard's probes filter
concurrently); a crashed replica fails over warm — a surviving peer is
promoted in place, no segment replay — with the replacement backfilled
in the background from the durable partition snapshot; only a
whole-set loss falls back to the PR 6 cold re-seed. Enabled by
``ShardedRepository(executor="processes", replicas=k)`` and
``RepositoryService(replicas=k)``; the per-shard
:class:`~repro.restore.stats.ShardStats` grow ``failovers`` and
``replica_fanout`` counters, and ``tests/faultinject.py`` gives the
test suite deterministic, seed-reproducible mid-stream kills.

Async ingest (PR 8) takes registration off the submit path entirely:
``ReStore(ingest="async")`` only *captures* each registration (plan
subtree, output path, execution statistics, clock tick) into a record
on a bounded :class:`~repro.restore.ingest.IngestQueue` — with an
explicit backpressure policy when it fills: ``block``, ``reject`` (the
record is reported and its file discarded), or ``coalesce``
(duplicate frontier fingerprints are absorbed into the queued
survivor) — and a background :class:`~repro.restore.ingest.Registrar`
thread applies the records in batches: clone + dedup + admission,
per-shard grouped worker-pool flushes
(``Repository.insert_batch`` / ``ShardWorkerPool.flush_shards``), the
Rule 3/4 eviction sweep at the captured tick, and the persistence
checkpoint. Inline mode runs the *same* capture/apply code
synchronously, so decisions are bit-identical by construction — the
property suite drives async vs inline vs the frozen seed in lock-step
behind ``ReStore.flush()`` barriers. Queue pressure and drain latency
land on the report as :class:`~repro.restore.stats.IngestStats`
(``last_report.ingest``);
``benchmarks/bench_ingest_load.py`` holds the p99 submit-latency
evidence.
"""

from repro.restore.baseline import LinearScanRepository
from repro.restore.heuristics import (
    AggressiveHeuristic,
    ConservativeHeuristic,
    NoHeuristic,
)
from repro.restore.index import (
    leaf_loads,
    operator_fingerprint,
    plan_fingerprint,
)
from repro.restore.ingest import IngestQueue, Registrar
from repro.restore.manager import ReStore, ReStoreReport
from repro.restore.matcher import find_containment, pairwise_plan_traversal
from repro.restore.persistence import (
    load_repository,
    LoaderReport,
    save_repository,
    save_snapshot,
)
from repro.restore.ranking import (
    CandidateRanker,
    estimate_entry_savings,
    SavingsRanker,
    StructuralRanker,
)
from repro.restore.replication import ReplicatedWorkerPool
from repro.restore.repository import Repository, RepositoryEntry
from repro.restore.selector import (
    HeuristicRetentionPolicy,
    KeepEverythingPolicy,
)
from repro.restore.service import RepositoryService, ShardWorkerPool
from repro.restore.sharding import ShardedRepository
from repro.restore.stats import IngestStats
from repro.restore.wal import RepositoryLog

__all__ = [
    "AggressiveHeuristic",
    "CandidateRanker",
    "ConservativeHeuristic",
    "estimate_entry_savings",
    "find_containment",
    "HeuristicRetentionPolicy",
    "IngestQueue",
    "IngestStats",
    "KeepEverythingPolicy",
    "leaf_loads",
    "LinearScanRepository",
    "load_repository",
    "LoaderReport",
    "NoHeuristic",
    "operator_fingerprint",
    "pairwise_plan_traversal",
    "plan_fingerprint",
    "Registrar",
    "ReplicatedWorkerPool",
    "save_repository",
    "save_snapshot",
    "Repository",
    "RepositoryEntry",
    "RepositoryLog",
    "RepositoryService",
    "ReStore",
    "ReStoreReport",
    "SavingsRanker",
    "ShardedRepository",
    "ShardWorkerPool",
    "StructuralRanker",
]
